//! `clinfl-suite` — umbrella package hosting the cross-crate integration
//! tests (`tests/`) and runnable examples (`examples/`) for the `clinfl`
//! workspace. It re-exports the workspace crates so examples and tests can
//! use a single dependency root.

pub use clinfl;
pub use clinfl_data;
pub use clinfl_flare;
pub use clinfl_models;
pub use clinfl_tensor;
pub use clinfl_text;
