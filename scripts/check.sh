#!/usr/bin/env bash
# Full local CI gate — the exact legs .github/workflows/ci.yml runs, so a
# green local run means a green CI run:
#
#   build          release build of the whole workspace
#   test-serial    full test suite under CLINFL_THREADS=1
#   test-parallel  full test suite under the default thread budget
#   test-faults    full test suite under CLINFL_FAULTS=aggressive
#   clippy         clippy --all-targets with warnings denied
#   fmt            cargo fmt --check
#
# Usage: scripts/check.sh [leg ...]   (no args = all legs, in order)
#
# Each leg's wall-clock and "N passed" totals are appended to
# target/ci-timings.tsv; scripts/ci_summary.sh renders that file as a
# markdown table.
set -euo pipefail

cd "$(dirname "$0")/.."
mkdir -p target
TIMINGS=target/ci-timings.tsv

# Runs one named leg, times it, and records "name<TAB>secs<TAB>passed".
leg() {
    local name="$1"
    shift
    echo "==> $name: $*"
    local start=$SECONDS status=0 out
    out=$("$@" 2>&1) || status=$?
    printf '%s\n' "$out"
    local passed
    # grep exits 1 on legs that run no tests; don't let pipefail kill us.
    passed=$(printf '%s\n' "$out" | { grep -Eo '[0-9]+ passed' || true; } | awk '{s += $1} END {print s + 0}')
    printf '%s\t%s\t%s\n' "$name" "$((SECONDS - start))" "$passed" >>"$TIMINGS"
    return "$status"
}

run_leg() {
    case "$1" in
    build) leg build cargo build --workspace --release ;;
    test-serial) leg test-serial env CLINFL_THREADS=1 cargo test --workspace --release -q ;;
    test-parallel) leg test-parallel cargo test --workspace --release -q ;;
    test-faults) leg test-faults env CLINFL_FAULTS=aggressive cargo test --workspace --release -q ;;
    clippy) leg clippy cargo clippy --workspace --all-targets -- -D warnings ;;
    fmt) leg fmt cargo fmt --all -- --check ;;
    *)
        echo "unknown leg: $1 (expected build|test-serial|test-parallel|test-faults|clippy|fmt)" >&2
        exit 2
        ;;
    esac
}

if [ "$#" -eq 0 ]; then
    : >"$TIMINGS"
    for l in build test-serial test-parallel test-faults clippy fmt; do
        run_leg "$l"
    done
    echo "==> all checks passed"
else
    for l in "$@"; do
        run_leg "$l"
    done
fi
