#!/usr/bin/env bash
# Full local CI gate — the exact legs .github/workflows/ci.yml runs, so a
# green local run means a green CI run:
#
#   build          release build of the whole workspace
#   test-serial    full test suite under CLINFL_THREADS=1
#   test-parallel  full test suite under the default thread budget
#   test-faults    full test suite under CLINFL_FAULTS=aggressive
#   resume         crash-resume chaos tests (kill server mid-round, resume,
#                  require bit-identical weights; dir kept in
#                  target/chaos-resume on failure for artifact upload)
#   bench-smoke    bench_report smoke run + schema check of BENCH_report.json
#   kernels        packed-GEMM perf floor (DESIGN.md §3j): bench_kernels times
#                  the packed register-blocked kernels against the retained
#                  naive references across the smoke run's hot shapes, writes
#                  BENCH_kernels.json, and fails below a 2.5x aggregate speedup
#   wire-codec     bench_report smoke with delta+topk0.05+int8 negotiated under
#                  aggressive faults; fails unless encoded bytes are <= 1/10 of
#                  the raw protocol (BENCH_wire_codec.json, DESIGN.md §3g)
#   scale          scaling-curve gate (DESIGN.md §3h): bench_scaling runs the
#                  8/64/256/1024-site tree-aggregation curve, BENCH_scaling.json
#                  is schema-checked, and the run fails if root round work grows
#                  super-logarithmically between 64 and 1024 sites; then the
#                  fault/resume chaos suites re-run at tree depth 2 (fan-out 3)
#   jobs           multi-tenant admin API gate (DESIGN.md §3i): scripts/ci_jobs.sh
#                  starts `clinfl serve`, submits two jobs over HTTP, streams
#                  live NDJSON metrics, aborts one mid-run, and asserts the
#                  survivor finishes with its own checkpoint dir intact
#   scenarios      scenario-matrix sweep (DESIGN.md §3k): scenario_matrix runs
#                  the partition x sampling x DP x personalization smoke grid,
#                  asserts the disabled-knobs cell is bit-identical to the flat
#                  path, writes BENCH_scenarios.json, and the schema check
#                  requires >=8 cells with valid accuracies and (eps, delta)
#   doc            rustdoc with warnings denied (broken links fail the gate)
#   clippy         clippy --all-targets with warnings denied
#   fmt            cargo fmt --check
#
# Usage: scripts/check.sh [leg ...]   (no args = all legs, in order)
#
# Every requested leg is pre-registered in target/ci-timings.tsv as a
# "pending" row, then overwritten (last record per leg wins) with its
# wall-clock, "N passed" totals, peak RSS (KB), and ok/fail status on
# completion — so an aborted run still shows which legs never ran.
# scripts/ci_summary.sh renders the file as a markdown table and diffs
# wall-clocks against the committed scripts/ci_baseline.tsv.
#
# Each leg runs with CLINFL_OBS_DIR=target/obs/<leg> so metric artifacts
# from different legs (wire-codec vs scale, say) never clobber each other.
set -euo pipefail

cd "$(dirname "$0")/.."
mkdir -p target
TIMINGS=target/ci-timings.tsv
RSS_FILE=target/.leg-rss

ALL_LEGS="build test-serial test-parallel test-faults resume bench-smoke kernels wire-codec scale jobs scenarios doc clippy fmt"

# Runs "$@" as a child and, after it exits, writes the peak RSS in KB of
# the child process tree (getrusage RUSAGE_CHILDREN) to $RSS_FILE. The
# container has no /usr/bin/time, so a stdlib-only wrapper stands in for
# `time -v`; without python3 the RSS column is left empty.
rss_run() {
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$RSS_FILE" "$@" <<'PY'
import resource, subprocess, sys

status = subprocess.call(sys.argv[2:])
peak_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
with open(sys.argv[1], "w") as f:
    f.write(str(peak_kb))
sys.exit(status)
PY
    else
        : >"$RSS_FILE"
        "$@"
    fi
}

# Appends a "pending" placeholder row per requested leg before anything
# runs; completion rows later shadow it (ci_summary keeps the last record
# per leg), so a run that dies mid-way still reports the legs it skipped.
register_legs() {
    for l in "$@"; do
        printf '%s\t-\t-\t-\tpending\n' "$l" >>"$TIMINGS"
    done
}

# Runs one named leg, times it, and records
# "name<TAB>secs<TAB>passed<TAB>rss_kb<TAB>status".
leg() {
    local name="$1"
    shift
    echo "==> $name: $*"
    # Absolute path: cargo runs in-crate unit tests with cwd = the crate
    # dir, so a relative obs dir would scatter crates/*/target/obs copies.
    mkdir -p "$PWD/target/obs/$name"
    local start=$SECONDS status=0 out
    out=$(CLINFL_OBS_DIR="$PWD/target/obs/$name" rss_run "$@" 2>&1) || status=$?
    printf '%s\n' "$out"
    local passed rss
    # grep exits 1 on legs that run no tests; don't let pipefail kill us.
    passed=$(printf '%s\n' "$out" | { grep -Eo '[0-9]+ passed' || true; } | awk '{s += $1} END {print s + 0}')
    rss=$(cat "$RSS_FILE" 2>/dev/null || true)
    printf '%s\t%s\t%s\t%s\t%s\n' "$name" "$((SECONDS - start))" "$passed" "$rss" \
        "$([ "$status" -eq 0 ] && echo ok || echo fail)" >>"$TIMINGS"
    return "$status"
}

run_leg() {
    case "$1" in
    build) leg build cargo build --workspace --release ;;
    test-serial) leg test-serial env CLINFL_THREADS=1 cargo test --workspace --release -q ;;
    test-parallel) leg test-parallel cargo test --workspace --release -q ;;
    test-faults) leg test-faults env CLINFL_FAULTS=aggressive cargo test --workspace --release -q ;;
    resume) leg resume cargo test --release --test integration_resume -q ;;
    bench-smoke)
        # One leg = one command, so chain run + schema check in a subshell.
        leg bench-smoke bash -c \
            'cargo run --release -q -p clinfl-bench --bin bench_report -- --smoke --out BENCH_report.json \
             && cargo run --release -q -p clinfl-bench --bin bench_report -- --check BENCH_report.json'
        ;;
    kernels)
        # Kernel perf floor: the packed GEMM micro-kernels must hold an
        # aggregate >=2.5x speedup over the naive references on the smoke
        # run's hot shapes, or the tentpole win of PR 9 has regressed.
        leg kernels bash -c \
            'cargo run --release -q -p clinfl-bench --bin bench_kernels -- --run --out BENCH_kernels.json \
             && cargo run --release -q -p clinfl-bench --bin bench_kernels -- --check BENCH_kernels.json --min-speedup 2.5'
        ;;
    wire-codec)
        # Compression gate: the full negotiated stack (delta ring + top-k +
        # int8) must hold a >=10x byte reduction even while the aggressive
        # fault profile drops, truncates, and delays frames.
        leg wire-codec bash -c \
            'CLINFL_WIRE_CODEC=delta+topk0.05+int8 CLINFL_FAULTS=aggressive \
               cargo run --release -q -p clinfl-bench --bin bench_report -- --smoke --out BENCH_wire_codec.json \
             && cargo run --release -q -p clinfl-bench --bin bench_report -- --check BENCH_wire_codec.json --min-reduction 10'
        ;;
    scale)
        # Scaling-curve gate: the bin targets must be rebuilt explicitly
        # (a workspace build does not reliably relink them), then the
        # 8->1024-site curve runs through tree aggregation and the JSON
        # gate checks root-attributable round work stays O(log n). The
        # chaos suites then repeat at tree depth 2 so fault handling,
        # quorum, and resume are proven on the hierarchical topology too.
        leg scale bash -c \
            'cargo build --release -q -p clinfl-bench \
             && cargo run --release -q -p clinfl-bench --bin bench_scaling -- --run --out BENCH_scaling.json \
             && cargo run --release -q -p clinfl-bench --bin bench_scaling -- --check BENCH_scaling.json \
             && CLINFL_TREE=2x3 cargo test --release -q --test integration_faults --test integration_resume'
        ;;
    jobs)
        # Admin-API gate: drives the multi-tenant job runtime end to end
        # over HTTP (submit x2, stream, abort, survivor green). Needs the
        # release clinfl binary; build it explicitly so the leg stands
        # alone.
        leg jobs bash -c 'cargo build --release -q -p clinfl && scripts/ci_jobs.sh'
        ;;
    scenarios)
        # Scenario-matrix gate: the smoke grid (2 partitions x sampling
        # on/off x DP on/off, plus a personalization arm per partition)
        # must produce in-range accuracies, finite (eps, delta) on every
        # DP cell, and a baseline cell bit-identical to the plain
        # federated path — so the sampling/DP knobs provably default off.
        leg scenarios bash -c \
            'cargo run --release -q -p clinfl-bench --bin scenario_matrix -- --smoke --out BENCH_scenarios.json \
             && cargo run --release -q -p clinfl-bench --bin scenario_matrix -- --check BENCH_scenarios.json'
        ;;
    doc) leg doc env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps ;;
    clippy) leg clippy cargo clippy --workspace --all-targets -- -D warnings ;;
    fmt) leg fmt cargo fmt --all -- --check ;;
    *)
        echo "unknown leg: $1 (expected ${ALL_LEGS// /|})" >&2
        exit 2
        ;;
    esac
}

if [ "$#" -eq 0 ]; then
    : >"$TIMINGS"
    # shellcheck disable=SC2086
    register_legs $ALL_LEGS
    for l in $ALL_LEGS; do
        run_leg "$l"
    done
    echo "==> all checks passed"
else
    register_legs "$@"
    for l in "$@"; do
        run_leg "$l"
    done
fi
