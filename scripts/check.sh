#!/usr/bin/env bash
# Full local CI gate — the exact legs .github/workflows/ci.yml runs, so a
# green local run means a green CI run:
#
#   build          release build of the whole workspace
#   test-serial    full test suite under CLINFL_THREADS=1
#   test-parallel  full test suite under the default thread budget
#   test-faults    full test suite under CLINFL_FAULTS=aggressive
#   resume         crash-resume chaos tests (kill server mid-round, resume,
#                  require bit-identical weights; dir kept in
#                  target/chaos-resume on failure for artifact upload)
#   bench-smoke    bench_report smoke run + schema check of BENCH_report.json
#   wire-codec     bench_report smoke with delta+topk0.05+int8 negotiated under
#                  aggressive faults; fails unless encoded bytes are <= 1/10 of
#                  the raw protocol (BENCH_wire_codec.json, DESIGN.md §3g)
#   doc            rustdoc with warnings denied (broken links fail the gate)
#   clippy         clippy --all-targets with warnings denied
#   fmt            cargo fmt --check
#
# Usage: scripts/check.sh [leg ...]   (no args = all legs, in order)
#
# Each leg's wall-clock, "N passed" totals, peak RSS (KB), and ok/fail
# status are appended to target/ci-timings.tsv; scripts/ci_summary.sh
# renders that file as a markdown table.
set -euo pipefail

cd "$(dirname "$0")/.."
mkdir -p target
TIMINGS=target/ci-timings.tsv
RSS_FILE=target/.leg-rss

# Runs "$@" as a child and, after it exits, writes the peak RSS in KB of
# the child process tree (getrusage RUSAGE_CHILDREN) to $RSS_FILE. The
# container has no /usr/bin/time, so a stdlib-only wrapper stands in for
# `time -v`; without python3 the RSS column is left empty.
rss_run() {
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$RSS_FILE" "$@" <<'PY'
import resource, subprocess, sys

status = subprocess.call(sys.argv[2:])
peak_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
with open(sys.argv[1], "w") as f:
    f.write(str(peak_kb))
sys.exit(status)
PY
    else
        : >"$RSS_FILE"
        "$@"
    fi
}

# Runs one named leg, times it, and records
# "name<TAB>secs<TAB>passed<TAB>rss_kb<TAB>status".
leg() {
    local name="$1"
    shift
    echo "==> $name: $*"
    local start=$SECONDS status=0 out
    out=$(rss_run "$@" 2>&1) || status=$?
    printf '%s\n' "$out"
    local passed rss
    # grep exits 1 on legs that run no tests; don't let pipefail kill us.
    passed=$(printf '%s\n' "$out" | { grep -Eo '[0-9]+ passed' || true; } | awk '{s += $1} END {print s + 0}')
    rss=$(cat "$RSS_FILE" 2>/dev/null || true)
    printf '%s\t%s\t%s\t%s\t%s\n' "$name" "$((SECONDS - start))" "$passed" "$rss" \
        "$([ "$status" -eq 0 ] && echo ok || echo fail)" >>"$TIMINGS"
    return "$status"
}

run_leg() {
    case "$1" in
    build) leg build cargo build --workspace --release ;;
    test-serial) leg test-serial env CLINFL_THREADS=1 cargo test --workspace --release -q ;;
    test-parallel) leg test-parallel cargo test --workspace --release -q ;;
    test-faults) leg test-faults env CLINFL_FAULTS=aggressive cargo test --workspace --release -q ;;
    resume) leg resume cargo test --release --test integration_resume -q ;;
    bench-smoke)
        # One leg = one command, so chain run + schema check in a subshell.
        leg bench-smoke bash -c \
            'cargo run --release -q -p clinfl-bench --bin bench_report -- --smoke --out BENCH_report.json \
             && cargo run --release -q -p clinfl-bench --bin bench_report -- --check BENCH_report.json'
        ;;
    wire-codec)
        # Compression gate: the full negotiated stack (delta ring + top-k +
        # int8) must hold a >=10x byte reduction even while the aggressive
        # fault profile drops, truncates, and delays frames.
        leg wire-codec bash -c \
            'CLINFL_WIRE_CODEC=delta+topk0.05+int8 CLINFL_FAULTS=aggressive \
               cargo run --release -q -p clinfl-bench --bin bench_report -- --smoke --out BENCH_wire_codec.json \
             && cargo run --release -q -p clinfl-bench --bin bench_report -- --check BENCH_wire_codec.json --min-reduction 10'
        ;;
    doc) leg doc env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps ;;
    clippy) leg clippy cargo clippy --workspace --all-targets -- -D warnings ;;
    fmt) leg fmt cargo fmt --all -- --check ;;
    *)
        echo "unknown leg: $1 (expected build|test-serial|test-parallel|test-faults|resume|bench-smoke|wire-codec|doc|clippy|fmt)" >&2
        exit 2
        ;;
    esac
}

if [ "$#" -eq 0 ]; then
    : >"$TIMINGS"
    for l in build test-serial test-parallel test-faults resume bench-smoke wire-codec doc clippy fmt; do
        run_leg "$l"
    done
    echo "==> all checks passed"
else
    for l in "$@"; do
        run_leg "$l"
    done
fi
