#!/usr/bin/env sh
# Full local CI gate: offline release build, the whole test suite under
# both the serial (CLINFL_THREADS=1) and default parallel thread budgets,
# and clippy with warnings denied.
#
# Usage: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test (CLINFL_THREADS=1, serial)"
CLINFL_THREADS=1 cargo test --workspace --release -q

echo "==> cargo test (default thread budget)"
cargo test --workspace --release -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> all checks passed"
