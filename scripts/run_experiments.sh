#!/usr/bin/env bash
# Regenerates every table and figure of the paper and archives the outputs
# under results/. Scales are the single-core CPU defaults; pass-through
# arguments are forwarded to each binary.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

run() {
  local name="$1"; shift
  echo "=== $name ==="
  cargo run --release -p clinfl-bench --bin "$name" -- "$@" | tee "results/$name.txt"
}

cargo build --release -p clinfl-bench

run table1_parameters
run table2_models
run table3_accuracy
run fig2_mlm_loss
run fig3_demo
# Ablations (extensions; smaller scales keep the full sweep tractable):
run ablation_partition --scale 16
run ablation_aggregators --scale 24
run ablation_privacy --scale 24
run ablation_fedprox --scale 24
run ablation_pretrain --scale 24
