#!/usr/bin/env bash
# CI leg `jobs`: end-to-end exercise of the multi-tenant job runtime and
# its HTTP admin API, exactly as an operator would drive it:
#
#   1. start `clinfl serve` on an ephemeral port (address discovered via
#      --addr-file), two concurrent job slots, per-job checkpoint dirs
#   2. submit two jobs over HTTP: a long-running one ("doomed") and a
#      short one ("survivor")
#   3. stream the survivor's live NDJSON metrics until it reports
#      `finished`
#   4. abort the doomed job over the API and require it to land in
#      `aborted` promptly (seconds, not the minutes its remaining rounds
#      would cost)
#   5. assert the survivor stayed green and both per-job checkpoint
#      directories exist (isolation: one dir per job, lock-file guarded)
#
# Run from the repo root (scripts/check.sh does): scripts/ci_jobs.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/clinfl
DIR=target/ci-jobs
rm -rf "$DIR"
mkdir -p "$DIR"

"$BIN" serve --addr 127.0.0.1:0 --addr-file "$DIR/addr" --max-jobs 2 \
    --scale 256 --checkpoint-root "$DIR/ckpts" >"$DIR/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

for _ in $(seq 100); do
    [ -s "$DIR/addr" ] && break
    sleep 0.1
done
[ -s "$DIR/addr" ] || { echo "serve never wrote its address"; cat "$DIR/serve.log"; exit 1; }
CLINFL_ADMIN_ADDR=$(cat "$DIR/addr")
export CLINFL_ADMIN_ADDR
echo "==> admin API on $CLINFL_ADMIN_ADDR"

printf 'name = doomed\nrounds = 400\nclients = 2\nmin_clients = 2\nseed = 9\n' |
    "$BIN" job submit >"$DIR/doomed.json"
printf 'name = survivor\nrounds = 2\nclients = 2\nmin_clients = 2\nseed = 7\n' |
    "$BIN" job submit >"$DIR/survivor.json"
DOOMED=$(grep -o '"id":[0-9]*' "$DIR/doomed.json" | head -1 | cut -d: -f2)
SURV=$(grep -o '"id":[0-9]*' "$DIR/survivor.json" | head -1 | cut -d: -f2)
echo "==> submitted doomed=$DOOMED survivor=$SURV"

# Live metrics stream: blocks until the survivor reaches a terminal
# state, so the last NDJSON line must say `finished`.
"$BIN" job metrics --id "$SURV" --follow >"$DIR/stream.ndjson"
tail -1 "$DIR/stream.ndjson" | grep -q '"state":"finished"' ||
    { echo "survivor stream never reached finished"; tail -3 "$DIR/stream.ndjson"; exit 1; }
echo "==> survivor streamed to finished ($(wc -l <"$DIR/stream.ndjson") snapshots)"

"$BIN" job abort --id "$DOOMED" | grep -q '"aborted":true' ||
    { echo "abort was not acknowledged"; exit 1; }
ABORT_START=$SECONDS
for _ in $(seq 150); do
    "$BIN" job list >"$DIR/list.json"
    grep -q "\"id\":$DOOMED,\"name\":\"doomed\",\"state\":\"aborted\"" "$DIR/list.json" && break
    sleep 0.2
done
grep -q "\"id\":$DOOMED,\"name\":\"doomed\",\"state\":\"aborted\"" "$DIR/list.json" ||
    { echo "doomed job never aborted"; cat "$DIR/list.json"; exit 1; }
echo "==> doomed aborted in $((SECONDS - ABORT_START))s"

grep -q "\"id\":$SURV,\"name\":\"survivor\",\"state\":\"finished\"" "$DIR/list.json" ||
    { echo "survivor did not stay finished"; cat "$DIR/list.json"; exit 1; }

# Per-job isolation on disk: each job persisted into its own directory.
[ -d "$DIR/ckpts/job-1-doomed" ] && [ -d "$DIR/ckpts/job-2-survivor" ] ||
    { echo "per-job checkpoint dirs missing"; ls -la "$DIR/ckpts" || true; exit 1; }

echo "==> jobs leg ok: survivor finished, doomed aborted, per-job dirs intact"
