#!/usr/bin/env bash
# Renders target/ci-timings.tsv (written by scripts/check.sh) as a
# markdown table — CI tees this into $GITHUB_STEP_SUMMARY. Safe to run
# with a partial or missing timings file.
set -euo pipefail

cd "$(dirname "$0")/.."
TIMINGS=target/ci-timings.tsv

echo "### CI legs"
echo
echo "| Leg | Status | Wall-clock (s) | Tests passed | Max RSS (MB) |"
echo "|:----|:------:|---------------:|-------------:|-------------:|"
if [ -f "$TIMINGS" ]; then
    # Keep the last record per leg (reruns append), in first-seen order;
    # legs that run no tests (build/clippy/fmt) show "-". Older timings
    # files have no 4th (RSS, KB) or 5th (ok/fail status) column, and the
    # RSS or passed field can be empty (no python3) or non-numeric
    # (truncated line) — render any such cell as "-" instead of an empty
    # or garbage column.
    awk -F'\t' '
        NF == 0 || $1 == "" { next }
        !($1 in last) { order[++n] = $1 }
        { last[$1] = $0 }
        END {
            for (i = 1; i <= n; i++) {
                cols = split(last[order[i]], f, "\t")
                secs = (cols >= 2 && f[2] ~ /^[0-9]+$/) ? f[2] : "-"
                passed = (cols >= 3 && f[3] ~ /^[0-9]+$/ && f[3] != "0") ? f[3] : "-"
                rss = (cols >= 4 && f[4] ~ /^[0-9]+$/) ? sprintf("%.1f", f[4] / 1024) : "-"
                status = (cols >= 5 && f[5] == "ok") ? "✅" : (cols >= 5 && f[5] == "fail") ? "❌" : "-"
                printf "| %s | %s | %s | %s | %s |\n", f[1], status, secs, passed, rss
            }
        }' "$TIMINGS"
else
    echo "| (no timings recorded) | - | - | - | - |"
fi
