#!/usr/bin/env bash
# Renders target/ci-timings.tsv (written by scripts/check.sh) as a
# markdown table — CI tees this into $GITHUB_STEP_SUMMARY — and diffs
# each leg's wall-clock against the committed scripts/ci_baseline.tsv,
# flagging legs more than 25% slower than baseline. Safe to run with a
# partial or missing timings file.
set -euo pipefail

cd "$(dirname "$0")/.."
TIMINGS=target/ci-timings.tsv
BASELINE=scripts/ci_baseline.tsv

echo "### CI legs"
echo
echo "| Leg | Status | Wall-clock (s) | vs baseline | Tests passed | Max RSS (MB) |"
echo "|:----|:------:|---------------:|:------------|-------------:|-------------:|"
if [ -f "$TIMINGS" ]; then
    # Keep the last record per leg (pending pre-registration rows and
    # reruns append; completion rows shadow them), in first-seen order;
    # legs that run no tests (build/clippy/fmt) show "-". Older timings
    # files have no 4th (RSS, KB) or 5th (ok/fail status) column, and the
    # RSS or passed field can be empty (no python3) or non-numeric
    # (truncated line) — render any such cell as "-" instead of an empty
    # or garbage column. The baseline diff column compares against the
    # committed per-leg wall-clocks and flags a >25% regression.
    BASE_IN=/dev/null
    [ -f "$BASELINE" ] && BASE_IN="$BASELINE"
    # The baseline file is matched by name (not FNR==NR, which misfires
    # when the baseline is empty or missing and /dev/null stands in).
    awk -F'\t' -v basefile="$BASE_IN" '
        FILENAME == basefile {
            if (NF >= 2 && $2 ~ /^[0-9]+$/) base[$1] = $2
            next
        }
        NF == 0 || $1 == "" { next }
        !($1 in last) { order[++n] = $1 }
        { last[$1] = $0 }
        END {
            for (i = 1; i <= n; i++) {
                cols = split(last[order[i]], f, "\t")
                secs = (cols >= 2 && f[2] ~ /^[0-9]+$/) ? f[2] : "-"
                passed = (cols >= 3 && f[3] ~ /^[0-9]+$/ && f[3] != "0") ? f[3] : "-"
                rss = (cols >= 4 && f[4] ~ /^[0-9]+$/) ? sprintf("%.1f", f[4] / 1024) : "-"
                status = (cols >= 5 && f[5] == "ok") ? "✅" \
                       : (cols >= 5 && f[5] == "fail") ? "❌" \
                       : (cols >= 5 && f[5] == "pending") ? "⏳" : "-"
                delta = "-"
                if (secs != "-" && (f[1] in base)) {
                    b = base[f[1]]
                    if (b > 0) {
                        pct = (secs - b) * 100.0 / b
                        delta = sprintf("%+.0f%%", pct)
                        if (pct > 25) {
                            delta = delta " ⚠️ **slower than baseline**"
                            flagged[++nf] = f[1]
                        }
                    } else if (secs > 0) {
                        delta = "n/a (baseline 0s)"
                    } else {
                        delta = "+0%"
                    }
                }
                printf "| %s | %s | %s | %s | %s | %s |\n", f[1], status, secs, delta, passed, rss
            }
            if (nf > 0) {
                printf "\n> ⚠️ %d leg(s) ran >25%% slower than scripts/ci_baseline.tsv:", nf
                for (i = 1; i <= nf; i++) printf " %s", flagged[i]
                printf ". Investigate before merging, or refresh the baseline if the slowdown is intended.\n"
            }
        }' "$BASE_IN" "$TIMINGS"
else
    echo "| (no timings recorded) | - | - | - | - | - |"
fi

# Kernel-level metric: the smoke run's tensor.matmul histogram total from
# BENCH_report.json, diffed against the "matmul_ms" row of the baseline
# file. Leg wall-clocks can absorb a kernel regression (tests dominate
# them), so the GEMM total is compared directly — same >25% flag as the
# legs. Extraction is a sed pull from the single-line JSON (no jq in the
# CI image); the report key "tensor.matmul" sorts before its _at_b/_a_bt
# siblings, so the first match is the plain matmul histogram.
REPORT=BENCH_report.json
if [ -f "$REPORT" ]; then
    matmul_ms=$(sed -n 's/.*"tensor\.matmul":{[^}]*"total_ms":\([0-9][0-9.eE+-]*\).*/\1/p' "$REPORT" | head -n1)
    base_ms=""
    [ -f "$BASELINE" ] && base_ms=$(awk -F'\t' '$1 == "matmul_ms" {print $2}' "$BASELINE")
    if [ -n "$matmul_ms" ]; then
        echo
        echo "### Kernel metrics (BENCH_report.json)"
        echo
        echo "| Metric | Value (ms) | vs baseline |"
        echo "|:-------|-----------:|:------------|"
        awk -v v="$matmul_ms" -v b="$base_ms" 'BEGIN {
            delta = "-"
            if (b != "" && b + 0 > 0) {
                pct = (v - b) * 100.0 / b
                delta = sprintf("%+.0f%%", pct)
                if (pct > 25) delta = delta " ⚠️ **slower than baseline**"
            }
            printf "| matmul_ms | %.2f | %s |\n", v, delta
        }'
    fi
fi
