#!/usr/bin/env bash
# Renders target/ci-timings.tsv (written by scripts/check.sh) as a
# markdown table — CI tees this into $GITHUB_STEP_SUMMARY. Safe to run
# with a partial or missing timings file.
set -euo pipefail

cd "$(dirname "$0")/.."
TIMINGS=target/ci-timings.tsv

echo "### CI legs"
echo
echo "| Leg | Wall-clock (s) | Tests passed |"
echo "|:----|---------------:|-------------:|"
if [ -f "$TIMINGS" ]; then
    # Keep the last record per leg (reruns append), in first-seen order;
    # legs that run no tests (build/clippy/fmt) show "-".
    awk -F'\t' '
        !($1 in last) { order[++n] = $1 }
        { last[$1] = $0 }
        END {
            for (i = 1; i <= n; i++) {
                split(last[order[i]], f, "\t")
                printf "| %s | %s | %s |\n", f[1], f[2], (f[3] == "0" ? "-" : f[3])
            }
        }' "$TIMINGS"
else
    echo "| (no timings recorded) | - | - |"
fi
