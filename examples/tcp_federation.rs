//! Multi-process-style federation over real TCP sockets: the same byte
//! protocol the in-process simulator uses, but across a listener on
//! localhost — the shape of an actual NVFlare deployment (server machine +
//! hospital clients).
//!
//! For a fast demonstration the "training" is the arithmetic test executor;
//! swap in `clinfl::ClinicalExecutor` for real model training.
//!
//! ```sh
//! cargo run --release --example tcp_federation
//! ```

use clinfl_flare::aggregator::WeightedFedAvg;
use clinfl_flare::client::{ClientBehavior, FlClient};
use clinfl_flare::controller::{SagConfig, ScatterAndGather};
use clinfl_flare::executor::ArithmeticExecutor;
use clinfl_flare::persistor::InMemoryPersistor;
use clinfl_flare::provision::Project;
use clinfl_flare::server::FlServer;
use clinfl_flare::transport::TcpTransport;
use clinfl_flare::{EventLog, WeightTensor, Weights};
use std::time::Duration;

fn main() {
    let n_clients = 3;
    let log = EventLog::echoing();
    let provisioned = Project::with_n_sites("tcp_demo", n_clients, 99).provision();

    let listener = TcpTransport::listen("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    println!("FL server listening on {addr}");

    let mut server = FlServer::new(provisioned.server.clone(), log.clone(), 99);

    // Hospital clients: each its own thread with its own TCP connection.
    let mut client_threads = Vec::new();
    for (i, package) in provisioned.sites.iter().cloned().enumerate() {
        let addr = addr.clone();
        let clog = log.clone();
        client_threads.push(std::thread::spawn(move || {
            let conn = TcpTransport::connect(&addr).expect("connect");
            let mut client =
                FlClient::register(conn, &package, 0xC0FFEE + i as u64, clog).expect("register");
            let mut executor = ArithmeticExecutor {
                delta: (i + 1) as f32,
                n_examples: 100,
            };
            client
                .run(&mut executor, ClientBehavior::default())
                .expect("client loop")
        }));
    }

    for _ in 0..n_clients {
        let (stream, peer) = listener.accept().expect("accept");
        println!("accepted connection from {peer}");
        server.serve_connection(TcpTransport::from_stream(stream).expect("split"));
    }
    server.wait_for_clients(n_clients, Duration::from_secs(10));

    let mut initial = Weights::new();
    initial.insert("w".into(), WeightTensor::new(vec![4], vec![0.0; 4]));

    let sag = ScatterAndGather::new(
        SagConfig {
            rounds: 3,
            min_clients: n_clients,
            round_timeout: Duration::from_secs(30),
            validate_global: true,
            ..SagConfig::default()
        },
        log.clone(),
    );
    let mut persistor = InMemoryPersistor::new();
    let result = sag
        .run(&mut server, &WeightedFedAvg, &mut persistor, initial)
        .expect("workflow");

    for t in client_threads {
        t.join().expect("client thread");
    }
    server.shutdown();

    // Equal example counts → FedAvg moves +mean(1,2,3) = +2 per round.
    println!(
        "\nFinal global weights after 3 rounds over TCP: {:?} (expected [6, 6, 6, 6])",
        result.final_weights["w"].data
    );
}
