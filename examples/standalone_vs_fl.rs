//! Standalone-vs-federated comparison (the core claim of the paper's
//! Table III): eight clinics with imbalanced data volumes train alone,
//! then collaboratively with FedAvg — without sharing records.
//!
//! ```sh
//! cargo run --release --example standalone_vs_fl
//! ```

use clinfl::{drivers, ModelSpec, PipelineConfig};
use clinfl_data::PAPER_IMBALANCED_RATIOS;

fn main() {
    let mut cfg = PipelineConfig::fast_demo();
    cfg.cohort.n_patients = 600;
    cfg.epochs = 4;
    cfg.rounds = 4;
    cfg.local_epochs = 1;

    println!("Site data shares (paper §IV-B1): {PAPER_IMBALANCED_RATIOS:?}\n");

    println!("[1/2] Standalone LSTM: every site trains only on its own shard…");
    let standalone = drivers::train_standalone(&cfg, ModelSpec::Lstm);
    for (i, acc) in standalone.per_site.iter().enumerate() {
        println!(
            "  site-{} ({:>4.0}% of data): accuracy {:>5.1}%",
            i + 1,
            100.0 * PAPER_IMBALANCED_RATIOS[i],
            100.0 * acc
        );
    }
    println!(
        "  => standalone mean accuracy {:.1}%",
        100.0 * standalone.mean_accuracy
    );

    println!("\n[2/2] Federated LSTM over the same shards…");
    let fl = drivers::train_federated(&cfg, ModelSpec::Lstm).expect("federation runs");
    println!("  => federated accuracy {:.1}%", 100.0 * fl.accuracy);

    println!(
        "\nCollaboration gains {:+.1} accuracy points over isolated training.",
        100.0 * (fl.accuracy - standalone.mean_accuracy)
    );
}
