//! Quickstart: generate a synthetic clinical cohort, train the paper's
//! LSTM centrally, then federate it across 8 sites with the NVFlare-style
//! runtime — in under a minute on a laptop.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use clinfl::{drivers, ModelSpec, PipelineConfig};

fn main() {
    let cfg = PipelineConfig::fast_demo();
    println!(
        "Synthetic clopidogrel cohort: {} patients, {} federated sites",
        cfg.cohort.n_patients, cfg.n_clients
    );

    println!("\n[1/2] Centralized LSTM ({} epochs)…", cfg.epochs);
    let central = drivers::train_centralized(&cfg, ModelSpec::Lstm);
    for (i, (loss, acc)) in central.history.iter().enumerate() {
        println!(
            "  epoch {:>2}: train_loss={loss:.3} valid_acc={acc:.3}",
            i + 1
        );
    }
    println!(
        "  => centralized top-1 accuracy {:.1}%",
        100.0 * central.accuracy
    );

    println!(
        "\n[2/2] Federated LSTM ({} rounds x {} local epochs, imbalanced sites)…",
        cfg.rounds, cfg.local_epochs
    );
    let fl = drivers::train_federated(&cfg, ModelSpec::Lstm).expect("federation runs");
    for (i, (loss, acc)) in fl.history.iter().enumerate() {
        println!(
            "  round {:>2}: mean_train_loss={loss:.3} global_valid_acc={acc:.3}",
            i + 1
        );
    }
    println!("  => federated top-1 accuracy {:.1}%", 100.0 * fl.accuracy);

    println!(
        "\nFL retains {:.1} points of the centralized accuracy without any site sharing raw records.",
        100.0 * (fl.accuracy - central.accuracy)
    );
}
