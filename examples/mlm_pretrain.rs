//! BERT masked-language-model pretraining on the synthetic clinical corpus
//! (the paper's §III-B / Fig. 2), comparing the centralized and small-data
//! regimes.
//!
//! ```sh
//! cargo run --release --example mlm_pretrain
//! ```

use clinfl::drivers::{build_mlm_data, pretrain_mlm, MlmScheme};
use clinfl::PipelineConfig;

fn main() {
    let mut cfg = PipelineConfig::fast_demo();
    cfg.pretrain.scale = 1024; // ~440 train sequences: a fast demo
    cfg.pretrain_rounds = 3;

    let data = build_mlm_data(&cfg);
    println!(
        "Pretraining corpus: {} train / {} valid sequences, vocab {} (paper: 453,377 / 8,683)",
        data.train.len(),
        data.valid.len(),
        data.vocab_size
    );
    println!(
        "Untrained MLM loss should sit near ln|V| = {:.2}\n",
        (data.vocab_size as f64).ln()
    );

    for scheme in [MlmScheme::Centralized, MlmScheme::SmallData] {
        let curve = pretrain_mlm(&cfg, scheme, &data).expect("pretraining runs");
        print!("{:<24}", scheme.as_str());
        for v in &curve {
            print!(" {v:6.3}");
        }
        println!();
    }
    println!(
        "\nAs in the paper's Fig. 2, the small-data regime plateaus above the centralized curve."
    );
}
