//! The paper's Fig. 3 demonstration: an 8-site federated fine-tuning run
//! with live NVFlare-style logs — client registration with tokens, local
//! epochs with `train_loss`/`valid_acc`, per-epoch timing, aggregation and
//! round persistence.
//!
//! ```sh
//! cargo run --release --example fl_finetune
//! ```

use clinfl::{drivers, ModelSpec, PipelineConfig};
use clinfl_flare::EventLog;

fn main() {
    let mut cfg = PipelineConfig::fast_demo();
    cfg.cohort.n_patients = 400;
    cfg.rounds = 3;
    cfg.local_epochs = 2;

    println!("=== Initialize server and clients (provision + token registration) ===");
    let log = EventLog::echoing();
    let out = drivers::train_federated_with(
        &cfg,
        ModelSpec::BertMini,
        &cfg.imbalanced_partitioner(),
        log,
    )
    .expect("federation runs");

    println!("\n=== Result ===");
    println!(
        "Final global BERT-mini top-1 accuracy: {:.1}% after {} rounds",
        100.0 * out.accuracy,
        cfg.rounds
    );
}
