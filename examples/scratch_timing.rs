//! Calibration utility: measures LSTM convergence and wall-clock per epoch
//! on the synthetic ADR task at a chosen scale. Used to pick the
//! per-model learning rates recorded in EXPERIMENTS.md; kept as a
//! maintenance tool for re-calibrating after engine changes.
//!
//! ```sh
//! cargo run --release --example scratch_timing
//! ```

use clinfl::drivers::build_task_data;
use clinfl::{Learner, ModelSpec, PipelineConfig, TrainHyper};
use std::time::Instant;

fn main() {
    let cfg = PipelineConfig::scaled(8);
    let data = build_task_data(&cfg);
    let vocab = data.code_system.vocab().len();
    println!(
        "scale 8: train {} valid {} pos {:.3}",
        data.train.len(),
        data.valid.len(),
        data.train.positive_rate()
    );
    for lr in [3e-3f32, 1e-3, 1e-2] {
        let hyper = TrainHyper {
            lr,
            batch_size: 32,
            clip_norm: 5.0,
        };
        let mut l = Learner::new(ModelSpec::Lstm, vocab, cfg.seq_len, hyper, cfg.seed);
        let t = Instant::now();
        print!("LSTM lr={lr}:");
        for e in 0..30 {
            l.train_epoch(&data.train);
            if e % 3 == 2 {
                print!(" {:.2}", l.evaluate(&data.valid));
            }
        }
        println!(" ({:.0}s)", t.elapsed().as_secs_f64());
    }
}
