//! Offline stand-in for the slice of `crossbeam` this workspace uses:
//! [`channel::bounded`] MPSC channels with timeout receive. Backed by
//! `std::sync::mpsc::sync_channel`, which provides the same backpressure
//! semantics (send blocks when the buffer is full) that the in-process
//! federation transport relies on.

#![deny(missing_docs)]

/// Bounded multi-producer single-consumer channels.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// The sending half; cloneable across threads.
    #[derive(Clone, Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// The receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver is gone;
    /// carries the unsent value like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message.
        Timeout,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the buffer is full.
        ///
        /// # Errors
        ///
        /// [`SendError`] if the receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Receives one message, waiting up to `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] on deadline,
        /// [`RecvTimeoutError::Disconnected`] when all senders are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Receives one message, blocking indefinitely.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Disconnected`] when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            self.0.recv().map_err(|_| RecvTimeoutError::Disconnected)
        }
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_timeout() {
            let (tx, rx) = bounded::<u32>(4);
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = bounded::<usize>(16);
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            drop(tx);
            let mut got = vec![];
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}
