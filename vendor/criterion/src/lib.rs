//! Offline stand-in for the slice of `criterion` this workspace uses.
//!
//! Provides the same authoring surface — [`criterion_group!`] /
//! [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`Throughput`],
//! [`BenchmarkId`] — backed by a small real wall-clock harness: each
//! benchmark is warmed up, then timed over `sample_size` samples, and the
//! median per-iteration time (plus throughput, when declared) is printed.
//! There is no statistical regression analysis, plotting, or baseline
//! persistence.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Measurement configuration and entry point, mirroring
/// `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration run before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.0, self.sample_size, self.warm_up, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Declares the work per iteration so results include a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_benchmark(&label, samples, self.parent.warm_up, self.throughput, f);
        self
    }

    /// Ends the group. (Measurements are reported as they run.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a parameter's `Display` form.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, p: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Work performed per iteration, used to report a processing rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output to buffer in [`Bencher::iter_batched`].
/// Both variants run setup once per measured iteration here.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Cheap setup relative to the routine.
    SmallInput,
    /// Expensive setup relative to the routine.
    LargeInput,
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back-to-back for the chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    warm_up: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up: run single iterations until the budget is spent, using the
    // observed cost to size the timed samples at ≳1ms each.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_start.elapsed() < warm_up {
        f(&mut b);
        warm_iters += 1;
        if b.elapsed > warm_up {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
    let iters_per_sample = (1_000_000 / per_iter).clamp(1, 1_000_000) as u64;

    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters_per_sample as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let median = times[times.len() / 2];
    let lo = times[0];
    let hi = times[times.len() - 1];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  thrpt: {}/s", si(n as f64 / median, "elem")),
        Some(Throughput::Bytes(n)) => format!("  thrpt: {}/s", si(n as f64 / median, "B")),
        None => String::new(),
    };
    println!(
        "  {label:<44} time: [{} {} {}]{rate}",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn si(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.3} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// Declares a benchmark group function, in either the positional or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(n: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..n {
            acc = acc.wrapping_add(std::hint::black_box(i));
        }
        acc
    }

    #[test]
    fn harness_times_iter_and_batched() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("selftest");
        group.throughput(Throughput::Elements(1000));
        group.bench_function("iter", |b| b.iter(|| spin(1000)));
        group.bench_function(BenchmarkId::from_parameter("batched"), |b| {
            b.iter_batched(|| 1000u64, spin, BatchSize::SmallInput)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| spin(10)));
    }

    #[test]
    fn formatting_is_stable() {
        assert_eq!(fmt_time(2.5), "2.5000 s");
        assert_eq!(fmt_time(2.5e-3), "2.5000 ms");
        assert_eq!(fmt_time(2.5e-6), "2.5000 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
        assert_eq!(si(1.5e9, "B"), "1.500 GB");
        assert_eq!(si(1.5e3, "elem"), "1.500 Kelem");
    }
}
