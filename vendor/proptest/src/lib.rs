//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! Implements the [`strategy::Strategy`] trait (ranges, tuples, `prop_map` /
//! `prop_flat_map`, regex-subset string patterns), [`prelude::any`],
//! [`collection`] strategies, [`sample::Index`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros. Cases are generated from
//! a deterministic PRNG and failures panic immediately — there is no
//! shrinking, persistence, or forking, which the in-tree property tests
//! do not rely on.

#![deny(missing_docs)]

/// The RNG handed to strategies while generating a test case.
pub type TestRng = rand::rngs::StdRng;

/// Runtime configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Test-runner internals used by the [`proptest!`] macro expansion.
pub mod test_runner {
    pub use super::{ProptestConfig, TestRng};
    use rand::SeedableRng;

    /// Drives a test closure for the configured number of cases.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner for `config`.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `case` once per configured case with a per-case
        /// deterministic RNG, so failures reproduce across runs.
        pub fn run(&mut self, mut case: impl FnMut(&mut TestRng)) {
            for i in 0..self.config.cases {
                let mut rng = TestRng::seed_from_u64(0x9E37_79B9_7F4A_7C15 ^ u64::from(i));
                case(&mut rng);
            }
        }
    }
}

/// The [`strategy::Strategy`] trait and its combinator adapters.
pub mod strategy {
    use super::TestRng;
    use rand::RngExt;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Derives a follow-up strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Adapter returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Adapter returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident/$idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0);
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
        (A/0, B/1, C/2, D/3, E/4);
    }

    /// String patterns act as strategies over a regex subset: literals,
    /// `\`-escapes, `[a-z_]` classes, `(...)` groups, and the `?`, `*`,
    /// `+`, `{n}`, `{m,n}` quantifiers.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let nodes = super::pattern::parse(self);
            let mut out = String::new();
            super::pattern::generate(&nodes, rng, &mut out);
            out
        }
    }

    impl Strategy for String {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            self.as_str().generate(rng)
        }
    }
}

/// Parser/generator for the regex subset accepted by string strategies.
mod pattern {
    use super::TestRng;
    use rand::RngExt;

    pub(crate) enum Node {
        Lit(char),
        Class(Vec<char>),
        Group(Vec<Node>),
        Repeat(Box<Node>, u32, u32),
    }

    pub(crate) fn parse(pattern: &str) -> Vec<Node> {
        let mut chars = pattern.chars().peekable();
        let nodes = parse_seq(&mut chars, pattern);
        assert!(
            chars.next().is_none(),
            "unbalanced ')' in pattern {pattern:?}"
        );
        nodes
    }

    fn parse_seq(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<Node> {
        let mut nodes = Vec::new();
        while let Some(&c) = chars.peek() {
            let node = match c {
                ')' => break,
                '(' => {
                    chars.next();
                    let inner = parse_seq(chars, pattern);
                    assert_eq!(chars.next(), Some(')'), "unclosed '(' in {pattern:?}");
                    Node::Group(inner)
                }
                '[' => {
                    chars.next();
                    Node::Class(parse_class(chars, pattern))
                }
                '\\' => {
                    chars.next();
                    let e = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                    match e {
                        'd' => Node::Class(('0'..='9').collect()),
                        'w' => Node::Class(
                            ('a'..='z')
                                .chain('A'..='Z')
                                .chain('0'..='9')
                                .chain(std::iter::once('_'))
                                .collect(),
                        ),
                        's' => Node::Lit(' '),
                        other => Node::Lit(other),
                    }
                }
                '|' | '.' | '^' | '$' => {
                    panic!("unsupported regex feature {c:?} in pattern {pattern:?}")
                }
                lit => {
                    chars.next();
                    Node::Lit(lit)
                }
            };
            nodes.push(apply_quantifier(node, chars, pattern));
        }
        nodes
    }

    fn parse_class(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> Vec<char> {
        let mut members = Vec::new();
        loop {
            match chars.next() {
                None => panic!("unclosed '[' in pattern {pattern:?}"),
                Some(']') => break,
                Some('\\') => members.push(
                    chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
                ),
                Some(lo) => {
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.peek() {
                            Some(&']') | None => members.extend([lo, '-']),
                            Some(&hi) => {
                                chars.next();
                                members.extend(lo..=hi);
                            }
                        }
                    } else {
                        members.push(lo);
                    }
                }
            }
        }
        assert!(!members.is_empty(), "empty class in pattern {pattern:?}");
        members
    }

    fn apply_quantifier(
        node: Node,
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> Node {
        match chars.peek() {
            Some('?') => {
                chars.next();
                Node::Repeat(Box::new(node), 0, 1)
            }
            Some('*') => {
                chars.next();
                Node::Repeat(Box::new(node), 0, 8)
            }
            Some('+') => {
                chars.next();
                Node::Repeat(Box::new(node), 1, 8)
            }
            Some('{') => {
                chars.next();
                let mut bounds = String::new();
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(c) => bounds.push(c),
                        None => panic!("unclosed '{{' in pattern {pattern:?}"),
                    }
                }
                let (lo, hi) = match bounds.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repeat lower bound"),
                        hi.trim().parse().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n = bounds.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                };
                Node::Repeat(Box::new(node), lo, hi)
            }
            _ => node,
        }
    }

    pub(crate) fn generate(nodes: &[Node], rng: &mut TestRng, out: &mut String) {
        for node in nodes {
            match node {
                Node::Lit(c) => out.push(*c),
                Node::Class(members) => out.push(members[rng.random_range(0..members.len())]),
                Node::Group(inner) => generate(inner, rng, out),
                Node::Repeat(inner, lo, hi) => {
                    let n = rng.random_range(*lo..=*hi);
                    for _ in 0..n {
                        generate(std::slice::from_ref(inner), rng, out);
                    }
                }
            }
        }
    }
}

/// `any::<T>()` support: uniform whole-domain strategies per type.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct ArbStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for ArbStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> ArbStrategy<T> {
        ArbStrategy(PhantomData)
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> f32 {
            // Finite values spanning a wide magnitude range.
            let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
            let exp = (rng.next_u64() % 61) as i32 - 30;
            (unit - 0.5) * (2.0f32).powi(exp)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let exp = (rng.next_u64() % 121) as i32 - 60;
            (unit - 0.5) * (2.0f64).powi(exp)
        }
    }

    impl Arbitrary for super::sample::Index {
        fn arbitrary_value(rng: &mut TestRng) -> super::sample::Index {
            super::sample::Index::new(rng.next_u64())
        }
    }
}

/// Positional sampling helpers.
pub mod sample {
    /// An index drawn independently of any collection, projected onto a
    /// concrete length via [`Index::index`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn new(raw: u64) -> Self {
            Index(raw)
        }

        /// Projects this index onto `0..len`. Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngExt;
    use std::collections::BTreeMap;

    /// Inclusive size bounds for a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` within the given size bounds.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeMap<K::Value, V::Value>`. Key collisions
    /// overwrite, so maps may come out smaller than the drawn size.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Generates ordered maps from independent key and value strategies.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// One-stop imports for property tests.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body runs
/// once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run(|rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)*
                $body
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::TestRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-2.0f32..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = "[a-z]{1,8}(\\.[a-z]{1,8})?".generate(&mut rng);
            let parts: Vec<&str> = s.split('.').collect();
            assert!(parts.len() <= 2, "{s:?}");
            for p in parts {
                assert!((1..=8).contains(&p.len()), "{s:?}");
                assert!(p.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            }
        }
    }

    #[test]
    fn collections_and_maps_generate() {
        let mut rng = TestRng::seed_from_u64(3);
        let v = crate::collection::vec(0u8..255, 4usize).generate(&mut rng);
        assert_eq!(v.len(), 4);
        let m = crate::collection::btree_map("[a-z]{1,4}", 0u32..10, 0..4).generate(&mut rng);
        assert!(m.len() < 4);
    }

    #[test]
    fn flat_map_threads_values() {
        let mut rng = TestRng::seed_from_u64(4);
        let strat = (1usize..4, 1usize..4)
            .prop_flat_map(|(r, c)| crate::collection::vec(0.0f32..1.0, r * c));
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() <= 9);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_draws_args(a in 0u64..100, b in any::<u8>()) {
            prop_assert!(a < 100);
            prop_assert_eq!(u64::from(b) & !0xFF, 0);
        }
    }
}
