//! Offline stand-in for the `serde` facade.
//!
//! The workspace annotates wire/config types with
//! `#[derive(serde::Serialize, serde::Deserialize)]` so they are ready for
//! a real serde-based export format, but nothing in-tree serializes
//! through serde today (the federated wire protocol uses the hand-rolled
//! codec in `clinfl-flare::wire`). Since the build environment cannot
//! reach crates.io, this crate keeps those annotations compiling: the
//! traits are markers with blanket impls, and the derives (re-exported
//! from the companion `serde_derive` proc-macro crate) expand to nothing
//! while still consuming `#[serde(...)]` attributes.
//!
//! Swapping in the real serde later requires only pointing the workspace
//! dependency back at crates.io; no source changes.

#![deny(missing_docs)]

/// Marker for serializable types. Blanket-implemented for everything so
/// `T: Serialize` bounds and derives stay satisfied.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Blanket-implemented for everything.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker for owned-deserializable types, as in real serde.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
