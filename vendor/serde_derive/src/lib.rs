//! No-op `Serialize` / `Deserialize` derives for the vendored serde
//! facade. The trait impls come from blanket impls in the `serde` stub,
//! so the derives only need to exist (and claim the `#[serde(...)]`
//! helper attribute) for annotated types to compile.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` has a blanket impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` has a blanket impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
