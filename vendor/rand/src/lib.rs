//! Offline drop-in for the subset of the `rand` crate API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] extension methods `random` / `random_range`.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate keeps the workspace self-contained. The generator is
//! xoshiro256** seeded through SplitMix64 — statistically strong for
//! simulation workloads and fully deterministic per seed, which is what
//! the synthetic-data generators and test-suite rely on. It makes no
//! cryptographic claims (the workspace's security layer derives its own
//! keystreams and only draws session identifiers here).

#![deny(missing_docs)]

/// A source of random 64-bit words. Blanket-implements [`RngExt`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    ///
    /// Unlike upstream `rand`'s ChaCha-based `StdRng` this is not a CSPRNG;
    /// every use in the workspace is simulation or test seeding where
    /// determinism and speed are what matter.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into four state words, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from a generator's raw 64-bit output
/// (the `Standard`/`StandardUniform` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Maps 64 uniform bits onto `Self`'s uniform distribution.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_bits(bits: u64) -> Self { bits as $t }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn from_bits(bits: u64) -> Self {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn from_bits(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Scalar types usable as range endpoints in [`RngExt::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`; `hi` must be greater than `lo`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draws uniformly from `[lo, hi]`; `hi` must be at least `lo`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "empty random_range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Multiply-shift maps 64 uniform bits onto [0, span) with
                // bias below 2^-64 * span — irrelevant at simulation scale.
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as u64).wrapping_add(off)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "empty random_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as u64).wrapping_add(off)) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "empty random_range");
                let f = <$t as Standard>::from_bits(rng.next_u64());
                lo + f * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl<T: SampleUniform> SampleRange for std::ops::Range<T> {
    type Output = T;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange for std::ops::RangeInclusive<T> {
    type Output = T;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors the upstream `Rng`/`RngExt` extension trait).
pub trait RngExt: RngCore {
    /// Draws a value of `T` from its standard uniform distribution
    /// (integers over their full width, floats in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Draws uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f32 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.random();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.random_range(0usize..5);
            seen[v] = true;
            let w = rng.random_range(10u32..=12);
            assert!((10..=12).contains(&w));
            let f = rng.random_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reached");
    }

    #[test]
    fn mean_of_unit_floats_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
