//! Multi-tenant job runtime integration: concurrent federations over the
//! shared pool must stay bit-identical to solo runs, keep their metric
//! namespaces apart, and obey the HTTP admin API end-to-end.

use clinfl_flare::admin::{AdminServer, JobFactory};
use clinfl_flare::executor::{ArithmeticExecutor, Executor, TaskContext};
use clinfl_flare::job::JobConfig;
use clinfl_flare::jobs::{JobRuntime, JobSpec, JobState};
use clinfl_flare::{Dxo, WeightTensor, Weights};
use clinfl_obs::json::Value;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn initial() -> Weights {
    let mut w = Weights::new();
    w.insert("p".into(), WeightTensor::new(vec![4], vec![0.0; 4]));
    w
}

fn arith_spec(name: &str, rounds: u32, clients: usize, seed: u64) -> JobSpec {
    JobSpec {
        config: JobConfig::parse(&format!(
            "name = {name}\nrounds = {rounds}\nclients = {clients}\nmin_clients = {clients}\n"
        ))
        .unwrap(),
        seed,
        initial: initial(),
        make_executor: Box::new(|i, _| {
            Box::new(ArithmeticExecutor {
                delta: (i + 1) as f32 * 0.5,
                n_examples: 10 + i as u64,
            })
        }),
        checkpoint_dir: None,
    }
}

/// Four concurrent jobs over one runtime, each compared against a solo
/// same-seed run: the shared worker pool and interleaved schedules must
/// not perturb a single bit of any job's final weights, and each job's
/// scoped registry must count exactly its own rounds.
#[test]
fn four_concurrent_jobs_match_solo_runs_bit_identically() {
    let params: [(u32, u64); 4] = [(2, 11), (3, 22), (4, 33), (5, 44)];

    // Solo references, one at a time.
    let mut solo = Vec::new();
    for (i, (rounds, seed)) in params.iter().enumerate() {
        let rt = JobRuntime::new(1);
        let id = rt.submit(arith_spec(&format!("solo-{i}"), *rounds, 3, *seed));
        assert_eq!(
            rt.wait(id, Duration::from_secs(60)),
            Some(JobState::Finished)
        );
        solo.push(rt.result(id).unwrap().final_weights);
        rt.join_all();
    }

    // The same four jobs, concurrently.
    let rt = JobRuntime::new(4);
    let ids: Vec<u64> = params
        .iter()
        .enumerate()
        .map(|(i, (rounds, seed))| rt.submit(arith_spec(&format!("conc-{i}"), *rounds, 3, *seed)))
        .collect();
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(
            rt.wait(*id, Duration::from_secs(60)),
            Some(JobState::Finished),
            "job {i} did not finish"
        );
        let got = rt.result(*id).unwrap().final_weights;
        assert_eq!(got, solo[i], "job {i} diverged from its solo same-seed run");
    }

    // Namespace isolation: each registry holds exactly its own job's
    // round count — distinct by construction, so any cross-talk shows.
    for (i, id) in ids.iter().enumerate() {
        let reg = rt.registry(*id).unwrap();
        assert_eq!(
            reg.counter_value("flare.round.count"),
            u64::from(params[i].0),
            "job {i} registry contaminated"
        );
    }
    rt.join_all();
}

/// The real model path: two same-seed clinical LSTM jobs submitted
/// concurrently through the `clinfl serve` factory must both finish
/// bit-identical to a solo run of the identical config.
#[test]
fn same_seed_clinical_jobs_concurrent_equals_solo() {
    let cfg_text =
        "name = lstm-pair\nrounds = 1\nclients = 2\nmin_clients = 2\nmodel = lstm\nseed = 5\n";
    let base = clinfl::PipelineConfig::scaled(256);

    let solo_rt = JobRuntime::new(1);
    let factory = clinfl::drivers::serve_job_factory(base.clone(), None);
    let solo_id = solo_rt.submit(factory(JobConfig::parse(cfg_text).unwrap()).unwrap());
    assert_eq!(
        solo_rt.wait(solo_id, Duration::from_secs(300)),
        Some(JobState::Finished)
    );
    let solo = solo_rt.result(solo_id).unwrap().final_weights;
    solo_rt.join_all();

    let rt = JobRuntime::new(2);
    let factory = clinfl::drivers::serve_job_factory(base, None);
    let a = rt.submit(factory(JobConfig::parse(cfg_text).unwrap()).unwrap());
    let b = rt.submit(factory(JobConfig::parse(cfg_text).unwrap()).unwrap());
    assert_eq!(
        rt.wait(a, Duration::from_secs(300)),
        Some(JobState::Finished)
    );
    assert_eq!(
        rt.wait(b, Duration::from_secs(300)),
        Some(JobState::Finished)
    );
    let wa = rt.result(a).unwrap().final_weights;
    let wb = rt.result(b).unwrap().final_weights;
    assert_eq!(wa, solo, "concurrent job A diverged from solo");
    assert_eq!(wb, solo, "concurrent job B diverged from solo");
    rt.join_all();
}

// ---------------------------------------------------------------------
// Admin HTTP end-to-end
// ---------------------------------------------------------------------

/// Trains like [`ArithmeticExecutor`] but sleeps per task so an abort
/// can land mid-round.
struct SlowExecutor(ArithmeticExecutor);

impl Executor for SlowExecutor {
    fn train(&mut self, global: &Weights, ctx: &TaskContext) -> Dxo {
        std::thread::sleep(Duration::from_millis(25));
        self.0.train(global, ctx)
    }
    fn validate(&mut self, global: &Weights, ctx: &TaskContext) -> f64 {
        self.0.validate(global, ctx)
    }
}

/// Factory for the HTTP tests: `model = slow` selects the sleeping
/// executor, anything else the fast one.
fn test_factory() -> JobFactory {
    Box::new(|config: JobConfig| {
        let slow = config.model.as_deref() == Some("slow");
        Ok(JobSpec {
            seed: config.seed.unwrap_or(1),
            config,
            initial: initial(),
            make_executor: Box::new(move |i, _| {
                let inner = ArithmeticExecutor {
                    delta: (i + 1) as f32,
                    n_examples: 10,
                };
                if slow {
                    Box::new(SlowExecutor(inner))
                } else {
                    Box::new(inner)
                }
            }),
            checkpoint_dir: None,
        })
    })
}

/// One HTTP/1.1 exchange; returns `(status, body)`.
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn submit(addr: std::net::SocketAddr, config: &str) -> u64 {
    let (status, body) = http(addr, "POST", "/jobs", config);
    assert_eq!(status, 201, "{body}");
    Value::parse(&body)
        .unwrap()
        .get("id")
        .and_then(Value::as_u64)
        .unwrap()
}

fn state_of(addr: std::net::SocketAddr, id: u64) -> String {
    let (status, body) = http(addr, "GET", &format!("/jobs/{id}"), "");
    assert_eq!(status, 200, "{body}");
    Value::parse(&body)
        .unwrap()
        .get("state")
        .and_then(Value::as_str)
        .unwrap()
        .to_string()
}

fn wait_state(addr: std::net::SocketAddr, id: u64, want: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let state = state_of(addr, id);
        if state == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in {state:?}, wanted {want:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Abort one of two concurrent jobs over the admin API mid-round: the
/// abort must release the job's sessions promptly (far faster than its
/// remaining rounds would take) and the surviving job must finish green
/// with correct metrics.
#[test]
fn http_abort_mid_round_releases_sessions_and_spares_neighbor() {
    let runtime = JobRuntime::new(2);
    let server = AdminServer::bind("127.0.0.1:0", runtime.clone(), test_factory()).unwrap();
    let addr = server.local_addr();

    // 400 slow rounds ≈ 20+ s if left alone; the abort must cut that to
    // well under the stream of remaining rounds.
    let doomed = submit(
        addr,
        "name = doomed\nrounds = 400\nclients = 2\nmin_clients = 2\nmodel = slow\n",
    );
    let survivor = submit(
        addr,
        "name = survivor\nrounds = 3\nclients = 2\nmin_clients = 2\n",
    );
    wait_state(addr, doomed, "running", Duration::from_secs(20));

    let abort_started = Instant::now();
    let (status, body) = http(addr, "POST", &format!("/jobs/{doomed}/abort"), "");
    assert_eq!(status, 200);
    assert!(body.contains("\"aborted\":true"), "{body}");
    wait_state(addr, doomed, "aborted", Duration::from_secs(15));
    // Promptness: teardown beats the ~20 s the remaining rounds cost.
    assert!(
        abort_started.elapsed() < Duration::from_secs(15),
        "abort took {:?}",
        abort_started.elapsed()
    );

    wait_state(addr, survivor, "finished", Duration::from_secs(60));
    let (status, body) = http(addr, "GET", &format!("/jobs/{survivor}/metrics"), "");
    assert_eq!(status, 200);
    let snap = Value::parse(&body).unwrap();
    assert_eq!(
        snap.get("counters")
            .and_then(|c| c.get("flare.round.count"))
            .and_then(Value::as_u64),
        Some(3),
        "survivor's registry must show exactly its own 3 rounds"
    );
    // The aborted job's registry likewise stays its own: fewer than 400
    // rounds ever ran, and the abort marker landed.
    let (_, body) = http(addr, "GET", &format!("/jobs/{doomed}/metrics"), "");
    let snap = Value::parse(&body).unwrap();
    let aborted_rounds = snap
        .get("counters")
        .and_then(|c| c.get("flare.round.count"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert!(
        aborted_rounds < 400,
        "doomed job ran {aborted_rounds} rounds"
    );
    assert_eq!(
        snap.get("counters")
            .and_then(|c| c.get("flare.run.aborted"))
            .and_then(Value::as_u64),
        Some(1)
    );

    server.join();
    runtime.shutdown();
}
