//! Fleet-scale integration for the event-driven server: a mid-round kill
//! with hundreds of live sessions must release every session promptly
//! (the reactor owns all inbound state — nothing leaks with it gone),
//! `stop()` must be idempotent, and a deep aggregation tree must compute
//! the same model as the flat fleet when the arithmetic is exact.

use clinfl_flare::aggregator::WeightedFedAvg;
use clinfl_flare::client::FlClient;
use clinfl_flare::controller::{ClientGateway, SagConfig};
use clinfl_flare::executor::ArithmeticExecutor;
use clinfl_flare::messages::TaskAssignment;
use clinfl_flare::provision::Project;
use clinfl_flare::server::FlServer;
use clinfl_flare::simulator::{SimulatorConfig, SimulatorRunner, TreeConfig};
use clinfl_flare::{EventLog, FlareError, WeightTensor, Weights};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

const N_SITES: usize = 256;

fn initial() -> Weights {
    let mut w = Weights::new();
    w.insert("p".into(), WeightTensor::new(vec![4], vec![0.0; 4]));
    w
}

/// 256 clients register and receive a round-0 task; the server is then
/// killed mid-round (no submission ever arrives). Every client must
/// observe the disconnect within a tight deadline — no session may stay
/// wedged waiting for a round that will never close — and a repeated
/// `stop()` must be a no-op.
#[test]
fn mid_round_shutdown_releases_every_session() {
    let log = EventLog::new();
    let prov = Project::with_n_sites("simulator_server", N_SITES, 99).provision();
    let mut server = FlServer::new(prov.server.clone(), log.clone(), 99);

    let got_task = Arc::new(AtomicUsize::new(0));
    let (done_tx, done_rx) = mpsc::channel::<Result<Duration, String>>();
    let mut threads = Vec::with_capacity(N_SITES);
    for pkg in prov.sites.clone() {
        let conn = server.serve_session();
        let clog = log.clone();
        let got = Arc::clone(&got_task);
        let done = done_tx.clone();
        threads.push(std::thread::spawn(move || {
            let run = || -> Result<Duration, String> {
                let mut client = FlClient::register(conn, &pkg, 0xA11CE, clog)
                    .map_err(|e| format!("register: {e}"))?;
                match client.next_task() {
                    Ok(TaskAssignment::Train { round: 0, .. }) => {}
                    other => return Err(format!("expected round-0 train, got {other:?}")),
                }
                got.fetch_add(1, Ordering::SeqCst);
                // Never submit: block in the next receive until the
                // server dies under us, and report how long that took.
                let waiting = Instant::now();
                match client.next_task() {
                    Err(FlareError::Transport(_)) => Ok(waiting.elapsed()),
                    other => Err(format!("expected disconnect, got {other:?}")),
                }
            };
            let _ = done.send(run());
        }));
    }
    drop(done_tx);

    assert_eq!(
        server.wait_for_clients(N_SITES, Duration::from_secs(60)),
        N_SITES
    );
    assert_eq!(server.open_sessions(), N_SITES);
    assert_eq!(server.peak_sessions(), N_SITES);

    let delivered = server.broadcast(&TaskAssignment::Train {
        round: 0,
        total_rounds: 3,
        weights: initial(),
    });
    assert_eq!(delivered, N_SITES);
    // Wait until every client holds the task and is back in its receive
    // loop — the kill must land mid-round, not mid-handshake.
    let deadline = Instant::now() + Duration::from_secs(30);
    while got_task.load(Ordering::SeqCst) < N_SITES {
        assert!(Instant::now() < deadline, "clients never received round 0");
        std::thread::sleep(Duration::from_millis(5));
    }

    let stopping = Instant::now();
    server.stop();
    server.stop(); // idempotent: second call must return immediately
    server.disconnect_all();
    let stop_took = stopping.elapsed();
    assert!(
        stop_took < Duration::from_secs(5),
        "stop+disconnect took {stop_took:?} with {N_SITES} live sessions"
    );

    for _ in 0..N_SITES {
        let outcome = done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("a client never observed the shutdown");
        let released = outcome.expect("client failed before shutdown");
        assert!(
            released < Duration::from_secs(10),
            "session release took {released:?}"
        );
    }
    for t in threads {
        t.join().expect("client thread panicked");
    }
}

/// `stop()` on a server that never served a session (and after a prior
/// stop) must not hang or panic.
#[test]
fn stop_is_safe_without_sessions() {
    let log = EventLog::new();
    let prov = Project::with_n_sites("simulator_server", 1, 5).provision();
    let mut server = FlServer::new(prov.server, log, 5);
    server.stop();
    server.stop();
    server.disconnect_all();
    assert_eq!(server.open_sessions(), 0);
}

/// Runs `n` sites through the simulator (flat when `tree` is `None`)
/// with integer deltas and equal example counts, so weighted FedAvg is
/// exact in `f32` at every interior node when shard sizes are powers of
/// two — any flat-vs-tree divergence is a real aggregation-order bug,
/// not float noise.
fn run_sites(n: usize, tree: Option<TreeConfig>) -> clinfl_flare::simulator::SimulationResult {
    let config = SimulatorConfig {
        n_clients: n,
        sag: SagConfig {
            rounds: 3,
            min_clients: 1,
            round_timeout: Duration::from_secs(120),
            validate_global: false,
            ..SagConfig::default()
        },
        seed: 41,
        tree,
        ..SimulatorConfig::default()
    };
    SimulatorRunner::new(config)
        .run_simple(
            initial(),
            |i, _| {
                Box::new(ArithmeticExecutor {
                    delta: (i % 7 + 1) as f32,
                    n_examples: 1,
                })
            },
            &WeightedFedAvg,
        )
        .expect("run failed")
}

fn assert_tree_matches_flat(
    flat: &clinfl_flare::simulator::SimulationResult,
    tree: &clinfl_flare::simulator::SimulationResult,
) {
    let (f, t) = (
        &flat.workflow.final_weights["p"],
        &tree.workflow.final_weights["p"],
    );
    assert_eq!(f.data, t.data, "tree aggregation diverged from flat");
    assert_eq!(
        flat.workflow.rounds.last().unwrap().contributors,
        tree.workflow.rounds.last().unwrap().contributors,
        "round manifests diverged"
    );
}

/// The paper-scale acceptance case: a depth-2 tree over the 8-site fleet
/// (two shards of four) is bit-identical to the flat run for the same
/// seed.
#[test]
fn tree_depth2_matches_flat_at_8_sites() {
    let flat = run_sites(8, None);
    let tree = run_sites(
        8,
        Some(TreeConfig {
            depth: 2,
            fanout: 4,
        }),
    );
    assert!(
        tree.log.contains("Aggregation tree: depth 2"),
        "tree topology not engaged"
    );
    assert_eq!(tree.client_rounds, vec![3; 8]);
    assert_tree_matches_flat(&flat, &tree);
}

/// The same bit-identity holds three levels deep over 256 sites.
#[test]
fn tree_depth3_matches_flat_at_256_sites() {
    let flat = run_sites(N_SITES, None);
    let tree = run_sites(
        N_SITES,
        Some(TreeConfig {
            depth: 3,
            fanout: 8,
        }),
    );
    assert!(
        tree.log.contains("Aggregation tree: depth 3"),
        "tree topology not engaged"
    );
    assert_eq!(tree.client_rounds, vec![3; N_SITES]);
    assert_tree_matches_flat(&flat, &tree);
}
