//! Cross-crate integration: MLM pretraining dynamics (the paper's Fig. 2
//! mechanics at test scale).

use clinfl::drivers::{build_mlm_data, pretrain_mlm, MlmScheme};
use clinfl::PipelineConfig;

fn mlm_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::fast_demo();
    cfg.pretrain.scale = 1024; // ~440 train sequences
    cfg.pretrain_rounds = 3;
    cfg
}

#[test]
fn untrained_mlm_loss_is_near_log_vocab() {
    let cfg = mlm_cfg();
    let data = build_mlm_data(&cfg);
    let curve = pretrain_mlm(&cfg, MlmScheme::Centralized, &data).expect("runs");
    let expected = (data.vocab_size as f64).ln();
    assert!(
        (curve[0] - expected).abs() < 0.8,
        "initial loss {} should be near ln|V| = {expected}",
        curve[0]
    );
}

#[test]
fn centralized_mlm_loss_decreases() {
    let cfg = mlm_cfg();
    let data = build_mlm_data(&cfg);
    let curve = pretrain_mlm(&cfg, MlmScheme::Centralized, &data).expect("runs");
    assert_eq!(curve.len(), (cfg.pretrain_rounds + 1) as usize);
    // At test scale (~80 optimizer steps) the drop is modest and the
    // 32-sequence evaluation carries ±0.03 masking noise, so check that
    // the best trained point clearly beats the untrained model; the full
    // Fig. 2 runs train far longer (see EXPERIMENTS.md).
    let best = curve.iter().skip(1).fold(f64::INFINITY, |a, &v| a.min(v));
    assert!(
        best < curve[0] - 0.03,
        "loss should fall below initial: {curve:?}"
    );
}

#[test]
fn federated_mlm_matches_curve_length_and_decreases() {
    let cfg = mlm_cfg();
    let data = build_mlm_data(&cfg);
    let curve = pretrain_mlm(&cfg, MlmScheme::FlBalanced, &data).expect("runs");
    assert_eq!(curve.len(), (cfg.pretrain_rounds + 1) as usize);
    let min = curve
        .iter()
        .skip(1)
        .fold(f64::INFINITY, |acc, &v| acc.min(v));
    assert!(
        min < curve[0],
        "FL loss should fall below the initial value at some round: {curve:?}"
    );
}

#[test]
fn small_data_scheme_uses_fraction_of_corpus() {
    // Indirect check: small-data final loss should be no better than the
    // centralized final loss (it sees 1/8 of the sequences).
    let cfg = mlm_cfg();
    let data = build_mlm_data(&cfg);
    let central = pretrain_mlm(&cfg, MlmScheme::Centralized, &data).expect("runs");
    let small = pretrain_mlm(&cfg, MlmScheme::SmallData, &data).expect("runs");
    assert!(
        small.last().unwrap() >= &(central.last().unwrap() - 0.15),
        "small-data {:?} should not beat centralized {:?}",
        small.last(),
        central.last()
    );
}
