//! Cross-crate integration: the federated runtime over real TCP sockets,
//! token rejection, and in-proc/TCP parity.

use clinfl_flare::aggregator::WeightedFedAvg;
use clinfl_flare::client::{ClientBehavior, FlClient};
use clinfl_flare::controller::{SagConfig, ScatterAndGather};
use clinfl_flare::executor::ArithmeticExecutor;
use clinfl_flare::persistor::InMemoryPersistor;
use clinfl_flare::provision::{Project, SitePackage};
use clinfl_flare::server::FlServer;
use clinfl_flare::transport::TcpTransport;
use clinfl_flare::{EventLog, FlareError, WeightTensor, Weights};
use std::time::Duration;

fn initial() -> Weights {
    let mut w = Weights::new();
    w.insert("w".into(), WeightTensor::new(vec![2], vec![0.0, 0.0]));
    w
}

fn run_tcp_federation(n_clients: usize, rounds: u32) -> Weights {
    let provisioned = Project::with_n_sites("tcp_test", n_clients, 5).provision();
    let listener = TcpTransport::listen("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let log = EventLog::new();
    let mut server = FlServer::new(provisioned.server.clone(), log.clone(), 5);

    let mut threads = Vec::new();
    for (i, package) in provisioned.sites.iter().cloned().enumerate() {
        let addr = addr.clone();
        let clog = log.clone();
        threads.push(std::thread::spawn(move || {
            let conn = TcpTransport::connect(&addr).unwrap();
            let mut client = FlClient::register(conn, &package, 1000 + i as u64, clog).unwrap();
            let mut ex = ArithmeticExecutor {
                delta: 1.0,
                n_examples: 10,
            };
            client.run(&mut ex, ClientBehavior::default()).unwrap()
        }));
    }
    for _ in 0..n_clients {
        let (stream, _) = listener.accept().unwrap();
        server.serve_connection(TcpTransport::from_stream(stream).unwrap());
    }
    assert_eq!(
        server.wait_for_clients(n_clients, Duration::from_secs(10)),
        n_clients
    );

    let sag = ScatterAndGather::new(
        SagConfig {
            rounds,
            min_clients: n_clients,
            round_timeout: Duration::from_secs(30),
            validate_global: false,
            ..SagConfig::default()
        },
        log,
    );
    let result = sag
        .run(
            &mut server,
            &WeightedFedAvg,
            &mut InMemoryPersistor::new(),
            initial(),
        )
        .unwrap();
    for t in threads {
        t.join().unwrap();
    }
    server.shutdown();
    result.final_weights
}

#[test]
fn tcp_federation_matches_expected_math() {
    let w = run_tcp_federation(3, 4);
    // Every client adds 1.0 per round → +1 per aggregated round.
    assert_eq!(w["w"].data, vec![4.0, 4.0]);
}

#[test]
fn invalid_token_is_rejected_over_tcp() {
    let provisioned = Project::with_n_sites("tcp_reject", 1, 6).provision();
    let listener = TcpTransport::listen("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let log = EventLog::new();
    let mut server = FlServer::new(provisioned.server.clone(), log.clone(), 6);

    let clog = log.clone();
    let handle = std::thread::spawn(move || {
        let conn = TcpTransport::connect(&addr).unwrap();
        let forged = SitePackage {
            site_name: "site-1".into(),
            token: "forged-token".into(),
        };
        FlClient::register(conn, &forged, 1, clog)
    });
    let (stream, _) = listener.accept().unwrap();
    server.serve_connection(TcpTransport::from_stream(stream).unwrap());

    let result = handle.join().unwrap();
    assert!(matches!(result, Err(FlareError::InvalidToken { .. })));
    assert_eq!(server.wait_for_clients(1, Duration::from_millis(300)), 0);
    server.shutdown();
}

#[test]
fn duplicate_site_registration_rejected() {
    let provisioned = Project::with_n_sites("dup_test", 1, 8).provision();
    let listener = TcpTransport::listen("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let log = EventLog::new();
    let mut server = FlServer::new(provisioned.server.clone(), log.clone(), 8);

    let package = provisioned.sites[0].clone();
    // First registration succeeds.
    let p1 = package.clone();
    let a1 = addr.clone();
    let l1 = log.clone();
    let t1 = std::thread::spawn(move || {
        let conn = TcpTransport::connect(&a1).unwrap();
        FlClient::register(conn, &p1, 1, l1)
    });
    let (stream, _) = listener.accept().unwrap();
    server.serve_connection(TcpTransport::from_stream(stream).unwrap());
    // Keep the first client alive so its session stays registered.
    let _first_client = t1.join().unwrap().unwrap();
    server.wait_for_clients(1, Duration::from_secs(5));

    // Second registration with the same live site name is refused.
    let t2 = std::thread::spawn(move || {
        let conn = TcpTransport::connect(&addr).unwrap();
        FlClient::register(conn, &package, 2, log)
    });
    let (stream, _) = listener.accept().unwrap();
    server.serve_connection(TcpTransport::from_stream(stream).unwrap());
    assert!(matches!(
        t2.join().unwrap(),
        Err(FlareError::InvalidToken { .. })
    ));
    server.shutdown();
}
