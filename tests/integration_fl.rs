//! Cross-crate integration: federated fine-tuning end to end
//! (data → models → flare runtime → metrics).

use clinfl::{drivers, ModelSpec, PipelineConfig};

fn test_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::fast_demo();
    cfg.cohort.n_patients = 480;
    cfg.cohort.seed = 77;
    cfg.rounds = 3;
    cfg.local_epochs = 1;
    cfg.epochs = 3;
    cfg.seed = 42;
    cfg
}

#[test]
fn federated_lstm_learns_better_than_chance() {
    let cfg = test_cfg();
    let out = drivers::train_federated(&cfg, ModelSpec::Lstm).expect("federation runs");
    // Positive rate ~21%, so majority-class is ~0.79; "better than chance"
    // here means clearly above 0.5 and the history must be non-empty.
    assert!(out.accuracy > 0.55, "accuracy {}", out.accuracy);
    assert_eq!(out.history.len(), cfg.rounds as usize);
}

#[test]
fn federated_run_produces_fig3_log_structure() {
    let cfg = test_cfg();
    let out = drivers::train_federated(&cfg, ModelSpec::Lstm).expect("federation runs");
    let log = out.log.expect("federated runs carry a log");
    for phrase in [
        "Create the simulate clients.",
        "New client site-1@127.0.0.1 joined",
        "Successfully registered client:site-8",
        "Local epoch site-1: 1/1",
        "aggregating 8 update(s) at round 0",
        "Start persist model on server.",
        "Round 2 finished.",
    ] {
        assert!(log.contains(phrase), "missing log phrase {phrase:?}");
    }
    // Per-epoch timing is reported like the paper's "12.7 sec/local epoch".
    assert!(
        log.lines().iter().any(|l| l.contains("sec/local epoch")),
        "missing local-epoch timing"
    );
}

#[test]
fn federated_tracks_centralized_on_same_budget() {
    // With an identical total epoch budget, FL should land in the same
    // accuracy neighbourhood as centralized training (Table III shows a
    // ≤0.4pt gap at paper scale; allow a loose margin at test scale).
    let cfg = test_cfg();
    let central = drivers::train_centralized(&cfg, ModelSpec::Lstm);
    let fl = drivers::train_federated(&cfg, ModelSpec::Lstm).expect("federation runs");
    assert!(
        (central.accuracy - fl.accuracy).abs() < 0.25,
        "centralized {:.3} vs FL {:.3}",
        central.accuracy,
        fl.accuracy
    );
}

#[test]
fn standalone_sites_vary_and_average_below_centralized_bound() {
    let cfg = test_cfg();
    let standalone = drivers::train_standalone(&cfg, ModelSpec::Lstm);
    assert_eq!(standalone.per_site.len(), 8);
    // Tiny sites (2-4% of data) should not beat the best-possible 0.92
    // Bayes accuracy; sanity-check the whole range.
    for acc in &standalone.per_site {
        assert!((0.0..=1.0).contains(acc));
    }
    assert!(standalone.mean_accuracy < 0.92);
}
