//! Wire-codec integration: negotiated weight compression must not change
//! federation results. Lossless codecs reproduce the all-raw run
//! bit-for-bit (including mixed fleets and pre-codec servers), lossy
//! codecs with error feedback stay within quantization tolerance, and
//! chaos runs complete with compression on.
//!
//! The wire-format spec these runs exercise is DESIGN.md §3g.

use clinfl_flare::aggregator::WeightedFedAvg;
use clinfl_flare::codec::CodecSpec;
use clinfl_flare::controller::SagConfig;
use clinfl_flare::executor::ArithmeticExecutor;
use clinfl_flare::faults::FaultConfig;
use clinfl_flare::simulator::{SimulationResult, SimulatorConfig, SimulatorRunner};
use clinfl_flare::{WeightTensor, Weights};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Fault configs rely on real-time grace windows; timing-sensitive runs
/// take this lock and run alone (same pattern as `integration_faults`).
static TIMING_LOCK: Mutex<()> = Mutex::new(());

fn timing_guard() -> MutexGuard<'static, ()> {
    TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn initial() -> Weights {
    let mut w = Weights::new();
    w.insert(
        "embed".into(),
        WeightTensor::new(
            vec![2, 4],
            vec![0.5, -1.25, 3.0, 0.0, -0.75, 2.5, -4.0, 1.0],
        ),
    );
    w.insert(
        "bias".into(),
        WeightTensor::new(vec![3], vec![0.1, -0.2, 0.3]),
    );
    w
}

fn base_config(rounds: u32) -> SimulatorConfig {
    SimulatorConfig {
        n_clients: 4,
        sag: SagConfig {
            rounds,
            ..SagConfig::default()
        },
        seed: 7,
        ..SimulatorConfig::default()
    }
}

fn run_sim(cfg: SimulatorConfig) -> SimulationResult {
    SimulatorRunner::new(cfg)
        .run_simple(
            initial(),
            |i, _| {
                Box::new(ArithmeticExecutor {
                    delta: (i as f32 + 1.0) * 0.5,
                    n_examples: 10 * (i as u64 + 1),
                })
            },
            &WeightedFedAvg,
        )
        .expect("simulation completes")
}

fn bits(w: &Weights) -> Vec<(String, Vec<u32>)> {
    w.iter()
        .map(|(n, t)| (n.clone(), t.data.iter().map(|v| v.to_bits()).collect()))
        .collect()
}

/// A fleet negotiating the lossless `delta` codec produces exactly the
/// bytes-for-bits result of the raw protocol.
#[test]
fn lossless_fleet_matches_all_raw_bitwise() {
    let raw = run_sim(base_config(4));
    let mut cfg = base_config(4);
    cfg.wire = CodecSpec::parse("delta").unwrap();
    let coded = run_sim(cfg);
    assert_eq!(
        bits(&raw.workflow.final_weights),
        bits(&coded.workflow.final_weights),
        "lossless codec changed the federation result"
    );
    assert!(
        coded.log.contains("negotiated wire codec delta"),
        "codec was never negotiated"
    );
}

/// Raw and codec clients can share one federation; the result still
/// matches the all-raw run bit-for-bit when the codecs are lossless.
#[test]
fn mixed_fleet_matches_all_raw_bitwise() {
    let raw = run_sim(base_config(4));
    let mut cfg = base_config(4);
    cfg.wire = CodecSpec::parse("delta").unwrap();
    let mut overrides = BTreeMap::new();
    overrides.insert(1, CodecSpec::raw());
    overrides.insert(3, CodecSpec::raw());
    cfg.wire_overrides = overrides;
    let mixed = run_sim(cfg);
    assert_eq!(
        bits(&raw.workflow.final_weights),
        bits(&mixed.workflow.final_weights),
        "mixed raw/codec fleet diverged from the all-raw run"
    );
}

/// A pre-codec server ignores proposals; clients must fall back to the
/// raw format and still reproduce the all-raw result exactly.
#[test]
fn silent_server_falls_back_to_raw() {
    let raw = run_sim(base_config(3));
    let mut cfg = base_config(3);
    cfg.wire = CodecSpec::parse("delta+int8").unwrap();
    cfg.server_codecs_enabled = false;
    let fallback = run_sim(cfg);
    assert_eq!(
        bits(&raw.workflow.final_weights),
        bits(&fallback.workflow.final_weights),
        "raw fallback diverged from the all-raw run"
    );
    assert!(
        fallback.log.contains("using raw format"),
        "expected the clients to log the raw fallback"
    );
}

/// Lossy codecs with client-side error feedback: deferred residuals keep
/// the multi-round drift bounded instead of letting it accumulate. The
/// aggregated per-round update here is 1.5 per coordinate (weighted mean
/// of the four site deltas), so without feedback a top-k run dropping a
/// coordinate half the time would lose ~4.5 over six rounds; with
/// feedback the deficit is at most the last deferred residual — about
/// one round's mass — plus quantization slack.
#[test]
fn error_feedback_keeps_lossy_runs_near_raw() {
    let rounds = 6;
    let raw = run_sim(base_config(rounds));
    for codec in ["delta+int8", "delta+f16", "delta+topk0.5+int8"] {
        let mut cfg = base_config(rounds);
        cfg.wire = CodecSpec::parse(codec).unwrap();
        let lossy = run_sim(cfg);
        for (name, t) in &raw.workflow.final_weights {
            let lt = &lossy.workflow.final_weights[name];
            for (i, (a, b)) in t.data.iter().zip(&lt.data).enumerate() {
                assert!(
                    (a - b).abs() <= 0.02 * a.abs() + 2.0,
                    "{codec}: {name}[{i}] drifted {a} -> {b} after {rounds} rounds"
                );
            }
        }
    }
}

/// Compression composes with the chaos layer: an aggressive-fault run
/// with delta+top-k+int8 negotiated still completes every round.
#[test]
fn codec_chaos_run_completes() {
    let _serial = timing_guard();
    let mut cfg = base_config(5);
    cfg.n_clients = 8;
    cfg.sag.min_clients = 3;
    cfg.sag.round_timeout = Duration::from_secs(8);
    cfg.sag.quorum_grace = Some(Duration::from_millis(1500));
    cfg.sag.validate_global = false;
    cfg.faults = FaultConfig::aggressive(3);
    cfg.retry.message_timeout = Duration::from_secs(30);
    cfg.retry.submit_copies = 2;
    cfg.wire = CodecSpec::parse("delta+topk0.05+int8").unwrap();
    let res = run_sim(cfg);
    assert_eq!(res.workflow.rounds.len(), 5, "all rounds must complete");
    for r in &res.workflow.rounds {
        assert!(
            r.contributors.len() >= 3,
            "round {} had only {} contributor(s)",
            r.round,
            r.contributors.len()
        );
    }
    assert!(res.log.contains("FaultInjector"), "no faults were injected");
}
