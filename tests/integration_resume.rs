//! Crash-resume chaos tests: the server process is abort-killed mid-run,
//! the checkpoint directory must always recover, and a resumed run must
//! reproduce the uninterrupted run bit-for-bit.
//!
//! Determinism boundary (see DESIGN.md §3f): fault verdicts are a pure
//! function of `(seed, site, direction, frame sequence)` and sequence
//! counters are per-connection. A resume restarts every connection, so
//! under *lossy* faults (drops/truncations) the post-resume fault
//! schedule differs from the uninterrupted run's and contributor sets can
//! legitimately diverge. The bit-identity test therefore runs under a
//! delay-only profile (delays reorder nothing and lose nothing, so every
//! site contributes every round); the aggressive-profile test asserts
//! completion and checkpoint integrity, not bit-equality.
//!
//! The kill mechanism: the parent re-invokes its own test binary filtered
//! to `resume_child_worker`; the child runs the federation with a
//! checkpoint directory while a watchdog thread polls `run.cfc` and calls
//! `std::process::abort()` (no destructors, no flushes — a SIGKILL-grade
//! stop) once the checkpoint passes the requested round.

use clinfl_flare::aggregator::WeightedFedAvg;
use clinfl_flare::checkpoint::{RunCheckpoint, RUN_CHECKPOINT_FILE};
use clinfl_flare::client::RetryPolicy;
use clinfl_flare::codec::CodecSpec;
use clinfl_flare::controller::SagConfig;
use clinfl_flare::executor::ArithmeticExecutor;
use clinfl_flare::faults::FaultConfig;
use clinfl_flare::persistor::{FilePersistor, Persistor};
use clinfl_flare::simulator::{SimulationResult, SimulatorConfig, SimulatorRunner};
use clinfl_flare::{FlareError, WeightTensor, Weights};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Subprocess runs and multi-site simulations race for cores; serialize
/// the heavy tests (same pattern as `integration_faults.rs`).
static TIMING_LOCK: Mutex<()> = Mutex::new(());

fn timing_guard() -> MutexGuard<'static, ()> {
    TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const ROUNDS: u32 = 6;
const SEED: u64 = 99;

/// Fault seed for the aggressive-profile chaos test. Lossy fault
/// schedules restart with the connections on resume, so some seeds
/// deterministically strand a post-resume round under quorum; this one
/// was picked with [`scout_aggressive_resume_seeds`], which verifies the
/// leg *and* the resume complete from every early round boundary.
const AGGR_FAULT_SEED: u64 = 1;

fn initial() -> Weights {
    let mut w = Weights::new();
    w.insert("p".into(), WeightTensor::new(vec![4], vec![0.0; 4]));
    w
}

/// Timeouts long enough that no retry traffic fires, keeping frame
/// sequence numbers (and thus fault verdicts) schedule-free.
fn quiet_retry() -> RetryPolicy {
    RetryPolicy {
        message_timeout: Duration::from_secs(30),
        submit_copies: 2,
        ..RetryPolicy::default()
    }
}

/// Delay-only faults: frames are held back but never lost, so every site
/// contributes every round and the outcome is schedule-independent.
fn delay_faults(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        drop_permille: 0,
        truncate_permille: 0,
        delay_permille: 300,
        delay: Duration::from_millis(5),
        crash_at: BTreeMap::new(),
    }
}

fn sim_config(dir: Option<&Path>, faults: FaultConfig, resume: bool) -> SimulatorConfig {
    let lossy = faults.drop_permille > 0 || faults.truncate_permille > 0;
    SimulatorConfig {
        n_clients: 8,
        sag: SagConfig {
            rounds: ROUNDS,
            min_clients: if lossy { 3 } else { 8 },
            round_timeout: Duration::from_secs(30),
            validate_global: !lossy,
            quorum_grace: lossy.then(|| Duration::from_millis(1500)),
            ..SagConfig::default()
        },
        seed: SEED,
        faults,
        retry: quiet_retry(),
        checkpoint_dir: dir.map(Path::to_path_buf),
        resume,
        ..SimulatorConfig::default()
    }
}

fn run_sim(cfg: SimulatorConfig) -> Result<SimulationResult, FlareError> {
    SimulatorRunner::new(cfg).run_simple(
        initial(),
        |i, _| {
            Box::new(ArithmeticExecutor {
                delta: (i as f32 + 1.0) * 0.5,
                n_examples: 10,
            })
        },
        &WeightedFedAvg,
    )
}

/// Checkpoint dirs live under `target/chaos-resume/` so CI can upload the
/// directory as an artifact when a test fails (success cleans up).
fn chaos_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from("target")
        .join("chaos-resume")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Recovery must succeed no matter where the kill landed: the directory
/// opens, and whenever the checkpoint says rounds completed, `latest()`
/// and `best()` are readable.
fn assert_recoverable(dir: &Path) -> Option<RunCheckpoint> {
    let p = FilePersistor::new(dir).expect("checkpoint dir must always open");
    let ckpt = p.load_checkpoint();
    if let Some(c) = &ckpt {
        assert!(c.next_round >= 1, "checkpoint with no completed rounds");
        assert!(p.latest().is_some(), "latest unreadable after crash");
        assert!(p.best().is_some(), "best unreadable after crash");
        assert_eq!(c.rounds.len() as u32, c.next_round);
    }
    ckpt
}

/// Re-invokes this test binary filtered to [`resume_child_worker`].
fn spawn_child(
    dir: &Path,
    faults: &str,
    wire: Option<&str>,
    kill_after: Option<u32>,
    resume: bool,
) -> bool {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = std::process::Command::new(exe);
    cmd.args(["resume_child_worker", "--exact", "--test-threads", "1"])
        .env("CLINFL_RESUME_CHILD_DIR", dir)
        .env("CLINFL_RESUME_CHILD_FAULTS", faults)
        .env_remove("CLINFL_RESUME_KILL_AFTER")
        .env_remove("CLINFL_RESUME_CHILD_RESUME")
        .env_remove("CLINFL_RESUME_CHILD_WIRE");
    if let Some(w) = wire {
        cmd.env("CLINFL_RESUME_CHILD_WIRE", w);
    }
    if let Some(k) = kill_after {
        cmd.env("CLINFL_RESUME_KILL_AFTER", k.to_string());
    }
    if resume {
        cmd.env("CLINFL_RESUME_CHILD_RESUME", "1");
    }
    let out = cmd.output().expect("spawn child test process");
    if !out.status.success() && kill_after.is_none() {
        eprintln!(
            "child stdout:\n{}\nchild stderr:\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
    }
    out.status.success()
}

/// Seed scout (not part of the suite): `cargo test --release --test
/// integration_resume -- --ignored --nocapture scout` prints which
/// aggressive-fault seeds complete both the interrupted leg and a resume
/// from every early round boundary (the schedules are deterministic per
/// seed, so a seed that passes here passes in the chaos test too).
#[test]
#[ignore]
fn scout_aggressive_resume_seeds() {
    for seed in 1..=20u64 {
        let ok = (1..4u32).all(|k| {
            let dir = chaos_dir(&format!("scout-{seed}-{k}"));
            let mut leg = sim_config(Some(&dir), FaultConfig::aggressive(seed), false);
            leg.sag.rounds = k;
            let leg_ok = run_sim(leg).is_ok();
            let resumed_ok = leg_ok
                && run_sim(sim_config(Some(&dir), FaultConfig::aggressive(seed), true)).is_ok();
            std::fs::remove_dir_all(&dir).ok();
            resumed_ok
        });
        println!("faults seed {seed}: {}", if ok { "PASS" } else { "fail" });
    }
}

/// Child half of the chaos tests: a no-op under a normal `cargo test`
/// sweep, a crash-able federation server when the parent sets the env.
#[test]
fn resume_child_worker() {
    let Ok(dir) = std::env::var("CLINFL_RESUME_CHILD_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let resume = std::env::var("CLINFL_RESUME_CHILD_RESUME").is_ok();
    let faults = match std::env::var("CLINFL_RESUME_CHILD_FAULTS").as_deref() {
        Ok("aggressive") => FaultConfig::aggressive(AGGR_FAULT_SEED),
        _ => delay_faults(SEED),
    };
    if let Some(k) = std::env::var("CLINFL_RESUME_KILL_AFTER")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
    {
        let ckpt_path = dir.join(RUN_CHECKPOINT_FILE);
        std::thread::spawn(move || loop {
            if let Ok(c) = RunCheckpoint::load(&ckpt_path) {
                if c.next_round > k {
                    // SIGKILL-grade stop: no destructors, no flushes.
                    std::process::abort();
                }
            }
            std::thread::sleep(Duration::from_micros(200));
        });
    }
    let mut cfg = sim_config(Some(&dir), faults, resume);
    if let Ok(w) = std::env::var("CLINFL_RESUME_CHILD_WIRE") {
        cfg.wire = CodecSpec::parse(&w).expect("child wire codec");
    }
    run_sim(cfg).expect("child federation run");
}

/// Tentpole proof: kill the server at *every* round boundary in turn,
/// resuming between kills, and require (a) the checkpoint directory
/// recovers after every kill and (b) the final global weights are
/// bit-identical to an uninterrupted same-seed run.
#[test]
fn killed_and_resumed_run_matches_uninterrupted_bitwise() {
    let _serial = timing_guard();
    let reference = run_sim(sim_config(None, delay_faults(SEED), false)).expect("reference run");
    assert_eq!(reference.workflow.rounds.len() as u32, ROUNDS);

    let dir = chaos_dir("bitwise");
    for k in 0..ROUNDS - 1 {
        let completed = spawn_child(&dir, "delay", None, Some(k), k > 0);
        assert!(
            !completed,
            "child with kill_after={k} finished instead of crashing"
        );
        let ckpt = assert_recoverable(&dir).expect("checkpoint must exist after kill");
        assert!(ckpt.next_round > k, "no progress before kill at {k}");
        assert_eq!(ckpt.seed, SEED);
    }
    assert!(
        spawn_child(&dir, "delay", None, None, true),
        "final resume leg failed"
    );

    let p = FilePersistor::new(&dir).unwrap();
    let ckpt = p.load_checkpoint().expect("final checkpoint");
    assert_eq!(ckpt.next_round, ROUNDS);
    assert_eq!(ckpt.rounds.len() as u32, ROUNDS);
    assert_eq!(
        ckpt.global, reference.workflow.final_weights,
        "resumed run diverged from the uninterrupted same-seed run"
    );
    assert_eq!(
        p.latest().unwrap(),
        reference.workflow.final_weights,
        "latest() after recovery diverged"
    );
    // Every round's bookkeeping survived the kills.
    for (c, r) in ckpt.rounds.iter().zip(&reference.workflow.rounds) {
        assert_eq!(c.round, r.round);
        assert_eq!(c.contributors, r.contributors);
        assert_eq!(c.dropped, r.dropped);
    }
    let best = FilePersistor::load(dir.join("best.cfw")).expect("best.cfw readable");
    assert!(!best.is_empty());
    std::fs::remove_dir_all(&dir).ok(); // kept on failure for CI artifacts
}

/// Resume is codec-aware by construction: the delta ring's payload ids
/// are session-scoped (DESIGN.md §3g), so a resumed server opens a fresh
/// ring and its first downlink per spec is self-contained — no client is
/// ever asked to decode against a base payload that died with the old
/// process. With the lossless `delta` codec under delay-only faults a
/// kill + resume must therefore stay bit-identical to the uninterrupted
/// codec run.
#[test]
fn codec_resume_matches_uninterrupted_bitwise() {
    let _serial = timing_guard();
    let mut ref_cfg = sim_config(None, delay_faults(SEED), false);
    ref_cfg.wire = CodecSpec::parse("delta").unwrap();
    let reference = run_sim(ref_cfg).expect("reference codec run");
    assert_eq!(reference.workflow.rounds.len() as u32, ROUNDS);
    assert!(
        reference.log.contains("negotiated wire codec delta"),
        "reference run never negotiated the codec"
    );

    let dir = chaos_dir("codec-bitwise");
    let completed = spawn_child(&dir, "delay", Some("delta"), Some(1), false);
    assert!(!completed, "codec child finished instead of crashing");
    let ckpt = assert_recoverable(&dir).expect("checkpoint after codec kill");
    assert!(ckpt.next_round > 1, "no progress before the codec kill");
    assert!(
        spawn_child(&dir, "delay", Some("delta"), None, true),
        "codec resume leg failed"
    );

    let p = FilePersistor::new(&dir).unwrap();
    let ckpt = p.load_checkpoint().expect("final checkpoint");
    assert_eq!(ckpt.next_round, ROUNDS);
    assert_eq!(
        ckpt.global, reference.workflow.final_weights,
        "codec resume diverged from the uninterrupted codec run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Under the aggressive profile (drops, truncations, mid-round client
/// crashes) a kill + resume must still complete via quorum and the
/// checkpoint directory must stay recoverable — bit-equality is out of
/// scope here because resume restarts connections and with them the
/// per-connection fault sequence (see module docs).
#[test]
fn aggressive_fault_kill_resume_completes_and_stays_recoverable() {
    let _serial = timing_guard();
    let dir = chaos_dir("aggressive");
    let completed = spawn_child(&dir, "aggressive", None, Some(1), false);
    assert!(!completed, "child should have been killed mid-run");
    let ckpt = assert_recoverable(&dir).expect("checkpoint after aggressive kill");
    assert!(ckpt.next_round >= 2);
    assert!(
        spawn_child(&dir, "aggressive", None, None, true),
        "resume under aggressive faults failed"
    );
    let p = FilePersistor::new(&dir).unwrap();
    let ckpt = p.load_checkpoint().expect("final checkpoint");
    assert_eq!(ckpt.next_round, ROUNDS);
    assert!(p.latest().is_some());
    assert!(p.best().is_some());
    // Quorum bookkeeping survived: every completed round has >= 3 sites.
    for r in &ckpt.rounds {
        assert!(
            r.contributors.len() >= 3,
            "round {} under quorum in checkpoint",
            r.round
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Round-level driver resume: `--resume` on the real training pipeline
/// completes and extends history. NOT bit-identical to an uninterrupted
/// run by design — each site's Adam optimizer state lives in the client
/// process and is rebuilt on restart (documented in DESIGN.md §3f).
#[test]
fn driver_level_resume_extends_run() {
    let _serial = timing_guard();
    let dir = chaos_dir("driver");
    let mut cfg = clinfl::PipelineConfig::fast_demo();
    cfg.runtime.checkpoint_dir = Some(dir.clone());
    cfg.runtime.retain_checkpoints = Some(2);
    cfg.rounds = 1;
    let first =
        clinfl::drivers::train_federated(&cfg, clinfl::ModelSpec::Lstm).expect("first leg trains");
    assert_eq!(first.history.len(), 1);

    cfg.rounds = 2;
    cfg.runtime.resume = true;
    let resumed = clinfl::drivers::train_federated(&cfg, clinfl::ModelSpec::Lstm)
        .expect("resumed leg trains");
    assert_eq!(resumed.history.len(), 2, "history must cover both rounds");
    assert!(resumed.accuracy > 0.0 && resumed.accuracy <= 1.0);
    assert!(
        resumed
            .log
            .as_ref()
            .unwrap()
            .contains("Resuming at round 1"),
        "resume path not taken"
    );
    let ckpt = FilePersistor::new(&dir).unwrap().load_checkpoint().unwrap();
    assert_eq!(ckpt.next_round, 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// A resume pointed at an empty directory warns and starts fresh instead
/// of failing — `--resume` is safe to pass unconditionally in scripts.
#[test]
fn resume_with_empty_dir_starts_fresh() {
    let _serial = timing_guard();
    let dir = chaos_dir("fresh");
    let res = run_sim(sim_config(Some(&dir), delay_faults(SEED), true)).expect("fresh run");
    assert_eq!(res.workflow.rounds.len() as u32, ROUNDS);
    assert!(res
        .log
        .contains("resume requested but no valid checkpoint found"));
    std::fs::remove_dir_all(&dir).ok();
}
