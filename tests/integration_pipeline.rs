//! Cross-crate integration: the experiment runners that regenerate the
//! paper's Table III and Fig. 2, exercised at micro scale.

use clinfl::experiments::{run_fig2, run_table3, Scheme};
use clinfl::{ModelSpec, PipelineConfig};

fn micro_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::fast_demo();
    cfg.cohort.n_patients = 160;
    cfg.epochs = 1;
    cfg.rounds = 1;
    cfg.local_epochs = 1;
    cfg.pretrain.scale = 4096; // ~110 sequences
    cfg.pretrain_rounds = 1;
    cfg
}

#[test]
fn table3_grid_is_complete_and_in_range() {
    let cfg = micro_cfg();
    let table = run_table3(&cfg).expect("all nine runs complete");
    assert_eq!(table.cells.len(), 3);
    for row in &table.cells {
        assert_eq!(row.len(), 3);
        for &cell in row {
            assert!((0.0..=100.0).contains(&cell), "accuracy {cell}%");
        }
    }
    // The Display form prints measured and paper values side by side.
    let shown = table.to_string();
    assert!(shown.contains("TABLE III"));
    assert!(shown.contains("87.9"), "paper reference column present");
    assert_eq!(table.shape_report().len(), 3);
    // Accessors agree with the grid.
    let c = table.get(Scheme::Centralized, ModelSpec::Bert);
    assert_eq!(c, table.cells[0][0]);
}

#[test]
fn fig2_produces_four_decreasing_capable_curves() {
    let cfg = micro_cfg();
    let fig = run_fig2(&cfg).expect("all four schemes complete");
    assert_eq!(fig.curves.len(), 4);
    for (scheme, curve) in &fig.curves {
        assert_eq!(
            curve.len(),
            (cfg.pretrain_rounds + 1) as usize,
            "{scheme}: curve length"
        );
        assert!(
            curve.iter().all(|v| v.is_finite() && *v > 0.0),
            "{scheme}: losses finite and positive: {curve:?}"
        );
    }
    let shown = fig.to_string();
    assert!(shown.contains("FIG. 2"));
}
