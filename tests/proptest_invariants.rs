//! Property-based tests over the core invariants of the stack: wire-codec
//! roundtrips, secure-channel integrity, gradient correctness, masking
//! bounds, and partition conservation.

use clinfl_data::{ClassifyDataset, SitePartitioner};
use clinfl_flare::checkpoint::RunCheckpoint;
use clinfl_flare::controller::RoundSummary;
use clinfl_flare::messages::{ClientMessage, ServerMessage, TaskAssignment};
use clinfl_flare::security::{DhKeyPair, SecureChannel};
use clinfl_flare::wire::{WireDecode, WireEncode};
use clinfl_flare::{Dxo, WeightTensor, Weights};
use clinfl_tensor::{gradcheck, Graph, Tensor};
use clinfl_text::{ClinicalTokenizer, Encoded, MlmMasker, Vocab, IGNORE_INDEX};
use proptest::prelude::*;

fn arb_weights() -> impl Strategy<Value = Weights> {
    proptest::collection::btree_map(
        "[a-z]{1,8}(\\.[a-z]{1,8})?",
        (1usize..5, 1usize..5).prop_flat_map(|(r, c)| {
            proptest::collection::vec(-1e3f32..1e3, r * c)
                .prop_map(move |data| WeightTensor::new(vec![r, c], data))
        }),
        0..4,
    )
}

fn arb_round_summary() -> impl Strategy<Value = RoundSummary> {
    (
        any::<u32>(),
        proptest::collection::vec("site-[1-8]", 0..4),
        proptest::collection::btree_map(
            "site-[1-8]",
            proptest::collection::btree_map("[a-z_]{1,10}", -1e6f64..1e6, 0..3),
            0..3,
        ),
        (any::<bool>(), -1e3f64..1e3),
        proptest::collection::vec("site-[1-8]", 0..3),
    )
        .prop_map(
            |(round, contributors, client_metrics, metric, dropped)| RoundSummary {
                round,
                contributors,
                client_metrics,
                global_metric: metric.0.then_some(metric.1),
                dropped,
            },
        )
}

fn arb_checkpoint() -> impl Strategy<Value = RunCheckpoint> {
    (
        (any::<u64>(), any::<u32>(), any::<u32>()),
        arb_weights(),
        proptest::collection::vec(arb_round_summary(), 0..4),
        (any::<bool>(), -1e3f64..1e3, any::<u32>()),
        (0u32..4, 0u32..16),
    )
        .prop_map(
            |((seed, next_round, total_rounds), global, rounds, best, tree)| RunCheckpoint {
                seed,
                next_round,
                total_rounds,
                global,
                rounds,
                best_metric: best.0.then_some(best.1),
                best_round: best.0.then_some(best.2),
                tree_depth: tree.0,
                tree_fanout: tree.1,
            },
        )
}

fn arb_dxo() -> impl Strategy<Value = Dxo> {
    (
        arb_weights(),
        proptest::collection::btree_map("[a-z_]{1,10}", -1e6f64..1e6, 0..4),
        any::<u64>(),
    )
        .prop_map(|(weights, metrics, n)| Dxo {
            metrics,
            n_examples: n,
            ..Dxo::from_weights(weights, 0)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn client_submit_roundtrips(round in any::<u32>(), dxo in arb_dxo()) {
        let msg = ClientMessage::Submit { round, dxo };
        let back = ClientMessage::from_frame(&msg.to_frame()).unwrap();
        prop_assert_eq!(msg, back);
    }

    #[test]
    fn train_task_roundtrips(round in any::<u32>(), total in any::<u32>(), w in arb_weights()) {
        let msg = ServerMessage::Task(TaskAssignment::Train { round, total_rounds: total, weights: w });
        let back = ServerMessage::from_frame(&msg.to_frame()).unwrap();
        prop_assert_eq!(msg, back);
    }

    #[test]
    fn run_checkpoint_roundtrips(ckpt in arb_checkpoint()) {
        let back = RunCheckpoint::from_frame(&ckpt.to_frame()).unwrap();
        prop_assert_eq!(ckpt, back);
    }

    #[test]
    fn codec_rejects_random_noise(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Random bytes must never decode silently into a valid frame unless
        // they genuinely carry the magic; decoding must not panic either way.
        let _ = ClientMessage::from_frame(&bytes);
        let _ = ServerMessage::from_frame(&bytes);
    }

    #[test]
    fn secure_channel_roundtrips_any_payload(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        key_a in any::<u64>(),
    ) {
        let a = DhKeyPair::from_secret(key_a);
        let b = DhKeyPair::from_secret(key_a ^ 0x1234_5678);
        let key = a.shared_key(b.public);
        let mut tx = SecureChannel::new(key, 0);
        let rx = SecureChannel::new(key, 0);
        let sealed = tx.seal(&payload);
        prop_assert_eq!(rx.open(&sealed).unwrap(), payload);
    }

    #[test]
    fn secure_channel_detects_any_single_flip(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        flip in any::<proptest::sample::Index>(),
    ) {
        let key = DhKeyPair::from_secret(7).shared_key(DhKeyPair::from_secret(9).public);
        let mut tx = SecureChannel::new(key, 0);
        let rx = SecureChannel::new(key, 0);
        let mut sealed = tx.seal(&payload);
        let at = flip.index(sealed.len() - 8) + 8; // skip nonce (tested ok), hit body/mac
        sealed[at] ^= 0x40;
        prop_assert!(rx.open(&sealed).is_err());
    }

    #[test]
    fn tanh_sigmoid_matmul_gradcheck(seed in 0u64..500) {
        let x = Tensor::randn(&[2, 3], 1.0, seed);
        let w = Tensor::randn(&[3, 2], 0.7, seed ^ 0xFF);
        let report = gradcheck(&[x, w], |g, v| {
            let h = g.matmul(v[0], v[1]);
            let t = g.tanh(h);
            let s = g.sigmoid(t);
            g.sum(s)
        });
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn softmax_ce_gradcheck(seed in 0u64..500) {
        let x = Tensor::randn(&[3, 4], 1.0, seed);
        let report = gradcheck(&[x], |g, v| {
            g.cross_entropy(v[0], &[0, 2, 3], -100)
        });
        prop_assert!(report.passes(3e-2), "{report:?}");
    }

    #[test]
    fn layernorm_gelu_gradcheck(seed in 0u64..500) {
        let x = Tensor::randn(&[2, 6], 1.0, seed);
        let report = gradcheck(&[x], |g, v| {
            let n = g.normalize_last(v[0], 1e-5);
            let a = g.gelu(n);
            let sq = g.mul(a, a);
            g.sum(sq)
        });
        prop_assert!(report.passes(5e-2), "{report:?}");
    }

    #[test]
    fn graph_reset_reuse_matches_fresh_across_shapes(
        shapes in proptest::collection::vec((1usize..5, 1usize..6, 2usize..7), 2..6),
        seed in any::<u64>(),
    ) {
        // One graph reset between steps of *varying* shapes must produce
        // exactly the bits a fresh graph produces — recycled buffers must
        // never leak stale contents across steps.
        fn run(g: &mut Graph, b: usize, m: usize, n: usize, seed: u64) -> Vec<u32> {
            let x = g.input(Tensor::randn(&[b, m], 1.0, seed));
            let w = g.input(Tensor::randn(&[m, n], 0.7, seed ^ 0xAB));
            let h = g.matmul(x, w);
            let t = g.tanh(h);
            let d = g.dropout(t, 0.3);
            let nrm = g.normalize_last(d, 1e-5);
            let loss = g.mean(nrm);
            g.backward(loss);
            let mut bits = vec![g.value(loss).item().to_bits()];
            bits.extend(g.grad(x).unwrap().data().iter().map(|v| v.to_bits()));
            bits.extend(g.grad(w).unwrap().data().iter().map(|v| v.to_bits()));
            bits
        }
        let mut reused = Graph::new();
        for (i, &(b, m, n)) in shapes.iter().enumerate() {
            let s = seed.wrapping_add(i as u64);
            reused.reset_with_seed(s);
            let got = run(&mut reused, b, m, n, s);
            let mut fresh = Graph::with_seed(s);
            let want = run(&mut fresh, b, m, n, s);
            prop_assert_eq!(got, want, "step {} shape ({}, {}, {})", i, b, m, n);
        }
    }

    #[test]
    fn masker_selects_only_regular_positions(
        n_tokens in 1usize..40,
        p in 0.05f32..0.9,
        seed in any::<u64>(),
    ) {
        let vocab = Vocab::from_tokens((0..50).map(|i| format!("T{i}")));
        let tok = ClinicalTokenizer::new(vocab.clone(), n_tokens + 2);
        let events: Vec<String> = (0..n_tokens).map(|i| format!("T{}", i % 50)).collect();
        let enc = tok.encode(&events);
        let masker = MlmMasker::with_select_prob(p);
        let out = masker.mask(&enc.ids, &vocab, seed);
        prop_assert_eq!(out.input_ids.len(), enc.ids.len());
        for (i, (&orig, &label)) in enc.ids.iter().zip(&out.labels).enumerate() {
            if vocab.is_special(orig) {
                prop_assert_eq!(label, IGNORE_INDEX, "special selected at {}", i);
                prop_assert_eq!(out.input_ids[i], orig, "special mutated at {}", i);
            } else if label != IGNORE_INDEX {
                prop_assert_eq!(label as u32, orig, "label holds original id");
            } else {
                prop_assert_eq!(out.input_ids[i], orig, "unselected token mutated");
            }
        }
        prop_assert!(out.num_targets() >= 1);
    }

    #[test]
    fn partitioner_conserves_examples(
        n in 16usize..200,
        n_sites in 2usize..8,
        seed in any::<u64>(),
    ) {
        let seq_len = 6;
        let examples: Vec<clinfl_data::Example> = (0..n)
            .map(|i| clinfl_data::Example {
                encoded: Encoded {
                    ids: vec![2, 5, 6, 7, 3, 0],
                    attention_mask: vec![1, 1, 1, 1, 1, 0],
                },
                label: (i % 2) as u8,
            })
            .collect();
        let ds = ClassifyDataset::from_examples(examples, seq_len);
        let shards = SitePartitioner::Balanced { n_sites }.partition(&ds, seed);
        prop_assert_eq!(shards.len(), n_sites);
        prop_assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), n);
    }

    #[test]
    fn dirichlet_partitioner_conserves_and_fills(
        n in 16usize..200,
        n_sites in 2usize..8,
        alpha_centi in 5u32..500, // α in [0.05, 5.0): skewed through balanced
        seed in any::<u64>(),
    ) {
        let seq_len = 6;
        let examples: Vec<clinfl_data::Example> = (0..n)
            .map(|i| clinfl_data::Example {
                encoded: Encoded {
                    ids: vec![2, 5, 6, 7, 3, 0],
                    attention_mask: vec![1, 1, 1, 1, 1, 0],
                },
                label: (i % 2) as u8,
            })
            .collect();
        let ds = ClassifyDataset::from_examples(examples, seq_len);
        let alpha = f64::from(alpha_centi) / 100.0;
        let part = SitePartitioner::Dirichlet { n_sites, alpha };
        let shards = part.partition(&ds, seed);
        prop_assert_eq!(shards.len(), n_sites);
        prop_assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), n);
        // Largest-remainder allocation guarantees no empty shard when
        // there are at least as many examples as sites.
        prop_assert!(shards.iter().all(|s| !s.is_empty()));
        // Same (alpha, seed) must replay the same split.
        let again = part.partition(&ds, seed);
        for (a, b) in shards.iter().zip(&again) {
            prop_assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn dp_gaussian_clips_and_replays_deterministically(
        w in arb_weights(),
        clip in 0.1f32..10.0,
        seed in any::<u64>(),
        round in 0u32..64,
    ) {
        use clinfl_flare::filters::{DpGaussian, Filter};
        // Global = zeros with the update's structure, so the filtered
        // delta is exactly the dxo's weights.
        let mut global = Weights::new();
        for (name, t) in &w {
            global.insert(name.clone(), WeightTensor::new(t.dims.clone(), vec![0.0; t.data.len()]));
        }

        // σ = 0 isolates the clipping step: the output delta's global L2
        // norm can never exceed the clip norm.
        let mut clip_only = DpGaussian { clip_norm: clip, sigma: 0.0, seed };
        let clipped = clip_only.apply(Dxo::from_weights(w.clone(), 1), &global, round);
        let norm: f64 = clipped
            .weights
            .values()
            .flat_map(|t| t.data.iter())
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>()
            .sqrt();
        prop_assert!(
            norm <= f64::from(clip) * (1.0 + 1e-4),
            "clipped norm {} exceeds clip {}", norm, clip
        );

        // Same (seed, round) must replay bit-identically even with noise.
        let noised = |()| {
            let mut f = DpGaussian { clip_norm: clip, sigma: 1.0, seed };
            f.apply(Dxo::from_weights(w.clone(), 1), &global, round)
        };
        prop_assert_eq!(noised(()).weights, noised(()).weights);
    }

    #[test]
    fn dp_gaussian_noise_matches_sigma(
        sigma_deci in 5u32..30, // σ in [0.5, 3.0)
        seed in any::<u64>(),
    ) {
        use clinfl_flare::filters::{DpGaussian, Filter};
        // A zero update against a zero global: the output is pure noise,
        // whose empirical std must sit near σ · clip (n = 4096 makes the
        // band [σc/2, 2σc] astronomically safe).
        let n = 4096;
        let clip = 2.0f32;
        let sigma = sigma_deci as f32 / 10.0;
        let mut w = Weights::new();
        w.insert("p".into(), WeightTensor::new(vec![n], vec![0.0; n]));
        let mut filter = DpGaussian { clip_norm: clip, sigma, seed };
        let out = filter.apply(Dxo::from_weights(w.clone(), 0), &w, 0);
        let data = &out.weights["p"].data;
        let mean: f64 = data.iter().map(|&v| f64::from(v)).sum::<f64>() / n as f64;
        let std = (data
            .iter()
            .map(|&v| (f64::from(v) - mean).powi(2))
            .sum::<f64>()
            / n as f64)
            .sqrt();
        let expected = f64::from(sigma) * f64::from(clip);
        prop_assert!(
            std > expected * 0.5 && std < expected * 2.0,
            "noise std {} far from sigma*clip {}", std, expected
        );
    }

    #[test]
    fn dp_accountant_grows_monotonically_and_sampling_never_hurts(
        sigma_deci in 5u32..80, // σ in [0.5, 8.0)
        q_centi in 5u32..70,    // q in [0.05, 0.70): the 2q² ≤ 1 regime
        steps in 1u32..100,
    ) {
        use clinfl_flare::privacy::DpAccountant;
        let sigma = f64::from(sigma_deci) / 10.0;
        let q = f64::from(q_centi) / 100.0;
        let mut full = DpAccountant::new(sigma, 1.0, 1e-5);
        let mut sub = DpAccountant::new(sigma, q, 1e-5);
        let mut last = 0.0;
        for _ in 0..steps {
            full.step();
            sub.step();
            let eps = full.epsilon();
            prop_assert!(eps > last, "epsilon must strictly grow");
            last = eps;
        }
        prop_assert!(full.epsilon().is_finite());
        // Subsampling (q² amplification, valid while 2q² <= 1) can only
        // shrink the budget relative to full participation.
        prop_assert!(sub.epsilon() <= full.epsilon() + 1e-12);
    }
}
