//! Chaos integration: the federation must complete — and reproduce —
//! under seeded link faults, mid-round crashes, and stragglers.
//!
//! Determinism boundary: fault decisions depend only on `(seed, site,
//! direction, frame sequence)`, so the set of injected faults is
//! byte-identical across runs. Heartbeats and send-retries also consume
//! sequence numbers, so the chaos configs below use a `message_timeout`
//! large enough that no timeout-driven traffic fires mid-run; fault
//! events are compared sorted (threads interleave log order), and the
//! single-threaded controller's drop/quorum lines are compared verbatim.

use clinfl_flare::aggregator::WeightedFedAvg;
use clinfl_flare::client::{ClientBehavior, RetryPolicy};
use clinfl_flare::controller::SagConfig;
use clinfl_flare::executor::ArithmeticExecutor;
use clinfl_flare::faults::FaultConfig;
use clinfl_flare::simulator::{SimulationResult, SimulatorConfig, SimulatorRunner};
use clinfl_flare::{WeightTensor, Weights};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// The chaos configs rely on real-time grace windows, so two simulations
/// (or a simulation and the compute-heavy driver test) racing for cores
/// can starve a round past its deadline on a small machine. Every
/// timing-sensitive test takes this lock and runs alone.
static TIMING_LOCK: Mutex<()> = Mutex::new(());

fn timing_guard() -> MutexGuard<'static, ()> {
    TIMING_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn initial() -> Weights {
    let mut w = Weights::new();
    w.insert("p".into(), WeightTensor::new(vec![4], vec![0.0; 4]));
    w
}

/// A retry policy whose timeout never fires within a test run, keeping
/// frame sequence numbers (and thus fault decisions) schedule-free.
fn quiet_retry() -> RetryPolicy {
    RetryPolicy {
        message_timeout: Duration::from_secs(30),
        // A silently dropped Submit is unrecoverable for the sender, so
        // lossy-link runs send each update twice (the server dedups).
        submit_copies: 2,
        ..RetryPolicy::default()
    }
}

fn chaos_config(seed: u64) -> SimulatorConfig {
    SimulatorConfig {
        n_clients: 8,
        sag: SagConfig {
            rounds: 5,
            min_clients: 3,
            round_timeout: Duration::from_secs(8),
            validate_global: false,
            quorum_grace: Some(Duration::from_millis(1500)),
            ..SagConfig::default()
        },
        seed: 99,
        faults: FaultConfig::aggressive(seed),
        retry: quiet_retry(),
        ..SimulatorConfig::default()
    }
}

fn run_sim(cfg: SimulatorConfig) -> Result<SimulationResult, clinfl_flare::FlareError> {
    SimulatorRunner::new(cfg).run_simple(
        initial(),
        |i, _| {
            Box::new(ArithmeticExecutor {
                delta: (i as f32 + 1.0) * 0.5,
                n_examples: 10,
            })
        },
        &WeightedFedAvg,
    )
}

fn run_chaos(seed: u64) -> SimulationResult {
    run_sim(chaos_config(seed)).expect("chaos run completes via quorum")
}

/// Controller messages that describe round membership decisions — these
/// are produced by the single-threaded SAG loop, so their order is
/// deterministic when the fault schedule is.
fn membership_lines(res: &SimulationResult) -> Vec<String> {
    res.log
        .messages_from("ScatterAndGather")
        .into_iter()
        .filter(|m| m.contains("missed round") || m.contains("Quorum met"))
        .collect()
}

/// Seed scout (not part of the suite): `cargo test --release --test
/// integration_faults -- --ignored --nocapture` prints which fault seeds
/// keep every round at or above the quorum.
#[test]
#[ignore]
fn scout_passing_seeds() {
    for seed in 1..=30u64 {
        let ok = run_sim(chaos_config(seed)).is_ok();
        println!("seed {seed}: {}", if ok { "PASS" } else { "fail" });
    }
}

/// Same scout for the sampled chaos configuration below.
#[test]
#[ignore]
fn scout_sampled_seeds() {
    for seed in 1..=20u64 {
        let mut cfg = chaos_config(seed);
        cfg.sag.client_sample_fraction = 0.75;
        cfg.sag.min_clients = 2;
        let ok = run_sim(cfg).is_ok();
        println!("seed {seed}: {}", if ok { "PASS" } else { "fail" });
    }
}

/// CI's fault leg (`CLINFL_FAULTS=aggressive scripts/check.sh
/// test-faults`) re-runs the suite with the fault profile taken from the
/// environment. Without the variable this is a clean, fast completion
/// check; under the fault leg it is a full chaos run.
#[test]
fn env_selected_fault_profile_completes() {
    let _serial = timing_guard();
    let mut cfg = chaos_config(3);
    cfg.faults = FaultConfig::from_env(3);
    let injecting = cfg.faults.is_active();
    let res = run_sim(cfg).expect("env-profile run completes");
    assert_eq!(res.workflow.rounds.len(), 5, "all rounds must complete");
    for r in &res.workflow.rounds {
        assert!(r.contributors.len() >= 3, "round {} under quorum", r.round);
    }
    if injecting {
        assert!(res.log.contains("active with seed 3"));
    }
}

#[test]
fn aggressive_faults_still_complete_all_rounds() {
    let _serial = timing_guard();
    let res = run_chaos(3);
    assert_eq!(res.workflow.rounds.len(), 5, "all rounds must complete");
    for r in &res.workflow.rounds {
        assert!(
            r.contributors.len() >= 3,
            "round {} had only {} contributor(s)",
            r.round,
            r.contributors.len()
        );
        // contributors + dropped partition the expected site set.
        assert_eq!(r.contributors.len() + r.dropped.len(), 8);
    }
    // The aggressive profile crashes sites 6 and 7 (0-based 5 and 6).
    let late_round = res.workflow.rounds.last().unwrap();
    assert!(late_round.dropped.contains(&"site-6".to_string()));
    assert!(late_round.dropped.contains(&"site-7".to_string()));
    // The injected faults and the recovery machinery all left a trace.
    assert!(res.log.contains("injected drop"), "no drop was injected");
    assert!(res.log.contains("Quorum met"), "quorum path never taken");
    assert!(res.log.contains("simulating crash"), "no client crashed");
}

#[test]
fn chaos_runs_reproduce_bit_identically() {
    let _serial = timing_guard();
    let a = run_chaos(7);
    let b = run_chaos(7);

    // Identical fault schedules...
    let mut faults_a = a.log.messages_from("FaultInjector");
    let mut faults_b = b.log.messages_from("FaultInjector");
    assert!(!faults_a.is_empty(), "aggressive plan injected nothing");
    faults_a.sort();
    faults_b.sort();
    assert_eq!(faults_a, faults_b, "fault schedules diverged");

    // ...identical round membership...
    assert_eq!(membership_lines(&a), membership_lines(&b));
    for (ra, rb) in a.workflow.rounds.iter().zip(&b.workflow.rounds) {
        assert_eq!(ra.contributors, rb.contributors);
        assert_eq!(ra.dropped, rb.dropped);
    }

    // ...and bit-identical final weights.
    let wa = &a.workflow.final_weights["p"];
    let wb = &b.workflow.final_weights["p"];
    assert_eq!(wa.data, wb.data, "final weights diverged");
}

/// The observability counters and the event log are two views of the
/// same chaos run; they must agree exactly: every `injected <kind>` log
/// line has a matching `flare.faults.<kind>` increment, and every
/// client "; retry" warning a matching `flare.client.retries` tick.
#[test]
fn fault_log_and_metrics_views_agree() {
    let _serial = timing_guard();
    if !clinfl_obs::enabled() {
        return; // CLINFL_OBS=0: counters stay silent by design.
    }
    let before = clinfl_obs::snapshot();
    let res = run_chaos(3);
    let after = clinfl_obs::snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);

    let injected = res.log.messages_from("FaultInjector");
    let mut total = 0u64;
    for kind in ["drop", "delay", "truncate"] {
        let logged = injected
            .iter()
            .filter(|m| m.contains(&format!("injected {kind}")))
            .count() as u64;
        assert_eq!(
            delta(&format!("flare.faults.{kind}")),
            logged,
            "flare.faults.{kind} counter disagrees with the log"
        );
        total += logged;
    }
    assert!(total > 0, "aggressive plan injected nothing");

    let retries_logged = res
        .log
        .messages_from("FederatedClient")
        .iter()
        .filter(|m| m.contains("; retry"))
        .count() as u64;
    assert_eq!(
        delta("flare.client.retries"),
        retries_logged,
        "flare.client.retries counter disagrees with the log"
    );
}

#[test]
fn different_seeds_inject_different_faults() {
    let _serial = timing_guard();
    let a = run_chaos(1);
    let b = run_chaos(2);
    let mut fa = a.log.messages_from("FaultInjector");
    let mut fb = b.log.messages_from("FaultInjector");
    fa.sort();
    fb.sort();
    assert_ne!(fa, fb, "seeds 1 and 2 produced identical fault schedules");
}

/// Client sampling composes with the chaos machinery: a sampled
/// aggressive-fault run still completes every round via quorum, and each
/// round's contributors + dropped partition exactly the seeded sample —
/// never the full fleet.
#[test]
fn sampled_chaos_run_completes_and_respects_the_sample() {
    let _serial = timing_guard();
    // Fault seed from `scout_sampled_seeds`: with only 6 of 8 sites
    // sampled per round, some fault schedules (e.g. seed 3) starve a
    // round below even a quorum of 2.
    let mut cfg = chaos_config(4);
    // 6 of 8 sites per round; the aggressive profile crashes two sites,
    // so the quorum drops to 2 to keep headroom in the worst round.
    cfg.sag.client_sample_fraction = 0.75;
    cfg.sag.min_clients = 2;
    let res = run_sim(cfg).expect("sampled chaos run completes via quorum");
    assert_eq!(res.workflow.rounds.len(), 5, "all rounds must complete");
    let all: Vec<String> = (1..=8).map(|i| format!("site-{i}")).collect();
    for r in &res.workflow.rounds {
        // run_seed is the simulator seed (99), so the schedule replays.
        let sampled = clinfl_flare::controller::sample_sites(99, r.round, 0.75, &all);
        assert_eq!(sampled.len(), 6, "ceil(0.75 * 8)");
        assert!(r.contributors.len() >= 2, "round {} under quorum", r.round);
        for c in &r.contributors {
            assert!(sampled.contains(c), "unsampled contributor {c}");
        }
        assert_eq!(
            r.contributors.len() + r.dropped.len(),
            sampled.len(),
            "round {} summary must partition the sampled set",
            r.round
        );
    }
    assert!(res.log.contains("Sampled 6/8 site(s)"));
}

/// The quorum aggregate must not depend on HOW a straggler missed the
/// round: a site that crashes and a site that merely stalls past the
/// deadline must yield the same global model from the reporters.
#[test]
fn quorum_aggregate_independent_of_straggler_mode() {
    let _serial = timing_guard();
    let run = |behavior: ClientBehavior| {
        let mut cfg = SimulatorConfig {
            n_clients: 8,
            sag: SagConfig {
                rounds: 3,
                min_clients: 7,
                round_timeout: Duration::from_secs(8),
                validate_global: false,
                quorum_grace: Some(Duration::from_millis(700)),
                ..SagConfig::default()
            },
            seed: 55,
            retry: RetryPolicy {
                max_attempts: 2,
                ..quiet_retry()
            },
            ..SimulatorConfig::default()
        };
        cfg.behaviors.insert(7, behavior);
        SimulatorRunner::new(cfg)
            .run_simple(
                initial(),
                |i, _| {
                    Box::new(ArithmeticExecutor {
                        delta: (i as f32 + 1.0) * 0.25,
                        n_examples: 10,
                    })
                },
                &WeightedFedAvg,
            )
            .expect("quorum run completes")
    };

    // Run A: site-8 crashes before round 0. Run B: site-8 straggles far
    // past the grace window every round.
    let crashed = run(ClientBehavior {
        drop_at_round: Some(0),
        straggle: None,
    });
    let straggling = run(ClientBehavior {
        drop_at_round: None,
        straggle: Some(Duration::from_secs(2)),
    });

    let contributors: Vec<String> = (1..=7).map(|i| format!("site-{i}")).collect();
    for res in [&crashed, &straggling] {
        assert_eq!(res.workflow.rounds.len(), 3);
        for r in &res.workflow.rounds {
            assert_eq!(r.contributors, contributors, "round {}", r.round);
            assert_eq!(r.dropped, vec!["site-8".to_string()]);
        }
    }
    assert_eq!(
        crashed.workflow.final_weights["p"].data, straggling.workflow.final_weights["p"].data,
        "aggregate depended on how the straggler failed"
    );
}

mod liveness {
    use super::*;
    use clinfl_flare::client::FlClient;
    use clinfl_flare::provision::Project;
    use clinfl_flare::server::FlServer;
    use clinfl_flare::transport::in_proc_pair;
    use clinfl_flare::EventLog;
    use std::time::Instant;

    #[test]
    fn heartbeats_refresh_the_liveness_table() {
        let _serial = timing_guard();
        let log = EventLog::new();
        let project = Project::with_n_sites("simulator_server", 1, 5);
        let provisioned = project.provision();
        let mut server = FlServer::new(provisioned.server.clone(), log.clone(), 5);
        let (server_side, client_side) = in_proc_pair();
        server.serve_connection(server_side);
        let mut client =
            FlClient::register(client_side, &provisioned.sites[0], 0xBEEF, log.clone())
                .expect("registration");
        assert_eq!(server.wait_for_clients(1, Duration::from_secs(5)), 1);

        // Freshly registered: not stale at a coarse threshold.
        assert!(server.stale_sites(Duration::from_secs(5)).is_empty());

        // Let the session idle until it turns stale...
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let stale = server.stale_sites(Duration::from_millis(120));
            if stale == vec!["site-1".to_string()] {
                break;
            }
            assert!(Instant::now() < deadline, "site never went stale");
            std::thread::sleep(Duration::from_millis(20));
        }

        // ...then a heartbeat must bring it back.
        client.heartbeat().expect("heartbeat send");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let live = server.liveness();
            assert_eq!(live.len(), 1);
            let (site, idle, alive) = &live[0];
            assert_eq!(site, "site-1");
            assert!(alive);
            if *idle < Duration::from_millis(120) {
                break;
            }
            assert!(Instant::now() < deadline, "heartbeat never registered");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(log.contains("heartbeat received"));

        server.shutdown();
        server.disconnect_all();
        assert!(server.liveness().iter().all(|(_, _, alive)| !alive));
    }

    /// Best-effort sends (goodbye, duplicate submits, heartbeats) used to
    /// swallow their errors silently; they must now tick the
    /// `flare.client.send_errors` counter and warn exactly once per site.
    #[test]
    fn failed_best_effort_sends_are_counted_and_warned_once() {
        let _serial = timing_guard();
        let log = EventLog::new();
        let project = Project::with_n_sites("simulator_server", 1, 5);
        let provisioned = project.provision();
        let mut server = FlServer::new(provisioned.server.clone(), log.clone(), 5);
        let (server_side, client_side) = in_proc_pair();
        server.serve_connection(server_side);
        let mut client =
            FlClient::register(client_side, &provisioned.sites[0], 0xBEEF, log.clone())
                .expect("registration");
        // A scoped registry isolates this client's counters from every
        // other test running in the process.
        let obs = clinfl_obs::Registry::new();
        client.set_registry(obs.clone());

        // Kill the link out from under the client: every further
        // best-effort send fails.
        server.shutdown();
        server.disconnect_all();
        client.send_bye();
        client.send_bye();

        if clinfl_obs::enabled() {
            let errors = obs.snapshot().counter("flare.client.send_errors");
            assert!(errors >= 2, "expected >= 2 send errors, saw {errors}");
        }
        let warnings = log
            .messages_from("FederatedClient")
            .iter()
            .filter(|m| m.contains("best-effort"))
            .count();
        assert_eq!(warnings, 1, "send-error warning must fire exactly once");
    }
}

mod driver {
    use super::timing_guard;
    use clinfl::{drivers, ModelSpec, PipelineConfig};
    use clinfl_flare::faults::FaultConfig;
    use std::time::Duration;

    fn test_cfg() -> PipelineConfig {
        let mut cfg = PipelineConfig::fast_demo();
        cfg.cohort.n_patients = 480;
        cfg.cohort.seed = 77;
        cfg.rounds = 3;
        cfg.local_epochs = 1;
        cfg.epochs = 3;
        cfg.seed = 42;
        cfg
    }

    /// End-to-end: the clinical FL pipeline under aggressive faults still
    /// converges to the neighbourhood of the clean run.
    #[test]
    fn faulty_pipeline_tracks_clean_pipeline() {
        let _serial = timing_guard();
        let clean =
            drivers::train_federated(&test_cfg(), ModelSpec::Lstm).expect("clean federation runs");

        let mut cfg = test_cfg();
        cfg.runtime.faults = FaultConfig::aggressive(4242);
        cfg.runtime.min_clients = 3;
        cfg.runtime.round_timeout = Duration::from_secs(120);
        cfg.runtime.quorum_grace = Some(Duration::from_secs(8));
        cfg.runtime.retry.message_timeout = Duration::from_secs(60);
        cfg.runtime.retry.submit_copies = 2;
        let faulty =
            drivers::train_federated(&cfg, ModelSpec::Lstm).expect("faulty federation runs");

        println!(
            "clean accuracy {:.4}, faulty accuracy {:.4}",
            clean.accuracy, faulty.accuracy
        );
        assert!(clean.accuracy > 0.55, "clean accuracy {}", clean.accuracy);
        assert!(
            faulty.accuracy > 0.45,
            "faulty accuracy {}",
            faulty.accuracy
        );
        assert!(
            (clean.accuracy - faulty.accuracy).abs() < 0.3,
            "clean {:.3} vs faulty {:.3}",
            clean.accuracy,
            faulty.accuracy
        );
        let log = faulty.log.expect("federated runs carry a log");
        assert!(log.contains("FaultInjector"), "no faults were injected");
        assert_eq!(faulty.history.len(), 3, "faulty run must finish 3 rounds");
    }
}
