//! Cross-crate integration: driving a simulated federation from a
//! declarative job config (NVFlare's config-driven operation).

use clinfl_flare::client::ClientBehavior;
use clinfl_flare::executor::ArithmeticExecutor;
use clinfl_flare::job::{AggregatorKind, JobConfig};
use clinfl_flare::simulator::{SimulatorConfig, SimulatorRunner};
use clinfl_flare::{WeightTensor, Weights};

fn initial() -> Weights {
    let mut w = Weights::new();
    w.insert("w".into(), WeightTensor::new(vec![2], vec![0.0, 0.0]));
    w
}

#[test]
fn job_config_drives_a_full_simulation() {
    let job = JobConfig::parse(
        "name = smoke\n\
         rounds = 3\n\
         min_clients = 2\n\
         timeout_s = 10\n\
         validate = false\n\
         aggregator = fedavg\n",
    )
    .expect("valid job");
    let runner = SimulatorRunner::new(SimulatorConfig {
        n_clients: 2,
        sag: job.sag_config(),
        seed: 21,
        ..SimulatorConfig::default()
    });
    let aggregator = job.aggregator.build();
    let res = runner
        .run_simple(
            initial(),
            |_, _| {
                Box::new(ArithmeticExecutor {
                    delta: 1.0,
                    n_examples: 5,
                })
            },
            aggregator.as_ref(),
        )
        .expect("simulation runs");
    // +1 per round for 3 rounds.
    assert_eq!(res.workflow.final_weights["w"].data, vec![3.0, 3.0]);
    assert_eq!(res.workflow.rounds.len(), 3);
}

#[test]
fn job_config_median_aggregation_end_to_end() {
    let job = JobConfig::parse("rounds = 2\naggregator = median\n").expect("valid job");
    assert_eq!(job.aggregator, AggregatorKind::CoordinateMedian);
    let runner = SimulatorRunner::new(SimulatorConfig {
        n_clients: 3,
        sag: job.sag_config(),
        seed: 22,
        ..SimulatorConfig::default()
    });
    let aggregator = job.aggregator.build();
    let res = runner
        .run(
            initial(),
            |i, _| {
                Box::new(ArithmeticExecutor {
                    // One outlier client; the median ignores it.
                    delta: if i == 2 { 1000.0 } else { 2.0 },
                    n_examples: 5,
                })
            },
            aggregator.as_ref(),
            |_| clinfl_flare::filters::FilterChain::new(),
        )
        .expect("simulation runs");
    assert_eq!(res.workflow.final_weights["w"].data, vec![4.0, 4.0]);
    // Failure injection config type stays exercised.
    let _ = ClientBehavior::default();
}
