//! Reuse-equivalence: training on one arena-backed graph reset between
//! steps must be bit-identical to training with a fresh graph per step —
//! same losses, same gradients, same final parameters — for both paper
//! model families, serial and parallel.

use clinfl_models::{
    BertConfig, BertModel, LstmClassifier, LstmConfig, SequenceClassifier, TokenBatch,
};
use clinfl_tensor::{pool, Adam, Graph, Optimizer};

const STEPS: usize = 3;

fn batch_data(b: usize, s: usize, vocab: usize) -> (Vec<u32>, Vec<u8>) {
    let ids: Vec<u32> = (0..b * s)
        .map(|i| 5 + (i as u32 % (vocab as u32 - 6)))
        .collect();
    let mut mask = vec![1u8; b * s];
    // Give the last sequence some padding so carry/attention masks matter.
    for m in mask[(b - 1) * s + s - 2..].iter_mut() {
        *m = 0;
    }
    (ids, mask)
}

/// One training step on `g`; returns the loss bits.
fn step<M: SequenceClassifier>(
    model: &mut M,
    g: &mut Graph,
    batch: &TokenBatch<'_>,
    labels: &[i32],
    opt: &mut Adam,
) -> u32 {
    let loss = model.classification_loss(g, batch, labels);
    let bits = g.value(loss).item().to_bits();
    g.backward(loss);
    g.grads_into(model.params_mut());
    opt.step(model.params_mut());
    bits
}

fn param_bits(model: &impl SequenceClassifier) -> Vec<u32> {
    model
        .params()
        .iter()
        .flat_map(|(_, _, t)| t.data().iter().map(|v| v.to_bits()))
        .collect()
}

/// Trains `STEPS` steps and returns (per-step loss bits, final param bits).
/// `reuse = true` resets one graph per step (and interleaves an eval pass to
/// stress stale-state handling); `reuse = false` builds a fresh graph each
/// step, the pre-arena behavior.
fn train<M: SequenceClassifier>(
    mut model: M,
    batch: &TokenBatch<'_>,
    labels: &[i32],
    reuse: bool,
) -> (Vec<u32>, Vec<u32>) {
    let mut opt = Adam::with_lr(0.01);
    let mut losses = Vec::with_capacity(STEPS);
    let mut reused = Graph::new();
    for i in 0..STEPS {
        let seed = 0xC11F ^ (i as u64);
        if reuse {
            reused.reset_with_seed(seed);
            reused.set_training(true);
            losses.push(step(&mut model, &mut reused, batch, labels, &mut opt));
            // Interleaved evaluation on the same tape must not bleed into
            // the next training step (predict_with resets internally).
            let _ = model.predict_with(&mut reused, batch);
        } else {
            let mut fresh = Graph::with_seed(seed);
            losses.push(step(&mut model, &mut fresh, batch, labels, &mut opt));
        }
    }
    (losses, param_bits(&model))
}

fn assert_equivalent(threads: usize) {
    pool::set_threads(threads);

    // BERT-mini geometry (Table II: hidden 50, 2 heads, 6 layers) over a
    // small vocabulary, with dropout active so RNG streams are exercised.
    let bert_cfg = BertConfig::bert_mini(60, 12);
    let (ids, mask) = batch_data(2, 12, 60);
    let labels = vec![1, 0];
    let batch = TokenBatch {
        ids: &ids,
        mask: &mask,
        batch_size: 2,
        seq_len: 12,
    };
    let fresh = train(BertModel::new(&bert_cfg, 9), &batch, &labels, false);
    let reused = train(BertModel::new(&bert_cfg, 9), &batch, &labels, true);
    assert_eq!(
        fresh.0, reused.0,
        "BERT-mini losses diverged ({threads} threads)"
    );
    assert_eq!(
        fresh.1, reused.1,
        "BERT-mini params diverged ({threads} threads)"
    );

    let lstm_cfg = LstmConfig {
        vocab_size: 40,
        hidden: 16,
        layers: 2,
        dropout: 0.1,
        num_classes: 2,
    };
    let (ids, mask) = batch_data(3, 8, 40);
    let labels = vec![0, 1, 1];
    let batch = TokenBatch {
        ids: &ids,
        mask: &mask,
        batch_size: 3,
        seq_len: 8,
    };
    let fresh = train(LstmClassifier::new(&lstm_cfg, 4), &batch, &labels, false);
    let reused = train(LstmClassifier::new(&lstm_cfg, 4), &batch, &labels, true);
    assert_eq!(
        fresh.0, reused.0,
        "LSTM losses diverged ({threads} threads)"
    );
    assert_eq!(
        fresh.1, reused.1,
        "LSTM params diverged ({threads} threads)"
    );
}

#[test]
fn reused_graph_training_is_bit_identical_serial_and_parallel() {
    assert_equivalent(1);
    assert_equivalent(4);
}
