//! The thread budget must never change results: a federated run with
//! parallel site execution has to reproduce the sequential run exactly
//! (bit-identical kernels + name-sorted aggregation), and standalone
//! training must report the same per-site accuracies at any budget.

use clinfl::{drivers, ModelSpec, PipelineConfig};
use clinfl_tensor::pool;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that reconfigure the process-global thread budget.
fn config_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn test_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::fast_demo();
    cfg.cohort.n_patients = 240;
    cfg.cohort.seed = 77;
    cfg.rounds = 2;
    cfg.local_epochs = 1;
    cfg.epochs = 1;
    cfg.seed = 42;
    cfg
}

#[test]
fn federated_round_identical_at_any_thread_budget() {
    let _guard = config_lock();
    let cfg = test_cfg();
    pool::set_threads(1);
    let serial = drivers::train_federated(&cfg, ModelSpec::Lstm).expect("serial run");
    pool::set_threads(4);
    let parallel = drivers::train_federated(&cfg, ModelSpec::Lstm).expect("parallel run");
    assert_eq!(
        serial.accuracy.to_bits(),
        parallel.accuracy.to_bits(),
        "final accuracy differs: serial {} vs parallel {}",
        serial.accuracy,
        parallel.accuracy
    );
    assert_eq!(serial.history.len(), parallel.history.len());
    for (r, ((sl, sa), (pl, pa))) in serial.history.iter().zip(&parallel.history).enumerate() {
        assert_eq!(
            sl.to_bits(),
            pl.to_bits(),
            "round {r} mean train loss differs: {sl} vs {pl}"
        );
        assert_eq!(
            sa.to_bits(),
            pa.to_bits(),
            "round {r} global metric differs: {sa} vs {pa}"
        );
    }
}

#[test]
fn standalone_identical_at_any_thread_budget() {
    let _guard = config_lock();
    let cfg = test_cfg();
    pool::set_threads(1);
    let serial = drivers::train_standalone(&cfg, ModelSpec::Lstm);
    pool::set_threads(4);
    let parallel = drivers::train_standalone(&cfg, ModelSpec::Lstm);
    assert_eq!(serial.per_site.len(), parallel.per_site.len());
    for (i, (s, p)) in serial.per_site.iter().zip(&parallel.per_site).enumerate() {
        assert_eq!(
            s.to_bits(),
            p.to_bits(),
            "site {i} accuracy differs: {s} vs {p}"
        );
    }
}
