//! Observability integration: metrics must stay lossless under the
//! worker pool's concurrency, spans must balance across a fault-ridden
//! federation, and snapshots must round-trip deterministically.
//!
//! Metric names used here are unique to this file (or asserted as
//! deltas), because the registry is process-global and other tests in
//! this binary may record into it concurrently.

use clinfl_flare::aggregator::WeightedFedAvg;
use clinfl_flare::client::RetryPolicy;
use clinfl_flare::controller::SagConfig;
use clinfl_flare::executor::ArithmeticExecutor;
use clinfl_flare::faults::FaultConfig;
use clinfl_flare::simulator::{SimulatorConfig, SimulatorRunner};
use clinfl_flare::{WeightTensor, Weights};
use clinfl_obs as obs;
use std::time::Duration;

#[test]
fn concurrent_counter_updates_are_lossless() {
    let workers = 8usize;
    let per_worker = 10_000u64;
    let counter = obs::counter("obs_test.concurrent.counter");
    let before = counter.get();
    let jobs: Vec<_> = (0..workers)
        .map(|_| {
            let c = counter.clone();
            move || {
                for _ in 0..per_worker {
                    c.incr();
                }
            }
        })
        .collect();
    clinfl_tensor::pool::run_jobs(jobs);
    assert_eq!(counter.get() - before, workers as u64 * per_worker);
}

#[test]
fn concurrent_histogram_updates_are_lossless() {
    let workers = 8usize;
    let per_worker = 5_000u64;
    let hist = obs::histogram("obs_test.concurrent.histogram");
    let before = (hist.count(), hist.sum());
    let jobs: Vec<_> = (0..workers)
        .map(|w| {
            let h = hist.clone();
            move || {
                for i in 0..per_worker {
                    h.record(w as u64 * per_worker + i);
                }
            }
        })
        .collect();
    clinfl_tensor::pool::run_jobs(jobs);
    let total = workers as u64 * per_worker;
    assert_eq!(hist.count() - before.0, total);
    // Sum of 0..workers*per_worker, recorded exactly once each.
    let expected_sum = total * (total - 1) / 2;
    assert_eq!(hist.sum() - before.1, expected_sum);
    // Every sample landed in a bucket.
    let frozen = hist.freeze();
    assert_eq!(
        frozen.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
        frozen.count
    );
}

fn initial() -> Weights {
    let mut w = Weights::new();
    w.insert("p".into(), WeightTensor::new(vec![4], vec![0.0; 4]));
    w
}

#[test]
fn spans_balance_under_aggressive_faults() {
    if !obs::enabled() {
        return; // CLINFL_OBS=0: nothing is recorded, nothing to check.
    }
    let runs_before = obs::snapshot()
        .histograms
        .get("span.run")
        .map_or(0, |h| h.count);
    let cfg = SimulatorConfig {
        n_clients: 4,
        sag: SagConfig {
            rounds: 3,
            min_clients: 2,
            round_timeout: Duration::from_secs(8),
            validate_global: false,
            quorum_grace: Some(Duration::from_millis(1500)),
            ..SagConfig::default()
        },
        seed: 31,
        faults: FaultConfig::aggressive(12),
        retry: RetryPolicy {
            message_timeout: Duration::from_secs(30),
            submit_copies: 2,
            ..RetryPolicy::default()
        },
        ..SimulatorConfig::default()
    };
    let res = SimulatorRunner::new(cfg)
        .run_simple(
            initial(),
            |i, _| {
                Box::new(ArithmeticExecutor {
                    delta: (i as f32 + 1.0) * 0.5,
                    n_examples: 10,
                })
            },
            &WeightedFedAvg,
        )
        .expect("faulty simulation completes");
    assert_eq!(res.workflow.rounds.len(), 3);

    // Every span opened on this thread was closed again...
    assert_eq!(obs::span_depth(), 0, "unbalanced span stack after run");
    assert_eq!(obs::current_span_path(), "");
    // ...and the nested timings were recorded under their full paths.
    let snap = obs::snapshot();
    assert_eq!(
        snap.histograms.get("span.run").map_or(0, |h| h.count),
        runs_before + 1,
        "the run span must be recorded exactly once per simulation"
    );
    let rounds = snap.histograms.get("span.run>round").expect("round spans");
    assert!(
        rounds.count >= 3,
        "expected at least 3 run>round spans, got {}",
        rounds.count
    );
}

#[test]
fn snapshot_json_round_trips_deterministically() {
    // Populate at least one metric of each kind, then freeze.
    obs::counter("obs_test.roundtrip.counter").add(41);
    obs::gauge("obs_test.roundtrip.gauge").set(-7);
    obs::histogram("obs_test.roundtrip.histogram").record(1234);
    let snap = obs::snapshot();

    let text = snap.to_json();
    let back = obs::MetricsSnapshot::from_json(&text).expect("parse back");
    assert_eq!(back, snap, "snapshot changed across a JSON round-trip");
    // Canonical writer + sorted maps: byte-identical re-serialization
    // (the test-serial CI leg repeats this under CLINFL_THREADS=1).
    assert_eq!(back.to_json(), text);
    if obs::enabled() {
        assert_eq!(back.counter("obs_test.roundtrip.counter"), 41);
    }
}
