//! # clinfl-bench
//!
//! Benchmark harness for the `clinfl` reproduction: one binary per table /
//! figure of the paper, plus Criterion micro-benchmarks.
//!
//! | Paper artifact | Regenerate with |
//! |---|---|
//! | Table I (parameters)        | `cargo run -p clinfl-bench --release --bin table1_parameters` |
//! | Table II (model specs)      | `cargo run -p clinfl-bench --release --bin table2_models` |
//! | Table III (top-1 accuracy)  | `cargo run -p clinfl-bench --release --bin table3_accuracy [--scale N]` |
//! | Fig. 2 (MLM loss)           | `cargo run -p clinfl-bench --release --bin fig2_mlm_loss [--scale N]` |
//! | Fig. 3 (runtime demo)       | `cargo run -p clinfl-bench --release --bin fig3_demo` |
//! | Ablations (extensions)      | `ablation_aggregators`, `ablation_partition`, `ablation_pretrain` |
//! | Tape allocation pressure    | `cargo run -p clinfl-bench --release --bin alloc_stats` |
//! | Micro-benchmarks            | `cargo bench -p clinfl-bench` |
//!
//! `--scale N` divides the paper's data volumes by `N` (default shown per
//! binary); `--scale 1` is full paper scale. Results are recorded in the
//! repository's `EXPERIMENTS.md`.

/// Parses `--scale N` (and `--seed N`) from command-line arguments.
///
/// Unknown arguments are reported on stderr and ignored so harness wrappers
/// can pass extra flags without breaking runs.
pub fn parse_args(default_scale: usize) -> BenchArgs {
    let mut args = BenchArgs {
        scale: default_scale,
        seed: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    args.scale = v;
                }
            }
            "--seed" => {
                args.seed = it.next().and_then(|v| v.parse().ok());
            }
            other => eprintln!("(ignoring unknown argument {other:?})"),
        }
    }
    args
}

/// Parsed benchmark arguments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenchArgs {
    /// Data-volume divisor relative to paper scale.
    pub scale: usize,
    /// Optional seed override.
    pub seed: Option<u64>,
}

impl BenchArgs {
    /// Builds the pipeline config for this scale (applying any seed
    /// override).
    pub fn config(&self) -> clinfl::PipelineConfig {
        let mut cfg = clinfl::PipelineConfig::scaled(self.scale);
        if let Some(seed) = self.seed {
            cfg.seed = seed;
            cfg.cohort.seed = seed;
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_applies_seed() {
        let args = BenchArgs {
            scale: 8,
            seed: Some(123),
        };
        let cfg = args.config();
        assert_eq!(cfg.seed, 123);
        assert_eq!(cfg.cohort.seed, 123);
    }
}
