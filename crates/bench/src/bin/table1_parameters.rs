//! Regenerates the paper's **Table I** (parameters used in this paper),
//! printing the configured reproduction values against the paper's, with
//! each substitution annotated.

use clinfl::PipelineConfig;
use clinfl_data::CodeSystem;

fn main() {
    let paper = PipelineConfig::paper();
    let vocab = CodeSystem::new().vocab().len();
    println!("TABLE I — PARAMETERS (paper → this reproduction)\n");
    let rows: Vec<(&str, String, &str)> = vec![
        (
            "Number of clients",
            format!("{}", paper.n_clients),
            "8 (identical)",
        ),
        (
            "Hardware spec.",
            "single CPU core (this machine)".into(),
            "paper: 4x RTX 2080 Ti + AWS p3.8xlarge — substituted per DESIGN.md",
        ),
        (
            "Software info.",
            "clinfl-tensor autograd (pure Rust)".into(),
            "paper: PyTorch + CUDA 11.7 + NVFlare v2.2 — clinfl-flare reimplements NVFlare",
        ),
        (
            "# train data (pretraining)",
            format!("{}", paper.pretrain.n_train()),
            "453,377 (synthetic corpus, scale 1)",
        ),
        (
            "# valid data (pretraining)",
            format!("{}", paper.pretrain.n_valid()),
            "8,683",
        ),
        (
            "# train data (fine-tune)",
            format!(
                "{}",
                (paper.cohort.n_patients as f64 * paper.train_frac).round()
            ),
            "6,927",
        ),
        (
            "# valid data (fine-tune)",
            format!(
                "{}",
                paper.cohort.n_patients
                    - (paper.cohort.n_patients as f64 * paper.train_frac).round() as usize
            ),
            "1,732",
        ),
        (
            "Cohort / positives",
            format!("{} patients, ~21% ADR", paper.cohort.n_patients),
            "8,638 patients, 1,824 treatment failures",
        ),
        (
            "Vocabulary",
            format!("{vocab} clinical codes"),
            "synthetic code system (proprietary EHR substituted)",
        ),
        (
            "Optimizer / lr",
            "Adam; 3e-3 (LSTM), 1e-3 (BERT), 2e-3 (MLM)".into(),
            "paper: Adam 1e-2 — see EXPERIMENTS.md calibration notes",
        ),
        (
            "Communication rounds E",
            format!("{} x {} local epochs", paper.rounds, paper.local_epochs),
            "Fig. 3 shows 10 rounds, 10 local epochs",
        ),
    ];
    for (name, ours, paper_note) in rows {
        println!("{name:<28} {ours:<40} | {paper_note}");
    }
}
