//! Regenerates the paper's **Table III** (top-1 accuracy of BERT /
//! BERT-mini / LSTM under centralized, standalone and FL training).
//!
//! Default scale divides the paper's cohort by 10 for a single-core CPU
//! budget; pass `--scale 1` for the full 8,638-patient cohort.
//!
//! ```sh
//! cargo run -p clinfl-bench --release --bin table3_accuracy -- --scale 10
//! ```

use clinfl::experiments::run_table3_with;
use std::time::Instant;

fn main() {
    let args = clinfl_bench::parse_args(10);
    let cfg = args.config();
    eprintln!(
        "Table III at scale {} ({} patients, {} rounds x {} local epochs / {} epochs)…",
        args.scale, cfg.cohort.n_patients, cfg.rounds, cfg.local_epochs, cfg.epochs
    );
    let start = Instant::now();
    let table = run_table3_with(&cfg, |scheme, model| {
        eprintln!(
            "  [{:>6.1}s] running {scheme} / {model}…",
            start.elapsed().as_secs_f64()
        );
    })
    .expect("table runs");
    println!("{table}");
    println!("Shape check:");
    for note in table.shape_report() {
        println!("  {note}");
    }
    println!(
        "\n(total wall-clock {:.1}s at scale {}; EXPERIMENTS.md records the archived run)",
        start.elapsed().as_secs_f64(),
        args.scale
    );
}
