//! Ablation: does the paper's MLM pretraining stage (§III-B) help the
//! downstream ADR fine-tuning? Compares BERT fine-tuned from scratch
//! against BERT whose encoder was MLM-pretrained on the synthetic corpus.

use clinfl::drivers::{build_mlm_data, build_task_data};
use clinfl::{Learner, MlmLearner, ModelSpec, PipelineConfig, TrainHyper};
use clinfl_data::CodeSystem;
use clinfl_models::BertConfig;

fn finetune(cfg: &PipelineConfig, init_from: Option<&clinfl_flare::Weights>) -> f64 {
    let data = build_task_data(cfg);
    let hyper = TrainHyper::for_model(ModelSpec::Bert);
    let vocab = data.code_system.vocab().len();
    let mut learner = Learner::new(ModelSpec::Bert, vocab, cfg.seq_len, hyper, cfg.seed);
    if let Some(w) = init_from {
        learner.load_weights(w);
    }
    for _ in 0..cfg.epochs {
        learner.train_epoch(&data.train);
    }
    learner.evaluate(&data.valid)
}

fn main() {
    let args = clinfl_bench::parse_args(16);
    let mut cfg = args.config();
    cfg.pretrain.scale = 64 * args.scale.max(1);
    println!(
        "ABLATION — MLM pretraining transfer (BERT, {} patients, {} fine-tune epochs, corpus {})\n",
        cfg.cohort.n_patients,
        cfg.epochs,
        cfg.pretrain.n_train()
    );

    eprintln!("[1/3] MLM pretraining ({} rounds)…", cfg.pretrain_rounds);
    let mlm_data = build_mlm_data(&cfg);
    let bert_cfg = BertConfig::bert(mlm_data.vocab_size, cfg.seq_len);
    let mut pretrainer = MlmLearner::new(
        &bert_cfg,
        CodeSystem::new().vocab().clone(),
        TrainHyper::for_mlm(),
        cfg.seed,
    );
    let before = pretrainer.eval_loss(&mlm_data.valid);
    for _ in 0..cfg.pretrain_rounds {
        pretrainer.train_epoch(&mlm_data.train);
    }
    let after = pretrainer.eval_loss(&mlm_data.valid);
    println!("MLM valid loss: {before:.3} → {after:.3}");

    eprintln!("[2/3] Fine-tune from scratch…");
    let scratch = finetune(&cfg, None);
    eprintln!("[3/3] Fine-tune from pretrained encoder…");
    let pretrained_weights = pretrainer.export_weights();
    let transferred = finetune(&cfg, Some(&pretrained_weights));

    println!("\nBERT fine-tune accuracy:");
    println!("  from scratch:          {:.1}%", 100.0 * scratch);
    println!("  from MLM pretraining:  {:.1}%", 100.0 * transferred);
    println!(
        "\n(the paper motivates pretraining as 'broadening the applicability of the framework';\n this measures its downstream effect: {:+.1} points)",
        100.0 * (transferred - scratch)
    );
}
