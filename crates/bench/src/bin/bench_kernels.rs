//! Kernel-level perf gate: times the packed register-blocked GEMM
//! kernels (DESIGN.md §3j) against the retained naive references across
//! the matrix shapes the smoke run actually hits (LSTM gate products,
//! BERT QKV projections, per-head attention products, the tied MLM
//! decoder) and writes a schema-stable `BENCH_kernels.json`.
//!
//! Modes:
//!
//! * `bench_kernels --run [--out PATH]` — time every shape case and write
//!   the report (default `BENCH_kernels.json`).
//! * `bench_kernels --check PATH [--min-speedup X]` — validate an
//!   existing report against the `clinfl-bench-kernels/v1` schema and
//!   enforce the perf floor: the aggregate packed-vs-reference speedup
//!   over the matmul histogram (total reference time / total packed
//!   time, weighted by the per-case FLOP-proportional iteration counts)
//!   must be at least `X` (default 2.5). This is the CI leg that keeps
//!   the tentpole win of PR 9 from silently evaporating.
//!
//! Both kernels run on the same thread budget (whatever the pool grants;
//! single-threaded on a 1-core CI box, where the references were serial
//! anyway), so the gate measures kernel quality, not parallelism.

use clinfl_obs::json::Value;
use clinfl_tensor::kernels;
use std::time::Instant;

/// Schema identifier stamped into (and required from) every report.
const SCHEMA: &str = "clinfl-bench-kernels/v1";

/// Enforced floor on the aggregate matmul-histogram speedup.
const DEFAULT_MIN_SPEEDUP: f64 = 2.5;

/// Target measurement time per (case, kernel) timing loop, in ns. Long
/// enough that the slowest case runs tens of iterations on the CI box.
const TARGET_NS: u64 = 150_000_000;

/// Which GEMM variant a case exercises.
#[derive(Clone, Copy, PartialEq)]
enum Kind {
    /// `c += a·b`, optionally batched with a broadcast right-hand side.
    Matmul,
    /// `c += aᵀ·b` (weight-gradient shape).
    AtB,
    /// `c += a·bᵀ` (input-gradient / attention-score shape).
    ABt,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Matmul => "matmul",
            Kind::AtB => "matmul_at_b",
            Kind::ABt => "matmul_a_bt",
        }
    }
}

/// One timed shape: `lb` batch items of an `m×k · k×n` product (for
/// `AtB`, `k` is the contraction rows; for `ABt`, the product is
/// `m×k · (n×k)ᵀ` with contraction `k`).
struct Case {
    name: &'static str,
    kind: Kind,
    lb: usize,
    m: usize,
    k: usize,
    n: usize,
    /// Broadcast/shared second operand (batched entry points only).
    broadcast: bool,
}

/// The smoke run's hot shapes: LSTM hidden 128 / batch 32, BERT hidden
/// 128 / 6 heads / head_dim 22 / seq_len 26 / batch 16, vocab 443.
fn cases() -> Vec<Case> {
    let c = |name, kind, lb, m, k, n, broadcast| Case {
        name,
        kind,
        lb,
        m,
        k,
        n,
        broadcast,
    };
    vec![
        // LSTM: per-gate x·W_x and h·W_h products and their dW gradients.
        c("lstm_gate", Kind::Matmul, 1, 32, 128, 128, false),
        c("lstm_gate_dw", Kind::AtB, 1, 128, 32, 128, false),
        c("lstm_gate_dx", Kind::ABt, 1, 32, 128, 128, false),
        // BERT: fused QKV/FFN projections over all batch*seq rows with a
        // broadcast weight — the packing-amortized batched path.
        c("bert_qkv", Kind::Matmul, 16, 26, 128, 128, true),
        c("bert_ffn", Kind::Matmul, 16, 26, 128, 256, true),
        // Attention: per-head q·kᵀ scores and scores·v context, batched
        // over batch*heads items with per-item operands.
        c("attn_scores", Kind::ABt, 96, 26, 22, 26, false),
        c("attn_ctx", Kind::Matmul, 96, 26, 26, 22, false),
        // Tied MLM decoder: h·Eᵀ over the vocab.
        c("mlm_decoder", Kind::ABt, 1, 416, 128, 443, false),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut run = false;
    let mut out = String::from("BENCH_kernels.json");
    let mut check: Option<String> = None;
    let mut min_speedup = DEFAULT_MIN_SPEEDUP;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--run" => run = true,
            "--out" => out = it.next().expect("--out requires a path").clone(),
            "--check" => check = Some(it.next().expect("--check requires a path").clone()),
            "--min-speedup" => {
                min_speedup = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-speedup requires a number");
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: bench_kernels --run [--out PATH] | --check PATH [--min-speedup X]"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = check {
        run_check(&path, min_speedup);
        return;
    }
    if !run {
        eprintln!("usage: bench_kernels --run [--out PATH] | --check PATH [--min-speedup X]");
        std::process::exit(2);
    }
    run_bench(&out);
}

/// Deterministic pseudo-random fill (xorshift) — no RNG dependency, and
/// every run times identical data.
fn fill(buf: &mut [f32], mut state: u64) {
    for v in buf.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *v = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
}

/// Sizes of (a, b, c) for a case, accounting for batching and broadcast.
fn buffer_sizes(c: &Case) -> (usize, usize, usize) {
    let (a, b, o) = match c.kind {
        Kind::Matmul => (c.m * c.k, c.k * c.n, c.m * c.n),
        Kind::AtB => (c.k * c.m, c.k * c.n, c.m * c.n),
        Kind::ABt => (c.m * c.k, c.n * c.k, c.m * c.n),
    };
    let b_items = if c.broadcast { 1 } else { c.lb };
    // A shared-accumulator AtB batch still writes one m×n output.
    let o_items = if c.broadcast && c.kind == Kind::AtB {
        1
    } else {
        c.lb
    };
    (c.lb * a, b_items * b, o_items * o)
}

/// Runs the packed (or reference) kernel once over the whole batch.
fn run_case(c: &Case, a: &[f32], b: &[f32], out: &mut [f32], reference: bool) {
    if reference {
        let la = a.len() / c.lb;
        let lbuf = if c.broadcast { b.len() } else { b.len() / c.lb };
        let shared_out = c.broadcast && c.kind == Kind::AtB;
        let lo = if shared_out {
            out.len()
        } else {
            out.len() / c.lb
        };
        for bi in 0..c.lb {
            let ab = &a[bi * la..(bi + 1) * la];
            let bb = if c.broadcast {
                b
            } else {
                &b[bi * lbuf..(bi + 1) * lbuf]
            };
            let ob = if shared_out {
                &mut out[..]
            } else {
                &mut out[bi * lo..(bi + 1) * lo]
            };
            match c.kind {
                Kind::Matmul => kernels::matmul_acc_ref(ab, bb, ob, c.m, c.k, c.n),
                Kind::AtB => kernels::matmul_at_b_acc_ref(ab, bb, ob, c.m, c.k, c.n),
                Kind::ABt => kernels::matmul_a_bt_acc_ref(ab, bb, ob, c.m, c.k, c.n),
            }
        }
    } else {
        match c.kind {
            Kind::Matmul => {
                kernels::matmul_batch_acc(a, b, out, c.lb, c.m, c.k, c.n, c.broadcast);
            }
            Kind::AtB => {
                kernels::matmul_at_b_batch_acc(a, b, out, c.lb, c.k, c.m, c.n, c.broadcast);
            }
            Kind::ABt => {
                kernels::matmul_a_bt_batch_acc(a, b, out, c.lb, c.m, c.k, c.n, c.broadcast);
            }
        }
    }
}

/// Times `iters` whole-batch invocations; returns total ns.
fn time_case(c: &Case, a: &[f32], b: &[f32], out: &mut [f32], iters: u64, reference: bool) -> u64 {
    let started = Instant::now();
    for _ in 0..iters {
        run_case(c, a, b, out, reference);
    }
    started.elapsed().as_nanos() as u64
}

struct Outcome {
    name: &'static str,
    kernel: &'static str,
    lb: usize,
    m: usize,
    k: usize,
    n: usize,
    iters: u64,
    packed_ns: u64,
    ref_ns: u64,
    flops_per_call: u64,
}

fn run_bench(out_path: &str) {
    println!("== bench_kernels: packed vs reference GEMM ==");
    let mut outcomes = Vec::new();
    for case in cases() {
        let (a_len, b_len, o_len) = buffer_sizes(&case);
        let mut a = vec![0.0f32; a_len];
        let mut b = vec![0.0f32; b_len];
        fill(&mut a, 0x9e37_79b9_7f4a_7c15 ^ a_len as u64);
        fill(&mut b, 0x2545_f491_4f6c_dd1d ^ b_len as u64);
        let mut o = vec![0.0f32; o_len];

        // Calibrate the iteration count on the packed kernel, then run
        // both kernels the same number of times. The output buffer keeps
        // accumulating — harmless, the kernels are data-independent in
        // cost — and is re-zeroed between the timed loops only to bound
        // value growth.
        run_case(&case, &a, &b, &mut o, false);
        let probe = time_case(&case, &a, &b, &mut o, 1, false).max(1);
        let iters = (TARGET_NS / probe).clamp(1, 100_000);
        o.iter_mut().for_each(|v| *v = 0.0);
        let packed_ns = time_case(&case, &a, &b, &mut o, iters, false);
        o.iter_mut().for_each(|v| *v = 0.0);
        let ref_ns = time_case(&case, &a, &b, &mut o, iters, true);

        let flops_per_call = 2 * (case.lb * case.m * case.k * case.n) as u64;
        let speedup = ref_ns as f64 / packed_ns.max(1) as f64;
        let gflops = flops_per_call as f64 * iters as f64 / packed_ns.max(1) as f64;
        println!(
            "{:>12} {:>12} lb={:<3} {:>3}x{:<3}x{:<3} {:>6} iters  packed {:>8.3} ms  \
             ref {:>8.3} ms  speedup {:>5.2}x  {:>6.2} GFLOP/s",
            case.name,
            case.kind.name(),
            case.lb,
            case.m,
            case.k,
            case.n,
            iters,
            packed_ns as f64 / 1e6,
            ref_ns as f64 / 1e6,
            speedup,
            gflops,
        );
        outcomes.push(Outcome {
            name: case.name,
            kernel: case.kind.name(),
            lb: case.lb,
            m: case.m,
            k: case.k,
            n: case.n,
            iters,
            packed_ns,
            ref_ns,
            flops_per_call,
        });
    }

    let packed_total: u64 = outcomes.iter().map(|o| o.packed_ns).sum();
    let ref_total: u64 = outcomes.iter().map(|o| o.ref_ns).sum();
    let aggregate = ref_total as f64 / packed_total.max(1) as f64;
    println!(
        "aggregate: packed {:.1} ms, reference {:.1} ms, speedup {aggregate:.2}x",
        packed_total as f64 / 1e6,
        ref_total as f64 / 1e6,
    );

    let report = build_report(&outcomes);
    std::fs::write(out_path, report.to_json()).expect("write report");
    println!("report written to {out_path}");
}

fn build_report(outcomes: &[Outcome]) -> Value {
    let packed_total: u64 = outcomes.iter().map(|o| o.packed_ns).sum();
    let ref_total: u64 = outcomes.iter().map(|o| o.ref_ns).sum();
    let cases: Vec<Value> = outcomes
        .iter()
        .map(|o| {
            Value::object(vec![
                ("name", Value::Str(o.name.to_string())),
                ("kernel", Value::Str(o.kernel.to_string())),
                ("lb", Value::UInt(o.lb as u64)),
                ("m", Value::UInt(o.m as u64)),
                ("k", Value::UInt(o.k as u64)),
                ("n", Value::UInt(o.n as u64)),
                ("iters", Value::UInt(o.iters)),
                ("packed_ms", Value::Float(o.packed_ns as f64 / 1e6)),
                ("ref_ms", Value::Float(o.ref_ns as f64 / 1e6)),
                (
                    "speedup",
                    Value::Float(o.ref_ns as f64 / o.packed_ns.max(1) as f64),
                ),
                (
                    "gflops",
                    Value::Float(
                        o.flops_per_call as f64 * o.iters as f64 / o.packed_ns.max(1) as f64,
                    ),
                ),
            ])
        })
        .collect();
    Value::object(vec![
        ("schema", Value::Str(SCHEMA.to_string())),
        (
            "run",
            Value::object(vec![
                ("workload", Value::Str("gemm-shapes".to_string())),
                (
                    "threads",
                    Value::UInt(clinfl_tensor::pool::num_threads() as u64),
                ),
            ]),
        ),
        ("cases", Value::Array(cases)),
        (
            "aggregate",
            Value::object(vec![
                ("packed_ms", Value::Float(packed_total as f64 / 1e6)),
                ("ref_ms", Value::Float(ref_total as f64 / 1e6)),
                (
                    "speedup",
                    Value::Float(ref_total as f64 / packed_total.max(1) as f64),
                ),
            ]),
        ),
    ])
}

/// Validates `path` against the v1 schema and enforces the speedup
/// floor; prints every violation and exits 1 if any is found.
fn run_check(path: &str, min_speedup: f64) {
    let mut errors = Vec::new();
    let report = match std::fs::read_to_string(path) {
        Ok(text) => match Value::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("FAIL {path}: unparsable JSON: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("FAIL {path}: unreadable: {e}");
            std::process::exit(1);
        }
    };

    if report.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        errors.push(format!("schema field is not {SCHEMA:?}"));
    }
    let cases = report.get("cases").and_then(Value::as_array).unwrap_or(&[]);
    if cases.is_empty() {
        errors.push("cases array missing or empty".to_string());
    }
    for (i, c) in cases.iter().enumerate() {
        if c.get("name").and_then(Value::as_str).is_none() {
            errors.push(format!("cases[{i}].name missing"));
        }
        for field in ["packed_ms", "ref_ms", "speedup", "gflops"] {
            if c.get(field)
                .and_then(Value::as_f64)
                .is_none_or(|v| v <= 0.0)
            {
                errors.push(format!("cases[{i}].{field} missing or non-positive"));
            }
        }
        if c.get("iters")
            .and_then(Value::as_u64)
            .is_none_or(|v| v == 0)
        {
            errors.push(format!("cases[{i}].iters missing or zero"));
        }
    }
    match report
        .get("aggregate")
        .and_then(|a| a.get("speedup"))
        .and_then(Value::as_f64)
    {
        Some(speedup) => {
            if speedup < min_speedup {
                errors.push(format!(
                    "packed GEMM speedup regressed: aggregate {speedup:.2}x is below \
                     the enforced {min_speedup}x floor (see DESIGN.md §3j)"
                ));
            }
        }
        None => errors.push("aggregate.speedup missing".to_string()),
    }

    if errors.is_empty() {
        let speedup = report
            .get("aggregate")
            .and_then(|a| a.get("speedup"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        println!("OK {path}: valid {SCHEMA}, aggregate speedup {speedup:.2}x >= {min_speedup}x");
    } else {
        for e in &errors {
            eprintln!("FAIL {path}: {e}");
        }
        std::process::exit(1);
    }
}
