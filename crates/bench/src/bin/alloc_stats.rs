//! Per-step heap-allocation and peak-memory statistics for the
//! arena-backed autograd tape.
//!
//! For each paper model (LSTM classification step, BERT-mini MLM step,
//! BERT MLM step) this binary measures a steady-state training step in
//! two modes:
//!
//! * `fresh` — a brand-new [`Graph`] per step, the pre-arena behavior;
//! * `reuse` — one graph reset between steps, recycling its buffers.
//!
//! Each (model, mode) pair runs in its own subprocess so the peak RSS
//! (`VmHWM` from `/proc/self/status`) is a clean per-mode number rather
//! than the running maximum across modes. Allocation counts come from a
//! counting [`GlobalAlloc`] wrapper around the system allocator.
//!
//! Results are recorded in `EXPERIMENTS.md`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

use clinfl_models::{
    BertConfig, BertModel, LstmClassifier, LstmConfig, SequenceClassifier, TokenBatch,
};
use clinfl_tensor::{pool, Adam, Graph, Optimizer};

/// System allocator wrapped with relaxed atomic counters. `realloc` counts
/// as one allocation of the new size; frees are not tracked (we report
/// allocation pressure, not live bytes).
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const WARMUP_STEPS: usize = 3;
const MEASURE_STEPS: usize = 8;
const MODELS: [&str; 3] = ["lstm", "bert-mini", "bert"];
const MODES: [&str; 2] = ["fresh", "reuse"];

fn snapshot() -> (u64, u64) {
    (
        ALLOC_COUNT.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// Peak resident set size of this process in kilobytes, from `VmHWM`.
fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn token_batch(b: usize, s: usize, vocab: usize) -> (Vec<u32>, Vec<u8>) {
    let ids: Vec<u32> = (0..b * s)
        .map(|i| 5 + (i as u32 * 31 + 7) % (vocab as u32 - 6))
        .collect();
    let mut mask = vec![1u8; b * s];
    // Pad the tail of the last sequence so masking paths are exercised.
    for m in mask[(b - 1) * s + s - 4..].iter_mut() {
        *m = 0;
    }
    (ids, mask)
}

/// One MLM label per position: every 4th non-pad position is a target
/// (holding the original id), the rest are ignored — the same shape of
/// labels `MlmMasker` produces.
fn mlm_labels(ids: &[u32], mask: &[u8]) -> Vec<i32> {
    ids.iter()
        .zip(mask)
        .enumerate()
        .map(|(i, (&id, &m))| {
            if m != 0 && i % 4 == 0 {
                id as i32
            } else {
                clinfl_text::IGNORE_INDEX
            }
        })
        .collect()
}

/// Runs warmup + measured training steps for one (model, mode) pair and
/// prints a single TSV record: `model mode allocs/step bytes/step vmhwm_kb`.
fn run_worker(model: &str, mode: &str) {
    pool::set_threads(1);
    let reuse = mode == "reuse";
    let vocab = 200;
    let (b, s) = (8, 32);
    let (ids, mask) = token_batch(b, s, vocab);
    let batch = TokenBatch {
        ids: &ids,
        mask: &mask,
        batch_size: b,
        seq_len: s,
    };
    let labels: Vec<i32> = (0..b as i32).map(|i| i % 2).collect();
    let mlm = mlm_labels(&ids, &mask);

    enum Step {
        Lstm(LstmClassifier),
        BertMlm(BertModel),
    }
    let mut m = match model {
        "lstm" => Step::Lstm(LstmClassifier::new(&LstmConfig::with_vocab(vocab), 1)),
        "bert-mini" => Step::BertMlm(BertModel::new(&BertConfig::bert_mini(vocab, s), 1)),
        "bert" => Step::BertMlm(BertModel::new(&BertConfig::bert(vocab, s), 1)),
        other => panic!("unknown model {other:?}"),
    };
    let mut opt = Adam::with_lr(1e-3);
    let mut reused = Graph::new();

    let mut measured = (0, 0);
    for i in 0..WARMUP_STEPS + MEASURE_STEPS {
        if i == WARMUP_STEPS {
            measured = snapshot();
        }
        let seed = 0xA110C ^ (i as u64);
        let g = if reuse {
            reused.reset_with_seed(seed);
            reused.set_training(true);
            &mut reused
        } else {
            reused = Graph::with_seed(seed);
            &mut reused
        };
        let loss = match &mut m {
            Step::Lstm(model) => model.classification_loss(g, &batch, &labels),
            Step::BertMlm(model) => model.mlm_loss(g, &batch, &mlm),
        };
        g.backward(loss);
        let params = match &mut m {
            Step::Lstm(model) => model.params_mut(),
            Step::BertMlm(model) => model.params_mut(),
        };
        g.grads_into(params);
        opt.step(params);
    }
    let (count, bytes) = snapshot();
    let steps = MEASURE_STEPS as u64;
    println!(
        "{model}\t{mode}\t{}\t{}\t{}",
        (count - measured.0) / steps,
        (bytes - measured.1) / steps,
        peak_rss_kb()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 4 && args[1] == "--worker" {
        run_worker(&args[2], &args[3]);
        return;
    }

    let exe = std::env::current_exe().expect("current_exe");
    // One measurement per (model, mode): allocs/step, bytes/step, vmhwm_kb.
    #[derive(Clone, Copy, Default)]
    struct Meas {
        allocs: u64,
        bytes: u64,
        rss_kb: u64,
    }
    let mut rows: Vec<(String, [Meas; 2])> = Vec::new();
    for model in MODELS {
        let mut per_mode = [Meas::default(); 2];
        for (mi, mode) in MODES.iter().enumerate() {
            let out = Command::new(&exe)
                .args(["--worker", model, mode])
                .output()
                .expect("spawn worker");
            assert!(
                out.status.success(),
                "worker {model}/{mode} failed:\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            let line = String::from_utf8_lossy(&out.stdout);
            let f: Vec<u64> = line
                .split_whitespace()
                .skip(2)
                .map(|v| v.parse().expect("numeric field"))
                .collect();
            per_mode[mi] = Meas {
                allocs: f[0],
                bytes: f[1],
                rss_kb: f[2],
            };
        }
        rows.push((model.to_string(), per_mode));
    }

    println!("ALLOCATION PRESSURE PER TRAINING STEP (steady state, {MEASURE_STEPS} measured steps, 1 thread)\n");
    println!(
        "{:<10} {:>7} {:>14} {:>14} {:>13} {:>9}",
        "Model", "Mode", "Allocs/step", "Bytes/step", "Peak RSS (MB)", "Alloc ×"
    );
    for (model, [fresh, reuse]) in &rows {
        let ratio = fresh.allocs.max(1) as f64 / reuse.allocs.max(1) as f64;
        for (mode, m) in MODES.iter().zip([fresh, reuse]) {
            let x = if *mode == "reuse" {
                format!("{ratio:.1}x")
            } else {
                String::new()
            };
            println!(
                "{:<10} {:>7} {:>14} {:>14} {:>13.1} {:>9}",
                model,
                mode,
                m.allocs,
                m.bytes,
                m.rss_kb as f64 / 1024.0,
                x
            );
        }
    }
    let mini = rows
        .iter()
        .find(|(m, _)| m == "bert-mini")
        .expect("bert-mini row");
    let ratio = mini.1[0].allocs.max(1) as f64 / mini.1[1].allocs.max(1) as f64;
    println!("\nBERT-mini MLM step: {ratio:.1}x fewer heap allocations with tape reuse (target: >= 10x).");
    assert!(
        ratio >= 10.0,
        "tape reuse must cut BERT-mini MLM per-step allocations by >= 10x (got {ratio:.1}x)"
    );
}
