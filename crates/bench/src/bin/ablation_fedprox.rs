//! Ablation (extension): FedAvg vs FedAvg + FedProx proximal local
//! training under label-skewed sites. FedProx (Li et al., MLSys 2020)
//! penalizes local drift from the global model, which matters exactly when
//! site distributions diverge.

use clinfl::{drivers, ClinicalExecutor, Learner, ModelSpec, PipelineConfig, TrainHyper};
use clinfl_data::SitePartitioner;
use clinfl_flare::aggregator::WeightedFedAvg;
use clinfl_flare::controller::SagConfig;
use clinfl_flare::simulator::{SimulatorConfig, SimulatorRunner};
use clinfl_flare::EventLog;
use std::time::Duration;

fn run(cfg: &PipelineConfig, bias: f64, prox_mu: Option<f32>) -> f64 {
    let data = drivers::build_task_data(cfg);
    let shards = SitePartitioner::LabelSkew {
        n_sites: cfg.n_clients,
        bias,
    }
    .partition(&data.train, cfg.seed);
    let hyper = TrainHyper::for_model(ModelSpec::Lstm);
    let vocab = data.code_system.vocab().len();
    let initial =
        Learner::new(ModelSpec::Lstm, vocab, cfg.seq_len, hyper, cfg.seed).export_weights();
    let log = EventLog::new();
    let runner = SimulatorRunner::with_log(
        SimulatorConfig {
            n_clients: cfg.n_clients,
            sag: SagConfig {
                rounds: cfg.rounds,
                min_clients: 1,
                round_timeout: Duration::from_secs(3600),
                validate_global: false,
                ..SagConfig::default()
            },
            seed: cfg.seed,
            ..SimulatorConfig::default()
        },
        log.clone(),
    );
    let valid = data.valid.clone();
    let result = runner
        .run_simple(
            initial,
            |i, _| {
                let mut ex = ClinicalExecutor::new(
                    Learner::new(ModelSpec::Lstm, vocab, cfg.seq_len, hyper, cfg.seed),
                    shards[i].clone(),
                    valid.clone(),
                    cfg.local_epochs,
                    log.clone(),
                );
                if let Some(mu) = prox_mu {
                    ex = ex.with_prox(mu);
                }
                Box::new(ex)
            },
            &WeightedFedAvg,
        )
        .expect("simulation runs");
    let mut eval = Learner::new(ModelSpec::Lstm, vocab, cfg.seq_len, hyper, cfg.seed);
    eval.load_weights(&result.workflow.final_weights);
    eval.evaluate(&data.valid)
}

fn main() {
    let args = clinfl_bench::parse_args(12);
    let cfg = args.config();
    println!(
        "ABLATION — FedProx under label skew (LSTM, {} patients, {} rounds x {} local epochs)\n",
        cfg.cohort.n_patients, cfg.rounds, cfg.local_epochs
    );
    println!(
        "{:<8} {:>12} {:>18} {:>18}",
        "bias", "FedAvg", "FedProx mu=0.01", "FedProx mu=0.1"
    );
    for bias in [0.0, 0.6, 0.9] {
        let plain = run(&cfg, bias, None);
        let prox_small = run(&cfg, bias, Some(0.01));
        let prox_large = run(&cfg, bias, Some(0.1));
        println!(
            "{bias:<8} {:>11.1}% {:>17.1}% {:>17.1}%",
            100.0 * plain,
            100.0 * prox_small,
            100.0 * prox_large
        );
    }
}
