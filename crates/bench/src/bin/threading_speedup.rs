//! Serial-vs-parallel speedup table for the threading model (DESIGN.md
//! `## Threading model`): times the hot tensor kernels and a full
//! federated round at a thread budget of 1 and of `--threads N`
//! (default 4), prints a Markdown speedup table, and verifies that the
//! parallel kernels are bit-identical to their serial runs.
//!
//! Regenerate the numbers in `EXPERIMENTS.md` with:
//!
//! ```text
//! cargo run -p clinfl-bench --release --bin threading_speedup
//! ```

use clinfl::drivers::train_federated;
use clinfl::{ModelSpec, PipelineConfig};
use clinfl_tensor::{kernels, pool, Tensor};
use std::time::{Duration, Instant};

/// Median-of-`reps` wall-clock time of `f` (after one warm-up call).
fn time_median(reps: usize, mut f: impl FnMut()) -> Duration {
    f();
    let mut times: Vec<Duration> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

fn fmt(d: Duration) -> String {
    let us = d.as_micros();
    if us >= 10_000 {
        format!("{:.1} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{us} µs")
    }
}

struct Row {
    label: &'static str,
    serial: Duration,
    parallel: Duration,
}

fn main() {
    let mut threads = 4usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    threads = v;
                }
            }
            other => eprintln!("(ignoring unknown argument {other:?})"),
        }
    }

    const S: usize = 512;
    let a = Tensor::randn(&[S, S], 1.0, 11);
    let b = Tensor::randn(&[S, S], 1.0, 13);
    let rows = Tensor::randn(&[4096 * S], 1.0, 17);

    // Per-kernel determinism check: the parallel output must be
    // bit-identical to the serial one (same accumulation order per
    // element), not merely close.
    let run_serial_vs_parallel = |f: &dyn Fn() -> Vec<f32>| {
        pool::set_threads(1);
        let serial = f();
        pool::set_threads(threads);
        let parallel = f();
        assert!(
            serial
                .iter()
                .zip(&parallel)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "parallel kernel output is not bit-identical to serial"
        );
    };
    run_serial_vs_parallel(&|| {
        let mut c = vec![0.0f32; S * S];
        kernels::matmul_acc(a.data(), b.data(), &mut c, S, S, S);
        c
    });
    run_serial_vs_parallel(&|| {
        let mut c = vec![0.0f32; S * S];
        kernels::matmul_at_b_acc(a.data(), b.data(), &mut c, S, S, S);
        c
    });
    run_serial_vs_parallel(&|| {
        let mut d = rows.data().to_vec();
        kernels::softmax_rows(&mut d, S);
        d
    });
    println!("determinism: parallel == serial bit-for-bit on all checked kernels\n");

    let mut table: Vec<Row> = Vec::new();
    let mut bench = |label: &'static str, reps: usize, f: &mut dyn FnMut()| {
        pool::set_threads(1);
        let serial = time_median(reps, &mut *f);
        pool::set_threads(threads);
        let parallel = time_median(reps, &mut *f);
        table.push(Row {
            label,
            serial,
            parallel,
        });
    };

    let mut c = vec![0.0f32; S * S];
    bench("matmul_acc 512x512x512", 9, &mut || {
        c.iter_mut().for_each(|v| *v = 0.0);
        kernels::matmul_acc(a.data(), b.data(), &mut c, S, S, S);
    });
    bench("matmul_at_b_acc 512x512x512", 9, &mut || {
        c.iter_mut().for_each(|v| *v = 0.0);
        kernels::matmul_at_b_acc(a.data(), b.data(), &mut c, S, S, S);
    });
    bench("matmul_a_bt_acc 512x512x512", 9, &mut || {
        c.iter_mut().for_each(|v| *v = 0.0);
        kernels::matmul_a_bt_acc(a.data(), b.data(), &mut c, S, S, S);
    });
    let mut d = rows.data().to_vec();
    bench("softmax_rows 4096x512", 9, &mut || {
        d.copy_from_slice(rows.data());
        kernels::softmax_rows(&mut d, S);
    });
    bench("layer_norm_rows 4096x512", 9, &mut || {
        d.copy_from_slice(rows.data());
        kernels::layer_norm_rows(&mut d, S, 1e-5);
    });

    // End-to-end: one federated round, 8 LSTM sites on the imbalanced
    // partition. Site threads contend for compute permits, so the serial
    // budget trains sites strictly one after another.
    let mut cfg = PipelineConfig::scaled(8);
    cfg.rounds = 1;
    cfg.local_epochs = 1;
    bench("FL round, 8 sites, LSTM (scale 8)", 3, &mut || {
        train_federated(&cfg, ModelSpec::Lstm).expect("federated round failed");
    });

    println!("| benchmark | 1 thread | {threads} threads | speedup |");
    println!("|---|---|---|---|");
    for row in &table {
        let speedup = row.serial.as_secs_f64() / row.parallel.as_secs_f64().max(1e-12);
        println!(
            "| {} | {} | {} | {speedup:.2}x |",
            row.label,
            fmt(row.serial),
            fmt(row.parallel)
        );
    }
}
