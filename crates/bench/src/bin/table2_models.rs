//! Regenerates the paper's **Table II** (medical NLP models), verifying the
//! constructed models against the specified geometry and reporting the
//! resulting parameter counts.

use clinfl_data::CodeSystem;
use clinfl_models::{BertConfig, BertModel, LstmClassifier, LstmConfig};

fn main() {
    let vocab = CodeSystem::new().vocab().len();
    let seq = 36;
    let bert = BertModel::new(&BertConfig::bert(vocab, seq), 1);
    let mini = BertModel::new(&BertConfig::bert_mini(vocab, seq), 1);
    let lstm = LstmClassifier::new(&LstmConfig::with_vocab(vocab), 1);

    println!("TABLE II — MEDICAL NLP MODELS (measured from constructed models)\n");
    println!(
        "{:<24} {:>10} {:>12} {:>10}",
        "Specification/Model", "BERT", "BERT-mini", "LSTM"
    );
    println!(
        "{:<24} {:>10} {:>12} {:>10}",
        "Hidden dimension",
        bert.config().hidden,
        mini.config().hidden,
        lstm.config().hidden
    );
    println!(
        "{:<24} {:>10} {:>12} {:>10}",
        "# of attention heads",
        bert.config().heads,
        mini.config().heads,
        "-"
    );
    println!(
        "{:<24} {:>10} {:>12} {:>10}",
        "# of hidden layers",
        bert.config().layers,
        mini.config().layers,
        lstm.config().layers
    );
    println!(
        "{:<24} {:>10} {:>12} {:>10}   (not in paper; measured)",
        "Parameters",
        bert.num_parameters(),
        mini.num_parameters(),
        lstm.num_parameters()
    );
    println!(
        "{:<24} {:>10} {:>12} {:>10}   (encoder w/o heads)",
        "Backbone parameters",
        bert.num_backbone_parameters(),
        mini.num_backbone_parameters(),
        "-"
    );
    println!("\nPaper values: hidden 128/50/128, heads 6/2/-, layers 12/6/3 — matched exactly.");
    assert_eq!(
        (
            bert.config().hidden,
            bert.config().heads,
            bert.config().layers
        ),
        (128, 6, 12)
    );
    assert_eq!(
        (
            mini.config().hidden,
            mini.config().heads,
            mini.config().layers
        ),
        (50, 2, 6)
    );
    assert_eq!((lstm.config().hidden, lstm.config().layers), (128, 3));
}
