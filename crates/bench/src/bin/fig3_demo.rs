//! Regenerates the paper's **Fig. 3** (demonstration of BERT fine-tuning on
//! the NVFlare-style runtime): live log of client initialization with
//! tokens, local epochs with loss/accuracy and sec/local-epoch timing,
//! aggregation, persistence, and the federated round loop.
//!
//! ```sh
//! cargo run -p clinfl-bench --release --bin fig3_demo
//! ```

use clinfl::{drivers, ModelSpec};
use clinfl_flare::EventLog;

fn main() {
    let args = clinfl_bench::parse_args(16);
    let mut cfg = args.config();
    cfg.rounds = 3;
    cfg.local_epochs = 2;

    println!("=== Fig. 3 demonstration: BERT fine-tuning on the federated runtime ===\n");
    let log = EventLog::echoing();
    let out =
        drivers::train_federated_with(&cfg, ModelSpec::Bert, &cfg.imbalanced_partitioner(), log)
            .expect("federation runs");
    println!(
        "\nFinal global BERT accuracy {:.1}% after {} rounds (scale {}).",
        100.0 * out.accuracy,
        cfg.rounds,
        args.scale
    );
}
