//! Ablation (extension beyond the paper): aggregation rules under label
//! skew — weighted FedAvg vs coordinate median vs trimmed mean, on the
//! same federated LSTM task with increasingly biased site label
//! distributions.

use clinfl::{drivers, ClinicalExecutor, Learner, ModelSpec, PipelineConfig, TrainHyper};
use clinfl_data::SitePartitioner;
use clinfl_flare::aggregator::{Aggregator, CoordinateMedian, TrimmedMean, WeightedFedAvg};
use clinfl_flare::controller::SagConfig;
use clinfl_flare::simulator::{SimulatorConfig, SimulatorRunner};
use clinfl_flare::EventLog;
use std::time::Duration;

fn run_with(cfg: &PipelineConfig, bias: f64, aggregator: &dyn Aggregator) -> f64 {
    let data = drivers::build_task_data(cfg);
    let partitioner = SitePartitioner::LabelSkew {
        n_sites: cfg.n_clients,
        bias,
    };
    let shards = partitioner.partition(&data.train, cfg.seed);
    let hyper = TrainHyper::for_model(ModelSpec::Lstm);
    let vocab = data.code_system.vocab().len();
    let seed_learner = Learner::new(ModelSpec::Lstm, vocab, cfg.seq_len, hyper, cfg.seed);
    let initial = seed_learner.export_weights();
    let log = EventLog::new();
    let runner = SimulatorRunner::with_log(
        SimulatorConfig {
            n_clients: cfg.n_clients,
            sag: SagConfig {
                rounds: cfg.rounds,
                min_clients: 1,
                round_timeout: Duration::from_secs(3600),
                validate_global: false,
                ..SagConfig::default()
            },
            seed: cfg.seed,
            ..SimulatorConfig::default()
        },
        log.clone(),
    );
    let valid = data.valid.clone();
    let result = runner
        .run_simple(
            initial,
            |i, _| {
                Box::new(ClinicalExecutor::new(
                    Learner::new(ModelSpec::Lstm, vocab, cfg.seq_len, hyper, cfg.seed),
                    shards[i].clone(),
                    valid.clone(),
                    cfg.local_epochs,
                    log.clone(),
                ))
            },
            aggregator,
        )
        .expect("simulation runs");
    let mut eval = Learner::new(ModelSpec::Lstm, vocab, cfg.seq_len, hyper, cfg.seed);
    eval.load_weights(&result.workflow.final_weights);
    eval.evaluate(&data.valid)
}

fn main() {
    let args = clinfl_bench::parse_args(12);
    let cfg = args.config();
    println!(
        "ABLATION — aggregation rule vs label skew (LSTM, {} patients, {} rounds)\n",
        cfg.cohort.n_patients, cfg.rounds
    );
    println!(
        "{:<10} {:>16} {:>18} {:>14}",
        "bias", "WeightedFedAvg", "CoordinateMedian", "TrimmedMean"
    );
    for bias in [0.0, 0.5, 0.9] {
        let fedavg = run_with(&cfg, bias, &WeightedFedAvg);
        let median = run_with(&cfg, bias, &CoordinateMedian);
        let trimmed = run_with(&cfg, bias, &TrimmedMean { trim: 1 });
        println!(
            "{bias:<10} {:>15.1}% {:>17.1}% {:>13.1}%",
            100.0 * fedavg,
            100.0 * median,
            100.0 * trimmed
        );
    }
    println!("\n(robust rules trade accuracy under uniform data for stability under skew)");
}
