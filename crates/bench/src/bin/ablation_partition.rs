//! Ablation: the paper's Fig. 2 imbalanced-vs-balanced comparison applied
//! to the fine-tuning task (Table III is run on the imbalanced split;
//! this measures how much the split shape matters).

use clinfl::{drivers, ModelSpec};
use clinfl_flare::EventLog;

fn main() {
    let args = clinfl_bench::parse_args(8);
    let cfg = args.config();
    println!(
        "ABLATION — site partition shape (LSTM, {} patients, {} rounds x {} local epochs)\n",
        cfg.cohort.n_patients, cfg.rounds, cfg.local_epochs
    );
    let imb = drivers::train_federated_with(
        &cfg,
        ModelSpec::Lstm,
        &cfg.imbalanced_partitioner(),
        EventLog::new(),
    )
    .expect("imbalanced run");
    let bal = drivers::train_federated_with(
        &cfg,
        ModelSpec::Lstm,
        &cfg.balanced_partitioner(),
        EventLog::new(),
    )
    .expect("balanced run");
    println!(
        "FL (imbalanced {:?}): {:.1}%",
        clinfl_data::PAPER_IMBALANCED_RATIOS,
        100.0 * imb.accuracy
    );
    println!("FL (balanced 8 x 12.5%): {:.1}%", 100.0 * bal.accuracy);
    println!(
        "\nPaper expectation (from Fig. 2's MLM curves): with FedAvg weighting by example count,\nimbalanced and balanced splits land close together. Gap here: {:.1} points.",
        100.0 * (imb.accuracy - bal.accuracy).abs()
    );
}
