//! Regenerates the paper's **Fig. 2** (MLM loss under four pretraining
//! regimes: centralized, small-dataset, FL-imbalanced, FL-balanced).
//!
//! The default divides the paper's 453,377-sequence corpus by 512 (≈ 885
//! sequences, 12 rounds — the single-core CPU budget); pass a lower
//! `--scale` for longer, closer-to-paper runs (corpus divisor = 16 ×
//! scale).
//!
//! ```sh
//! cargo run -p clinfl-bench --release --bin fig2_mlm_loss -- --scale 32
//! ```

use clinfl::drivers::MlmScheme;
use clinfl::experiments::run_fig2_with;
use std::time::Instant;

fn main() {
    let args = clinfl_bench::parse_args(32); // corpus divisor = 16 × this
    let mut cfg = args.config();
    cfg.pretrain.scale = 16 * args.scale.max(1);
    cfg.pretrain_rounds = 12;
    eprintln!(
        "Fig. 2 at corpus scale 1/{} ({} train sequences, {} rounds)…",
        cfg.pretrain.scale,
        cfg.pretrain.n_train(),
        cfg.pretrain_rounds
    );
    let start = Instant::now();
    let fig = run_fig2_with(&cfg, |scheme| {
        eprintln!(
            "  [{:>6.1}s] pretraining: {scheme}…",
            start.elapsed().as_secs_f64()
        );
    })
    .expect("fig2 runs");
    println!("{fig}");

    // Shape assertions mirrored from the paper's reading of Fig. 2.
    let central = fig.final_loss(MlmScheme::Centralized);
    let small = fig.final_loss(MlmScheme::SmallData);
    let imb = fig.final_loss(MlmScheme::FlImbalanced);
    let bal = fig.final_loss(MlmScheme::FlBalanced);
    println!("Shape check:");
    println!("  centralized final {central:.3} | FL-imbalanced {imb:.3} | FL-balanced {bal:.3} | small-data {small:.3}");
    println!(
        "  paper shape: centralized ≈ FL curves ({}), small-data visibly higher ({})",
        if (central - imb).abs() < 0.5 && (central - bal).abs() < 0.5 {
            "OK"
        } else {
            "DIVERGES"
        },
        if small > central + 0.15 {
            "OK"
        } else {
            "DIVERGES"
        },
    );
    println!(
        "\n(total wall-clock {:.1}s; EXPERIMENTS.md records the archived run)",
        start.elapsed().as_secs_f64()
    );
}
