//! Scenario-matrix sweep: federated runs across partition skew × client
//! sampling × DP-SGD × personalization, written as a schema-stable
//! `BENCH_scenarios.json` (ROADMAP item 4; DESIGN.md §3k).
//!
//! Modes:
//!
//! * `scenario_matrix --smoke [--out PATH]` — run the 10-cell smoke grid
//!   ({balanced, dirichlet(0.3)} partitions × sample fraction {1.0, 0.5}
//!   × DP {off, on}, plus one personalization + FedProx arm per
//!   partition) at fast-demo scale and write the report (default
//!   `BENCH_scenarios.json`). The baseline cell (balanced, fraction 1.0,
//!   DP off) is re-run through the plain `train_federated_with` path and
//!   must match bit-for-bit: sampling and DP knobs at their disabled
//!   settings take the exact legacy code path.
//! * `scenario_matrix --check PATH` — validate an existing report
//!   against the `clinfl-bench-scenarios/v1` schema; exits non-zero
//!   (listing every violation) if the file is missing, unparsable, or
//!   incomplete: ≥ 8 cells, both partition kinds present, every accuracy
//!   in `[0, 1]`, and a finite positive ε on every DP cell.
//!
//! CI runs both back to back (`scripts/check.sh scenarios`) and uploads
//! the JSON as a build artifact.

use clinfl::{drivers, ModelSpec, PipelineConfig};
use clinfl_data::SitePartitioner;
use clinfl_flare::EventLog;
use clinfl_obs::json::Value;

/// Schema identifier stamped into (and required from) every report.
const SCHEMA: &str = "clinfl-bench-scenarios/v1";

/// One point of the sweep grid.
struct Cell {
    partition: &'static str,
    /// Dirichlet concentration when `partition == "dirichlet"`.
    alpha: f64,
    sample_fraction: f64,
    dp: bool,
    fedprox_mu: f32,
    personalize_epochs: u32,
}

impl Cell {
    fn name(&self) -> String {
        let mut name = format!("{}/f{:.2}", self.partition, self.sample_fraction);
        name.push_str(if self.dp { "/dp-on" } else { "/dp-off" });
        if self.personalize_epochs > 0 {
            name.push_str("/personalized");
        }
        name
    }
}

/// The smoke grid: the full 2×2×2 core (both partitions × sampling
/// on/off × DP on/off) plus a personalization + FedProx arm per
/// partition.
fn smoke_grid() -> Vec<Cell> {
    let mut cells = Vec::new();
    for partition in ["balanced", "dirichlet"] {
        for sample_fraction in [1.0, 0.5] {
            for dp in [false, true] {
                cells.push(Cell {
                    partition,
                    alpha: 0.3,
                    sample_fraction,
                    dp,
                    fedprox_mu: 0.0,
                    personalize_epochs: 0,
                });
            }
        }
        cells.push(Cell {
            partition,
            alpha: 0.3,
            sample_fraction: 0.5,
            dp: false,
            fedprox_mu: 0.01,
            personalize_epochs: 1,
        });
    }
    cells
}

/// The shared base config every cell perturbs: fast-demo scale with a
/// slightly smaller cohort so the full grid stays CI-friendly.
fn base_config() -> PipelineConfig {
    let mut cfg = PipelineConfig::fast_demo();
    cfg.cohort.n_patients = 160;
    cfg
}

/// DP-SGD settings used by every DP-on cell.
const DP_CLIP: f32 = 1.0;
const DP_SIGMA: f32 = 0.8;

fn run_cell(cell: &Cell) -> drivers::TrainOutcome {
    let mut cfg = base_config();
    cfg.runtime.client_sample_fraction = cell.sample_fraction;
    if cell.dp {
        cfg.runtime.dp_clip = Some(DP_CLIP);
        cfg.runtime.dp_sigma = DP_SIGMA;
    }
    if cell.fedprox_mu > 0.0 {
        cfg.runtime.fedprox_mu = Some(cell.fedprox_mu);
    }
    cfg.runtime.personalize_epochs = cell.personalize_epochs;
    let partitioner = match cell.partition {
        "balanced" => cfg.balanced_partitioner(),
        "dirichlet" => SitePartitioner::Dirichlet {
            n_sites: cfg.n_clients,
            alpha: cell.alpha,
        },
        other => unreachable!("unknown partition kind {other:?}"),
    };
    drivers::train_federated_with(&cfg, ModelSpec::Lstm, &partitioner, EventLog::new())
        .expect("scenario cell failed")
}

fn cell_value(cell: &Cell, outcome: &drivers::TrainOutcome) -> Value {
    let (epsilon, delta) = outcome.privacy.unwrap_or((0.0, 0.0));
    Value::object(vec![
        ("name", Value::Str(cell.name())),
        ("partition", Value::Str(cell.partition.to_string())),
        (
            "alpha",
            if cell.partition == "dirichlet" {
                Value::Float(cell.alpha)
            } else {
                Value::Null
            },
        ),
        ("sample_fraction", Value::Float(cell.sample_fraction)),
        ("dp", Value::Bool(cell.dp)),
        (
            "dp_clip",
            if cell.dp {
                Value::Float(f64::from(DP_CLIP))
            } else {
                Value::Null
            },
        ),
        (
            "dp_sigma",
            if cell.dp {
                Value::Float(f64::from(DP_SIGMA))
            } else {
                Value::Null
            },
        ),
        ("fedprox_mu", Value::Float(f64::from(cell.fedprox_mu))),
        (
            "personalize_epochs",
            Value::UInt(u64::from(cell.personalize_epochs)),
        ),
        ("accuracy", Value::Float(outcome.accuracy)),
        (
            "epsilon",
            if cell.dp {
                Value::Float(epsilon)
            } else {
                Value::Null
            },
        ),
        (
            "delta",
            if cell.dp {
                Value::Float(delta)
            } else {
                Value::Null
            },
        ),
        (
            "personalized_mean",
            match outcome.personalized_mean {
                Some(m) => Value::Float(m),
                None => Value::Null,
            },
        ),
    ])
}

fn run_smoke(out: &str) {
    let cfg = base_config();
    let cells = smoke_grid();
    println!(
        "== scenario_matrix: {} cells ({} sites, {} rounds each) ==",
        cells.len(),
        cfg.n_clients,
        cfg.rounds
    );
    let mut rows = Vec::new();
    for cell in &cells {
        let outcome = run_cell(cell);
        let mut line = format!("{:<40} accuracy={:.3}", cell.name(), outcome.accuracy);
        if let Some((eps, delta)) = outcome.privacy {
            line.push_str(&format!("  (eps={eps:.3}, delta={delta:.0e})"));
        }
        if let Some(mean) = outcome.personalized_mean {
            line.push_str(&format!("  personalized={mean:.3}"));
        }
        println!("{line}");
        rows.push((cell, outcome));
    }

    // The disabled-knob cell must be bit-identical to the plain driver
    // path: fraction >= 1.0 and DP off change no code that touches data.
    let baseline = rows
        .iter()
        .find(|(c, _)| c.partition == "balanced" && c.sample_fraction >= 1.0 && !c.dp)
        .expect("grid always contains the baseline cell");
    let cfg = base_config();
    let reference = drivers::train_federated_with(
        &cfg,
        ModelSpec::Lstm,
        &cfg.balanced_partitioner(),
        EventLog::new(),
    )
    .expect("reference run failed");
    assert_eq!(
        baseline.1.accuracy.to_bits(),
        reference.accuracy.to_bits(),
        "baseline cell must be bit-identical to the plain federated path"
    );
    println!("determinism check passed: baseline cell == plain federated run");

    let report = Value::object(vec![
        ("schema", Value::Str(SCHEMA.to_string())),
        (
            "run",
            Value::object(vec![
                ("workload", Value::Str("scenario-matrix-smoke".to_string())),
                ("n_clients", Value::UInt(cfg.n_clients as u64)),
                ("rounds", Value::UInt(u64::from(cfg.rounds))),
                ("seed", Value::UInt(cfg.seed)),
                ("cells", Value::UInt(rows.len() as u64)),
            ]),
        ),
        (
            "cells",
            Value::Array(rows.iter().map(|(c, o)| cell_value(c, o)).collect()),
        ),
    ]);
    std::fs::write(out, report.to_json()).expect("write report");
    println!("report written to {out}");
}

/// Validates `path` against the v1 schema; prints every violation and
/// exits 1 if any is found.
fn run_check(path: &str) {
    let mut errors = Vec::new();
    let report = match std::fs::read_to_string(path) {
        Ok(text) => match Value::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("FAIL {path}: unparsable JSON: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("FAIL {path}: unreadable: {e}");
            std::process::exit(1);
        }
    };

    if report.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        errors.push(format!("schema field is not {SCHEMA:?}"));
    }
    let cells = report.get("cells").and_then(Value::as_array).unwrap_or(&[]);
    if cells.len() < 8 {
        errors.push(format!("only {} cells, need >= 8", cells.len()));
    }
    let mut partitions = std::collections::BTreeSet::new();
    let (mut sampled_on, mut sampled_off, mut dp_on, mut dp_off) = (0, 0, 0, 0);
    for (i, cell) in cells.iter().enumerate() {
        let name = cell
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("<unnamed>")
            .to_string();
        match cell.get("partition").and_then(Value::as_str) {
            Some(p) => {
                partitions.insert(p.to_string());
            }
            None => errors.push(format!("cell {i} ({name}): partition missing")),
        }
        match cell.get("accuracy").and_then(Value::as_f64) {
            Some(a) if (0.0..=1.0).contains(&a) => {}
            Some(a) => errors.push(format!("cell {i} ({name}): accuracy {a} outside [0, 1]")),
            None => errors.push(format!("cell {i} ({name}): accuracy missing")),
        }
        match cell.get("sample_fraction").and_then(Value::as_f64) {
            Some(f) if f >= 1.0 => sampled_off += 1,
            Some(f) if f > 0.0 => sampled_on += 1,
            _ => errors.push(format!("cell {i} ({name}): bad sample_fraction")),
        }
        let dp = matches!(cell.get("dp"), Some(Value::Bool(true)));
        if dp {
            dp_on += 1;
            match cell.get("epsilon").and_then(Value::as_f64) {
                Some(eps) if eps > 0.0 && eps.is_finite() => {}
                other => errors.push(format!(
                    "cell {i} ({name}): DP on but epsilon {other:?} is not finite-positive"
                )),
            }
            match cell.get("delta").and_then(Value::as_f64) {
                Some(d) if d > 0.0 && d < 1.0 => {}
                other => errors.push(format!(
                    "cell {i} ({name}): DP on but delta {other:?} outside (0, 1)"
                )),
            }
        } else {
            dp_off += 1;
        }
    }
    for p in ["balanced", "dirichlet"] {
        if !partitions.contains(p) {
            errors.push(format!("no {p:?} partition cell in the grid"));
        }
    }
    for (what, n) in [
        ("sampling-on", sampled_on),
        ("sampling-off", sampled_off),
        ("dp-on", dp_on),
        ("dp-off", dp_off),
    ] {
        if n == 0 {
            errors.push(format!("no {what} cell in the grid"));
        }
    }

    if errors.is_empty() {
        println!("OK {path}: valid {SCHEMA} ({} cells)", cells.len());
    } else {
        for e in &errors {
            eprintln!("FAIL {path}: {e}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_scenarios.json");
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().expect("--out requires a path").clone(),
            "--check" => check = Some(it.next().expect("--check requires a path").clone()),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: scenario_matrix --smoke [--out PATH] | --check PATH");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = check {
        run_check(&path);
        return;
    }
    if !smoke {
        eprintln!("usage: scenario_matrix --smoke [--out PATH] | --check PATH");
        std::process::exit(2);
    }
    run_smoke(&out);
}
