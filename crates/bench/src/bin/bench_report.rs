//! Machine-readable bench telemetry: runs a real federated smoke
//! workload with observability on and writes a schema-stable
//! `BENCH_report.json` summarizing kernel time, round time, wire
//! traffic, and arena efficiency.
//!
//! Modes:
//!
//! * `bench_report --smoke [--out PATH]` — exercise the tensor kernels
//!   directly, then run the paper's 8-site federated LSTM pipeline at
//!   fast-demo scale, and write the report (default `BENCH_report.json`)
//!   built from the before/after metrics-snapshot delta.
//! * `bench_report --check PATH [--min-reduction R]` — validate an
//!   existing report against the `clinfl-bench-report/v1` schema; exits
//!   non-zero (listing every violation) if the file is missing,
//!   unparsable, or incomplete. `--min-reduction R` additionally requires
//!   the report's `wire.reduction` (raw bytes / encoded bytes) to be at
//!   least `R`.
//!
//! The smoke workload honors `CLINFL_WIRE_CODEC` / `CLINFL_WIRE_QUANT` /
//! `CLINFL_WIRE_TOPK` (same grammar as the `clinfl` CLI flags) so CI can
//! benchmark compressed weight exchange, and `CLINFL_FAULTS` (`mild`,
//! `aggressive`) to run the workload under link faults with the
//! fault-tolerant runtime settings from the chaos suite.
//!
//! CI runs both back to back (`scripts/check.sh bench-smoke` and
//! `scripts/check.sh wire-codec`) and uploads the JSON as build
//! artifacts.

use clinfl::{drivers, ModelSpec, PipelineConfig};
use clinfl_flare::faults::FaultConfig;
use clinfl_obs::json::Value;
use clinfl_obs::{HistogramSnapshot, MetricsSnapshot};
use std::time::Duration;

/// Schema identifier stamped into (and required from) every report.
const SCHEMA: &str = "clinfl-bench-report/v1";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_report.json");
    let mut check: Option<String> = None;
    let mut min_reduction: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().expect("--out requires a path").clone(),
            "--check" => check = Some(it.next().expect("--check requires a path").clone()),
            "--min-reduction" => {
                min_reduction = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--min-reduction requires a number"),
                );
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: bench_report --smoke [--out PATH] | --check PATH [--min-reduction R]"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = check {
        run_check(&path, min_reduction);
        return;
    }
    if !smoke {
        eprintln!("usage: bench_report --smoke [--out PATH] | --check PATH [--min-reduction R]");
        std::process::exit(2);
    }
    run_smoke(&out);
}

/// Applies the `CLINFL_WIRE_*` / `CLINFL_FAULTS` environment knobs to the
/// smoke config. Fault profiles also switch on the chaos suite's
/// fault-tolerant runtime settings (quorum of 3, grace period, redundant
/// submits) so aggressive link faults cannot wedge the round.
fn apply_env(cfg: &mut PipelineConfig) {
    if let Ok(codec) = std::env::var("CLINFL_WIRE_CODEC") {
        cfg.runtime.wire_codec = codec;
    }
    cfg.runtime.wire_quant = std::env::var("CLINFL_WIRE_QUANT").ok();
    cfg.runtime.wire_topk = std::env::var("CLINFL_WIRE_TOPK")
        .ok()
        .map(|v| v.parse().expect("CLINFL_WIRE_TOPK must be a number"));
    if let Err(e) = cfg.runtime.wire_spec() {
        eprintln!("invalid wire codec configuration: {e}");
        std::process::exit(2);
    }
    let faults = FaultConfig::from_env(cfg.seed.wrapping_add(7));
    if faults.is_active() {
        cfg.runtime.faults = faults;
        cfg.runtime.min_clients = 3;
        cfg.runtime.round_timeout = Duration::from_secs(120);
        cfg.runtime.quorum_grace = Some(Duration::from_secs(8));
        cfg.runtime.retry.message_timeout = Duration::from_secs(60);
        cfg.runtime.retry.submit_copies = 2;
    }
}

/// Touches every instrumented tensor kernel once so the report's kernel
/// section is populated even for workloads that skip some ops.
fn kernel_smoke() {
    use clinfl_tensor::kernels;
    let m = 8;
    let a = vec![0.5f32; m * m];
    let b = vec![0.25f32; m * m];
    let mut c = vec![0.0f32; m * m];
    kernels::matmul_acc(&a, &b, &mut c, m, m, m);
    kernels::softmax_rows(&mut c, m);
}

fn run_smoke(out: &str) {
    clinfl_obs::set_enabled(true);
    let before = clinfl_obs::snapshot();
    kernel_smoke();
    let mut cfg = PipelineConfig::fast_demo();
    apply_env(&mut cfg);
    let codec = cfg.runtime.wire_spec().expect("validated in apply_env");
    let outcome =
        drivers::train_federated(&cfg, ModelSpec::Lstm).expect("federated smoke run failed");
    let after = clinfl_obs::snapshot();
    let delta = snapshot_delta(&before, &after);

    let report = build_report(&cfg, outcome.accuracy, &delta);
    std::fs::write(out, report.to_json()).expect("write report");
    println!(
        "== bench_report: federated LSTM smoke ({} sites, {} rounds, codec {codec}) ==",
        cfg.n_clients, cfg.rounds
    );
    println!("accuracy: {:.3}", outcome.accuracy);
    let (raw, enc) = (
        delta.counter("flare.wire.bytes_tx_raw") + delta.counter("flare.wire.bytes_rx_raw"),
        delta.counter("flare.wire.bytes_tx_encoded") + delta.counter("flare.wire.bytes_rx_encoded"),
    );
    if enc > 0 {
        println!(
            "wire: {raw} raw-equivalent bytes -> {enc} on the wire ({:.1}x reduction)",
            raw as f64 / enc as f64
        );
    }
    println!("{}", delta.render_table());
    println!("report written to {out}");
}

/// Per-metric difference `after - before`, so a report reflects only the
/// measured workload even when the process recorded earlier activity.
fn snapshot_delta(before: &MetricsSnapshot, after: &MetricsSnapshot) -> MetricsSnapshot {
    let mut delta = MetricsSnapshot::default();
    for (k, &v) in &after.counters {
        let prev = before.counters.get(k).copied().unwrap_or(0);
        delta.counters.insert(k.clone(), v.saturating_sub(prev));
    }
    // Gauges are level readings (peaks), not rates: report the latest.
    delta.gauges = after.gauges.clone();
    for (k, h) in &after.histograms {
        let prev = before.histograms.get(k);
        let mut buckets = Vec::new();
        for &(i, n) in &h.buckets {
            let p = prev
                .and_then(|p| p.buckets.iter().find(|&&(pi, _)| pi == i))
                .map_or(0, |&(_, pn)| pn);
            if n > p {
                buckets.push((i, n - p));
            }
        }
        delta.histograms.insert(
            k.clone(),
            HistogramSnapshot {
                count: h.count.saturating_sub(prev.map_or(0, |p| p.count)),
                sum: h.sum.saturating_sub(prev.map_or(0, |p| p.sum)),
                min: h.min,
                max: h.max,
                buckets,
            },
        );
    }
    delta
}

fn build_report(cfg: &PipelineConfig, accuracy: f64, m: &MetricsSnapshot) -> Value {
    // Kernel table: every `<name>.calls` counter under the tensor/model
    // namespaces pairs with its `<name>.time_ns` twin.
    let mut kernels = Vec::new();
    for (key, &calls) in &m.counters {
        let Some(name) = key.strip_suffix(".calls") else {
            continue;
        };
        if !(name.starts_with("tensor.") || name.starts_with("model.")) {
            continue;
        }
        let time_ns = m.counter(&format!("{name}.time_ns"));
        let mut entry = vec![
            ("calls", Value::UInt(calls)),
            ("total_ms", Value::Float(time_ns as f64 / 1e6)),
            (
                "mean_ns",
                Value::Float(time_ns as f64 / calls.max(1) as f64),
            ),
        ];
        // GEMM kernels also record a `.flops` counter, from which a
        // machine-legible throughput estimate follows.
        let flops = m.counter(&format!("{name}.flops"));
        if flops > 0 && time_ns > 0 {
            entry.push(("gflops", Value::Float(flops as f64 / time_ns as f64)));
        }
        kernels.push((name.to_string(), Value::object(entry)));
    }

    let round = m
        .histograms
        .get("flare.round.time_ns")
        .cloned()
        .unwrap_or_default();
    let round_count = m.counter("flare.round.count");
    let (hits, misses) = (
        m.counter("tensor.arena.hits"),
        m.counter("tensor.arena.misses"),
    );
    let hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    let bytes_tx = m.counter("flare.client.bytes_tx") + m.counter("flare.server.bytes_tx");
    let bytes_rx = m.counter("flare.client.bytes_rx") + m.counter("flare.server.bytes_rx");

    // Codec accounting: raw-equivalent vs on-the-wire byte totals for the
    // weight-bearing frames (see `clinfl_flare::codec`). For an all-raw
    // run both totals are equal and the reduction reports 1.0.
    let codec = cfg
        .runtime
        .wire_spec()
        .map(|s| s.to_string())
        .unwrap_or_else(|_| "raw".to_string());
    let wire_tx_raw = m.counter("flare.wire.bytes_tx_raw");
    let wire_tx_enc = m.counter("flare.wire.bytes_tx_encoded");
    let wire_rx_raw = m.counter("flare.wire.bytes_rx_raw");
    let wire_rx_enc = m.counter("flare.wire.bytes_rx_encoded");
    let reduction = if wire_tx_enc + wire_rx_enc == 0 {
        1.0
    } else {
        (wire_tx_raw + wire_rx_raw) as f64 / (wire_tx_enc + wire_rx_enc) as f64
    };

    Value::object(vec![
        ("schema", Value::Str(SCHEMA.to_string())),
        (
            "run",
            Value::object(vec![
                ("workload", Value::Str("federated-lstm-smoke".to_string())),
                ("n_clients", Value::UInt(cfg.n_clients as u64)),
                ("rounds", Value::UInt(cfg.rounds as u64)),
                ("seed", Value::UInt(cfg.seed)),
                ("accuracy", Value::Float(accuracy)),
            ]),
        ),
        ("kernels", Value::Object(kernels)),
        (
            "round",
            Value::object(vec![
                ("count", Value::UInt(round_count)),
                ("total_ms", Value::Float(round.sum as f64 / 1e6)),
                ("mean_ms", Value::Float(round.mean() / 1e6)),
            ]),
        ),
        (
            "wire",
            Value::object(vec![
                ("bytes_tx", Value::UInt(bytes_tx)),
                ("bytes_rx", Value::UInt(bytes_rx)),
                ("codec", Value::Str(codec)),
                ("bytes_tx_raw", Value::UInt(wire_tx_raw)),
                ("bytes_tx_encoded", Value::UInt(wire_tx_enc)),
                ("bytes_rx_raw", Value::UInt(wire_rx_raw)),
                ("bytes_rx_encoded", Value::UInt(wire_rx_enc)),
                ("reduction", Value::Float(reduction)),
            ]),
        ),
        (
            "arena",
            Value::object(vec![
                ("hits", Value::UInt(hits)),
                ("misses", Value::UInt(misses)),
                ("hit_rate", Value::Float(hit_rate)),
            ]),
        ),
        ("metrics", m.to_value()),
    ])
}

/// Validates `path` against the v1 schema; prints every violation and
/// exits 1 if any is found. With `min_reduction`, also requires
/// `wire.reduction >= R` (compressed runs must actually compress).
fn run_check(path: &str, min_reduction: Option<f64>) {
    let mut errors = Vec::new();
    let report = match std::fs::read_to_string(path) {
        Ok(text) => match Value::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("FAIL {path}: unparsable JSON: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("FAIL {path}: unreadable: {e}");
            std::process::exit(1);
        }
    };

    if report.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        errors.push(format!("schema field is not {SCHEMA:?}"));
    }
    let kernel_calls = report
        .get("kernels")
        .and_then(|k| k.get("tensor.matmul"))
        .and_then(|k| k.get("calls"))
        .and_then(Value::as_u64);
    if kernel_calls.is_none_or(|c| c == 0) {
        errors.push("kernels[\"tensor.matmul\"].calls missing or zero".to_string());
    }
    for field in ["total_ms", "mean_ns", "gflops"] {
        if report
            .get("kernels")
            .and_then(|k| k.get("tensor.matmul"))
            .and_then(|k| k.get(field))
            .and_then(Value::as_f64)
            .is_none()
        {
            errors.push(format!("kernels[\"tensor.matmul\"].{field} missing"));
        }
    }
    let rounds = report
        .get("round")
        .and_then(|r| r.get("count"))
        .and_then(Value::as_u64);
    if rounds.is_none_or(|c| c < 1) {
        errors.push("round.count missing or zero".to_string());
    }
    for field in ["bytes_tx", "bytes_rx"] {
        let v = report
            .get("wire")
            .and_then(|w| w.get(field))
            .and_then(Value::as_u64);
        if v.is_none_or(|b| b == 0) {
            errors.push(format!("wire.{field} missing or zero"));
        }
    }
    if report
        .get("arena")
        .and_then(|a| a.get("hit_rate"))
        .and_then(Value::as_f64)
        .is_none()
    {
        errors.push("arena.hit_rate missing".to_string());
    }
    if report
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .is_none()
    {
        errors.push("embedded metrics snapshot missing".to_string());
    }
    if let Some(min) = min_reduction {
        match report
            .get("wire")
            .and_then(|w| w.get("reduction"))
            .and_then(Value::as_f64)
        {
            Some(r) if r >= min => {}
            Some(r) => errors.push(format!("wire.reduction {r:.2} below required {min}")),
            None => errors.push("wire.reduction missing".to_string()),
        }
    }

    if errors.is_empty() {
        println!("OK {path}: valid {SCHEMA}");
    } else {
        for e in &errors {
            eprintln!("FAIL {path}: {e}");
        }
        std::process::exit(1);
    }
}
