//! Machine-readable bench telemetry: runs a real federated smoke
//! workload with observability on and writes a schema-stable
//! `BENCH_report.json` summarizing kernel time, round time, wire
//! traffic, and arena efficiency.
//!
//! Modes:
//!
//! * `bench_report --smoke [--out PATH]` — exercise the tensor kernels
//!   directly, then run the paper's 8-site federated LSTM pipeline at
//!   fast-demo scale, and write the report (default `BENCH_report.json`)
//!   built from the before/after metrics-snapshot delta.
//! * `bench_report --check PATH` — validate an existing report against
//!   the `clinfl-bench-report/v1` schema; exits non-zero (listing every
//!   violation) if the file is missing, unparsable, or incomplete.
//!
//! CI runs both back to back (`scripts/check.sh bench-smoke`) and
//! uploads the JSON as a build artifact.

use clinfl::{drivers, ModelSpec, PipelineConfig};
use clinfl_obs::json::Value;
use clinfl_obs::{HistogramSnapshot, MetricsSnapshot};

/// Schema identifier stamped into (and required from) every report.
const SCHEMA: &str = "clinfl-bench-report/v1";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_report.json");
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().expect("--out requires a path").clone(),
            "--check" => check = Some(it.next().expect("--check requires a path").clone()),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: bench_report --smoke [--out PATH] | --check PATH");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = check {
        run_check(&path);
        return;
    }
    if !smoke {
        eprintln!("usage: bench_report --smoke [--out PATH] | --check PATH");
        std::process::exit(2);
    }
    run_smoke(&out);
}

/// Touches every instrumented tensor kernel once so the report's kernel
/// section is populated even for workloads that skip some ops.
fn kernel_smoke() {
    use clinfl_tensor::kernels;
    let m = 8;
    let a = vec![0.5f32; m * m];
    let b = vec![0.25f32; m * m];
    let mut c = vec![0.0f32; m * m];
    kernels::matmul_acc(&a, &b, &mut c, m, m, m);
    kernels::softmax_rows(&mut c, m);
}

fn run_smoke(out: &str) {
    clinfl_obs::set_enabled(true);
    let before = clinfl_obs::snapshot();
    kernel_smoke();
    let cfg = PipelineConfig::fast_demo();
    let outcome =
        drivers::train_federated(&cfg, ModelSpec::Lstm).expect("federated smoke run failed");
    let after = clinfl_obs::snapshot();
    let delta = snapshot_delta(&before, &after);

    let report = build_report(&cfg, outcome.accuracy, &delta);
    std::fs::write(out, report.to_json()).expect("write report");
    println!(
        "== bench_report: federated LSTM smoke ({} sites, {} rounds) ==",
        cfg.n_clients, cfg.rounds
    );
    println!("accuracy: {:.3}", outcome.accuracy);
    println!("{}", delta.render_table());
    println!("report written to {out}");
}

/// Per-metric difference `after - before`, so a report reflects only the
/// measured workload even when the process recorded earlier activity.
fn snapshot_delta(before: &MetricsSnapshot, after: &MetricsSnapshot) -> MetricsSnapshot {
    let mut delta = MetricsSnapshot::default();
    for (k, &v) in &after.counters {
        let prev = before.counters.get(k).copied().unwrap_or(0);
        delta.counters.insert(k.clone(), v.saturating_sub(prev));
    }
    // Gauges are level readings (peaks), not rates: report the latest.
    delta.gauges = after.gauges.clone();
    for (k, h) in &after.histograms {
        let prev = before.histograms.get(k);
        let mut buckets = Vec::new();
        for &(i, n) in &h.buckets {
            let p = prev
                .and_then(|p| p.buckets.iter().find(|&&(pi, _)| pi == i))
                .map_or(0, |&(_, pn)| pn);
            if n > p {
                buckets.push((i, n - p));
            }
        }
        delta.histograms.insert(
            k.clone(),
            HistogramSnapshot {
                count: h.count.saturating_sub(prev.map_or(0, |p| p.count)),
                sum: h.sum.saturating_sub(prev.map_or(0, |p| p.sum)),
                min: h.min,
                max: h.max,
                buckets,
            },
        );
    }
    delta
}

fn build_report(cfg: &PipelineConfig, accuracy: f64, m: &MetricsSnapshot) -> Value {
    // Kernel table: every `<name>.calls` counter under the tensor/model
    // namespaces pairs with its `<name>.time_ns` twin.
    let mut kernels = Vec::new();
    for (key, &calls) in &m.counters {
        let Some(name) = key.strip_suffix(".calls") else {
            continue;
        };
        if !(name.starts_with("tensor.") || name.starts_with("model.")) {
            continue;
        }
        let time_ns = m.counter(&format!("{name}.time_ns"));
        kernels.push((
            name.to_string(),
            Value::object(vec![
                ("calls", Value::UInt(calls)),
                ("total_ms", Value::Float(time_ns as f64 / 1e6)),
            ]),
        ));
    }

    let round = m
        .histograms
        .get("flare.round.time_ns")
        .cloned()
        .unwrap_or_default();
    let round_count = m.counter("flare.round.count");
    let (hits, misses) = (
        m.counter("tensor.arena.hits"),
        m.counter("tensor.arena.misses"),
    );
    let hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    let bytes_tx = m.counter("flare.client.bytes_tx") + m.counter("flare.server.bytes_tx");
    let bytes_rx = m.counter("flare.client.bytes_rx") + m.counter("flare.server.bytes_rx");

    Value::object(vec![
        ("schema", Value::Str(SCHEMA.to_string())),
        (
            "run",
            Value::object(vec![
                ("workload", Value::Str("federated-lstm-smoke".to_string())),
                ("n_clients", Value::UInt(cfg.n_clients as u64)),
                ("rounds", Value::UInt(cfg.rounds as u64)),
                ("seed", Value::UInt(cfg.seed)),
                ("accuracy", Value::Float(accuracy)),
            ]),
        ),
        ("kernels", Value::Object(kernels)),
        (
            "round",
            Value::object(vec![
                ("count", Value::UInt(round_count)),
                ("total_ms", Value::Float(round.sum as f64 / 1e6)),
                ("mean_ms", Value::Float(round.mean() / 1e6)),
            ]),
        ),
        (
            "wire",
            Value::object(vec![
                ("bytes_tx", Value::UInt(bytes_tx)),
                ("bytes_rx", Value::UInt(bytes_rx)),
            ]),
        ),
        (
            "arena",
            Value::object(vec![
                ("hits", Value::UInt(hits)),
                ("misses", Value::UInt(misses)),
                ("hit_rate", Value::Float(hit_rate)),
            ]),
        ),
        ("metrics", m.to_value()),
    ])
}

/// Validates `path` against the v1 schema; prints every violation and
/// exits 1 if any is found.
fn run_check(path: &str) {
    let mut errors = Vec::new();
    let report = match std::fs::read_to_string(path) {
        Ok(text) => match Value::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("FAIL {path}: unparsable JSON: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("FAIL {path}: unreadable: {e}");
            std::process::exit(1);
        }
    };

    if report.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        errors.push(format!("schema field is not {SCHEMA:?}"));
    }
    let kernel_calls = report
        .get("kernels")
        .and_then(|k| k.get("tensor.matmul"))
        .and_then(|k| k.get("calls"))
        .and_then(Value::as_u64);
    if kernel_calls.is_none_or(|c| c == 0) {
        errors.push("kernels[\"tensor.matmul\"].calls missing or zero".to_string());
    }
    if report
        .get("kernels")
        .and_then(|k| k.get("tensor.matmul"))
        .and_then(|k| k.get("total_ms"))
        .and_then(Value::as_f64)
        .is_none()
    {
        errors.push("kernels[\"tensor.matmul\"].total_ms missing".to_string());
    }
    let rounds = report
        .get("round")
        .and_then(|r| r.get("count"))
        .and_then(Value::as_u64);
    if rounds.is_none_or(|c| c < 1) {
        errors.push("round.count missing or zero".to_string());
    }
    for field in ["bytes_tx", "bytes_rx"] {
        let v = report
            .get("wire")
            .and_then(|w| w.get(field))
            .and_then(Value::as_u64);
        if v.is_none_or(|b| b == 0) {
            errors.push(format!("wire.{field} missing or zero"));
        }
    }
    if report
        .get("arena")
        .and_then(|a| a.get("hit_rate"))
        .and_then(Value::as_f64)
        .is_none()
    {
        errors.push("arena.hit_rate missing".to_string());
    }
    if report
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .is_none()
    {
        errors.push("embedded metrics snapshot missing".to_string());
    }

    if errors.is_empty() {
        println!("OK {path}: valid {SCHEMA}");
    } else {
        for e in &errors {
            eprintln!("FAIL {path}: {e}");
        }
        std::process::exit(1);
    }
}
