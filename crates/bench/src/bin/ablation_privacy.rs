//! Ablation (extension): NVFlare-style privacy filters on the federated
//! LSTM task — differential-privacy noise sweep and secure-aggregation
//! masking, measuring the accuracy cost of each privacy mechanism.

use clinfl::{drivers, ClinicalExecutor, Learner, ModelSpec, PipelineConfig, TrainHyper};
use clinfl_flare::aggregator::{Aggregator, MaskedSum, WeightedFedAvg};
use clinfl_flare::controller::SagConfig;
use clinfl_flare::filters::{DpGaussian, FilterChain, SecureAggMask};
use clinfl_flare::simulator::{SimulatorConfig, SimulatorRunner};
use clinfl_flare::EventLog;
use std::time::Duration;

enum Privacy {
    None,
    Dp { sigma: f32 },
    SecureAgg,
}

fn run(cfg: &PipelineConfig, privacy: &Privacy) -> f64 {
    let data = drivers::build_task_data(cfg);
    let shards = cfg
        .imbalanced_partitioner()
        .partition(&data.train, cfg.seed);
    let hyper = TrainHyper::for_model(ModelSpec::Lstm);
    let vocab = data.code_system.vocab().len();
    let initial =
        Learner::new(ModelSpec::Lstm, vocab, cfg.seq_len, hyper, cfg.seed).export_weights();
    let log = EventLog::new();
    let runner = SimulatorRunner::with_log(
        SimulatorConfig {
            n_clients: cfg.n_clients,
            sag: SagConfig {
                rounds: cfg.rounds,
                min_clients: cfg.n_clients,
                round_timeout: Duration::from_secs(3600),
                validate_global: false,
                ..SagConfig::default()
            },
            seed: cfg.seed,
            ..SimulatorConfig::default()
        },
        log.clone(),
    );
    let aggregator: Box<dyn Aggregator> = match privacy {
        Privacy::SecureAgg => Box::new(MaskedSum),
        _ => Box::new(WeightedFedAvg),
    };
    let n_sites = cfg.n_clients;
    let valid = data.valid.clone();
    let result = runner
        .run(
            initial,
            |i, _| {
                Box::new(ClinicalExecutor::new(
                    Learner::new(ModelSpec::Lstm, vocab, cfg.seq_len, hyper, cfg.seed),
                    shards[i].clone(),
                    valid.clone(),
                    cfg.local_epochs,
                    log.clone(),
                ))
            },
            aggregator.as_ref(),
            |i| {
                let mut chain = FilterChain::new();
                match privacy {
                    Privacy::None => {}
                    Privacy::Dp { sigma } => {
                        chain.push(Box::new(DpGaussian {
                            clip_norm: 10.0,
                            sigma: *sigma,
                            seed: cfg.seed ^ i as u64,
                        }));
                    }
                    Privacy::SecureAgg => {
                        chain.push(Box::new(SecureAggMask {
                            site_index: i,
                            n_sites,
                            session_seed: cfg.seed,
                        }));
                    }
                }
                chain
            },
        )
        .expect("simulation runs");
    let mut eval = Learner::new(ModelSpec::Lstm, vocab, cfg.seq_len, hyper, cfg.seed);
    eval.load_weights(&result.workflow.final_weights);
    eval.evaluate(&data.valid)
}

fn main() {
    let args = clinfl_bench::parse_args(12);
    let cfg = args.config();
    println!(
        "ABLATION — privacy mechanisms (LSTM, {} patients, {} rounds)\n",
        cfg.cohort.n_patients, cfg.rounds
    );
    let baseline = run(&cfg, &Privacy::None);
    println!("no filter (plain FedAvg):      {:.1}%", 100.0 * baseline);
    for sigma in [0.0001f32, 0.001, 0.01] {
        let acc = run(&cfg, &Privacy::Dp { sigma });
        println!(
            "DP-Gaussian sigma={sigma:<7}:      {:.1}%  ({:+.1})",
            100.0 * acc,
            100.0 * (acc - baseline)
        );
    }
    let sec = run(&cfg, &Privacy::SecureAgg);
    println!(
        "secure aggregation (masked):   {:.1}%  ({:+.1}; masks cancel, so only f32 rounding differs)",
        100.0 * sec,
        100.0 * (sec - baseline)
    );
}
