//! Scaling-curve bench for the event-driven server and aggregation tree:
//! runs the in-process federation at 8 → 64 → 256 → 1024 simulated sites
//! (fan-out 8, auto-sized tree depth) and writes a schema-stable
//! `BENCH_scaling.json` with per-scale root round latency, byte totals at
//! the root vs the interior nodes vs the leaves, and peak session counts.
//!
//! Modes:
//!
//! * `bench_scaling --run [--out PATH]` — run every scale with a trivial
//!   arithmetic executor (no training, no sleeping — the curve isolates
//!   runtime overhead) and write the report (default `BENCH_scaling.json`).
//! * `bench_scaling --check PATH [--max-ratio R]` — validate an existing
//!   report against the `clinfl-bench-scaling/v1` schema and enforce the
//!   scaling gate: root round latency at the largest scale must stay
//!   within `R`× (default 4) of the 64-site latency.
//!
//! "Root round latency" is the root server's measured per-round frame
//! processing time (`flare.server.frame_work_ns` / rounds): the work
//! attributable to the root itself. With tree aggregation that is
//! `O(fanout)` per round instead of `O(n)` — a flat 1024-site fleet
//! funnels every submission through the root and blows the gate, a tree
//! root handles only its children. End-to-end round wall time
//! (`round_mean_ms`, also recorded) is *not* gated: every leaf still
//! trains and serializes each round, so on a fixed-core box total round
//! time grows with n under any topology — the tree flattens the root's
//! share of it, which is exactly what the gate pins.
//!
//! Knobs (recorded in the report, and in the CI cache-key comment):
//! `CLINFL_SCALE_SITES` (comma-separated site counts, default
//! `8,64,256,1024`), `CLINFL_SCALE_ROUNDS` (default 3),
//! `CLINFL_SCALE_FANOUT` (default 8).

use clinfl_flare::aggregator::WeightedFedAvg;
use clinfl_flare::controller::SagConfig;
use clinfl_flare::executor::ArithmeticExecutor;
use clinfl_flare::simulator::{SimulatorConfig, SimulatorRunner, TreeConfig};
use clinfl_flare::{WeightTensor, Weights};
use clinfl_obs::json::Value;
use clinfl_obs::MetricsSnapshot;
use std::time::{Duration, Instant};

/// Schema identifier stamped into (and required from) every report.
const SCHEMA: &str = "clinfl-bench-scaling/v1";

/// Floor for the gate's denominator: sub-millisecond root work is
/// dominated by scheduler noise, not aggregation cost. A flat 1024-site
/// root still burns tens of ms/round on frame handling, so the floor
/// keeps the gate meaningful while absorbing timer jitter.
const LATENCY_FLOOR_MS: f64 = 2.0;

/// Default gate: largest-scale round latency within 4× the 64-site one.
const DEFAULT_MAX_RATIO: f64 = 4.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut run = false;
    let mut out = String::from("BENCH_scaling.json");
    let mut check: Option<String> = None;
    let mut max_ratio = DEFAULT_MAX_RATIO;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--run" => run = true,
            "--out" => out = it.next().expect("--out requires a path").clone(),
            "--check" => check = Some(it.next().expect("--check requires a path").clone()),
            "--max-ratio" => {
                max_ratio = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-ratio requires a number");
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: bench_scaling --run [--out PATH] | --check PATH [--max-ratio R]");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = check {
        run_check(&path, max_ratio);
        return;
    }
    if !run {
        eprintln!("usage: bench_scaling --run [--out PATH] | --check PATH [--max-ratio R]");
        std::process::exit(2);
    }
    run_curve(&out);
}

/// Site counts to sweep, from `CLINFL_SCALE_SITES` or the paper-to-fleet
/// default curve.
fn scales_from_env() -> Vec<usize> {
    match std::env::var("CLINFL_SCALE_SITES") {
        Ok(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .expect("CLINFL_SCALE_SITES must be comma-separated site counts")
            })
            .collect(),
        Err(_) => vec![8, 64, 256, 1024],
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{key} must be an integer"))
        })
        .unwrap_or(default)
}

/// A small but non-degenerate model so byte counts are meaningful:
/// four 256-float tensors (4 KiB of payload per exchange).
fn initial_weights() -> Weights {
    let mut w = Weights::new();
    for name in ["embed", "lstm.ih", "lstm.hh", "head"] {
        w.insert(
            name.to_string(),
            WeightTensor::new(vec![256], vec![0.01; 256]),
        );
    }
    w
}

struct ScaleOutcome {
    sites: usize,
    depth: u32,
    fanout: usize,
    rounds: u32,
    wall: Duration,
    delta: MetricsSnapshot,
}

/// Runs one scale point and returns the metrics delta for just that run.
/// Peak-session gauges are high-water marks, so they are re-zeroed before
/// each run to keep the per-scale readings honest.
fn run_scale(sites: usize, rounds: u32, fanout: usize) -> ScaleOutcome {
    for g in ["flare.server.sessions_peak", "flare.tree.sessions_peak"] {
        clinfl_obs::gauge(g).set(0);
    }
    let tree = TreeConfig::auto(sites, fanout);
    let config = SimulatorConfig {
        n_clients: sites,
        sag: SagConfig {
            rounds,
            min_clients: 1,
            round_timeout: Duration::from_secs(300),
            validate_global: false,
            ..SagConfig::default()
        },
        seed: 2023,
        tree: (tree.depth >= 2).then_some(tree),
        ..SimulatorConfig::default()
    };
    let runner = SimulatorRunner::new(config);
    let before = clinfl_obs::snapshot();
    let started = Instant::now();
    let result = runner
        .run_simple(
            initial_weights(),
            |i, _| {
                Box::new(ArithmeticExecutor {
                    delta: 1e-4 * (i % 7 + 1) as f32,
                    n_examples: 50 + (i as u64 % 13),
                })
            },
            &WeightedFedAvg,
        )
        .unwrap_or_else(|e| panic!("{sites}-site run failed: {e}"));
    let wall = started.elapsed();
    let after = clinfl_obs::snapshot();
    assert_eq!(
        result.workflow.rounds.len(),
        rounds as usize,
        "{sites}-site run completed {} of {rounds} rounds",
        result.workflow.rounds.len()
    );
    ScaleOutcome {
        sites,
        depth: tree.depth.max(1),
        fanout,
        rounds,
        wall,
        delta: snapshot_delta(&before, &after),
    }
}

fn run_curve(out: &str) {
    clinfl_obs::set_enabled(true);
    let scales = scales_from_env();
    let rounds = env_usize("CLINFL_SCALE_ROUNDS", 3) as u32;
    let fanout = env_usize("CLINFL_SCALE_FANOUT", 8);
    println!("== bench_scaling: {scales:?} sites, {rounds} rounds, fan-out {fanout} ==");

    let mut outcomes = Vec::new();
    for &sites in &scales {
        let o = run_scale(sites, rounds, fanout);
        println!(
            "{:>5} sites (depth {}): {:>8.1} ms/round end-to-end, \
             root work {:>6.2} ms/round, root {:>6} B/round, wall {:.2}s",
            o.sites,
            o.depth,
            round_mean_ms(&o.delta),
            root_work_ms(&o),
            root_bytes_per_round(&o),
            o.wall.as_secs_f64(),
        );
        outcomes.push(o);
    }

    let report = build_report(&outcomes);
    std::fs::write(out, report.to_json()).expect("write report");
    println!("report written to {out}");
}

fn round_mean_ms(m: &MetricsSnapshot) -> f64 {
    m.histograms
        .get("flare.round.time_ns")
        .map_or(0.0, |h| h.mean() / 1e6)
}

/// Root-attributable processing per round: the root reactor's frame
/// handling time (decrypt, decode, route, submit bookkeeping) divided by
/// the round count. Registration-time frames amortize into this too,
/// which only makes the gate stricter for a root with wide fan-in.
fn root_work_ms(o: &ScaleOutcome) -> f64 {
    o.delta.counter("flare.server.frame_work_ns") as f64 / 1e6 / f64::from(o.rounds.max(1))
}

fn root_bytes_per_round(o: &ScaleOutcome) -> u64 {
    let total = o.delta.counter("flare.server.bytes_tx") + o.delta.counter("flare.server.bytes_rx");
    total / u64::from(o.rounds.max(1))
}

fn build_report(outcomes: &[ScaleOutcome]) -> Value {
    let scales: Vec<Value> = outcomes.iter().map(scale_record).collect();
    // The gate compares the largest scale against the 64-site anchor (or
    // the smallest available scale when the sweep was overridden).
    let anchor = outcomes
        .iter()
        .find(|o| o.sites == 64)
        .or_else(|| outcomes.first())
        .map_or(0.0, root_work_ms);
    let top = outcomes.last().map_or(0.0, root_work_ms);
    let ratio = top / anchor.max(LATENCY_FLOOR_MS);
    Value::object(vec![
        ("schema", Value::Str(SCHEMA.to_string())),
        (
            "run",
            Value::object(vec![
                ("workload", Value::Str("scaling-curve".to_string())),
                (
                    "rounds",
                    Value::UInt(outcomes.first().map_or(0, |o| u64::from(o.rounds))),
                ),
                (
                    "fanout",
                    Value::UInt(outcomes.first().map_or(0, |o| o.fanout as u64)),
                ),
            ]),
        ),
        ("scales", Value::Array(scales)),
        (
            "gate",
            Value::object(vec![
                ("metric", Value::Str("root_round_work_ms".to_string())),
                ("anchor_sites", Value::UInt(64)),
                ("anchor_root_work_ms", Value::Float(anchor)),
                (
                    "top_sites",
                    Value::UInt(outcomes.last().map_or(0, |o| o.sites as u64)),
                ),
                ("top_root_work_ms", Value::Float(top)),
                ("latency_floor_ms", Value::Float(LATENCY_FLOOR_MS)),
                ("ratio", Value::Float(ratio)),
            ]),
        ),
    ])
}

fn scale_record(o: &ScaleOutcome) -> Value {
    let m = &o.delta;
    let round = m
        .histograms
        .get("flare.round.time_ns")
        .cloned()
        .unwrap_or_default();
    let pair = |ns: &str| {
        Value::object(vec![
            (
                "bytes_tx",
                Value::UInt(m.counter(&format!("{ns}.bytes_tx"))),
            ),
            (
                "bytes_rx",
                Value::UInt(m.counter(&format!("{ns}.bytes_rx"))),
            ),
        ])
    };
    Value::object(vec![
        ("sites", Value::UInt(o.sites as u64)),
        ("tree_depth", Value::UInt(u64::from(o.depth))),
        ("fanout", Value::UInt(o.fanout as u64)),
        ("rounds", Value::UInt(u64::from(o.rounds))),
        ("root_round_work_ms", Value::Float(root_work_ms(o))),
        ("round_mean_ms", Value::Float(round.mean() / 1e6)),
        ("round_max_ms", Value::Float(round.max as f64 / 1e6)),
        ("wall_ms", Value::Float(o.wall.as_secs_f64() * 1e3)),
        ("root", pair("flare.server")),
        ("interior", pair("flare.tree")),
        ("interior_uplink", pair("flare.tree.uplink")),
        ("leaves", pair("flare.client")),
        (
            "sessions",
            Value::object(vec![
                (
                    "root_peak",
                    Value::Int(
                        m.gauges
                            .get("flare.server.sessions_peak")
                            .copied()
                            .unwrap_or(0),
                    ),
                ),
                (
                    "interior_peak",
                    Value::Int(
                        m.gauges
                            .get("flare.tree.sessions_peak")
                            .copied()
                            .unwrap_or(0),
                    ),
                ),
            ]),
        ),
    ])
}

/// Per-counter difference `after - before`; gauges are level readings
/// (peaks re-zeroed per scale in `run_scale`), so the latest value wins.
fn snapshot_delta(before: &MetricsSnapshot, after: &MetricsSnapshot) -> MetricsSnapshot {
    let mut delta = MetricsSnapshot::default();
    for (k, &v) in &after.counters {
        let prev = before.counters.get(k).copied().unwrap_or(0);
        delta.counters.insert(k.clone(), v.saturating_sub(prev));
    }
    delta.gauges = after.gauges.clone();
    for (k, h) in &after.histograms {
        let prev = before.histograms.get(k);
        let mut snap = h.clone();
        snap.count = h.count.saturating_sub(prev.map_or(0, |p| p.count));
        snap.sum = h.sum.saturating_sub(prev.map_or(0, |p| p.sum));
        snap.buckets = h
            .buckets
            .iter()
            .filter_map(|&(i, n)| {
                let p = prev
                    .and_then(|p| p.buckets.iter().find(|&&(pi, _)| pi == i))
                    .map_or(0, |&(_, pn)| pn);
                (n > p).then_some((i, n - p))
            })
            .collect();
        delta.histograms.insert(k.clone(), snap);
    }
    delta
}

/// Validates `path` against the v1 schema and enforces the latency gate;
/// prints every violation and exits 1 if any is found.
fn run_check(path: &str, max_ratio: f64) {
    let mut errors = Vec::new();
    let report = match std::fs::read_to_string(path) {
        Ok(text) => match Value::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("FAIL {path}: unparsable JSON: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("FAIL {path}: unreadable: {e}");
            std::process::exit(1);
        }
    };

    if report.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        errors.push(format!("schema field is not {SCHEMA:?}"));
    }
    let scales = report
        .get("scales")
        .and_then(Value::as_array)
        .unwrap_or(&[]);
    if scales.is_empty() {
        errors.push("scales array missing or empty".to_string());
    }
    let mut prev_sites = 0u64;
    for (i, s) in scales.iter().enumerate() {
        let sites = s.get("sites").and_then(Value::as_u64).unwrap_or(0);
        if sites <= prev_sites {
            errors.push(format!("scales[{i}].sites not strictly increasing"));
        }
        prev_sites = sites;
        for field in ["root_round_work_ms", "round_mean_ms", "wall_ms"] {
            if s.get(field).and_then(Value::as_f64).is_none() {
                errors.push(format!("scales[{i}].{field} missing"));
            }
        }
        if s.get("tree_depth")
            .and_then(Value::as_u64)
            .is_none_or(|d| d == 0)
        {
            errors.push(format!("scales[{i}].tree_depth missing or zero"));
        }
        for section in ["root", "leaves"] {
            let bytes = s
                .get(section)
                .and_then(|b| b.get("bytes_tx"))
                .and_then(Value::as_u64);
            if bytes.is_none_or(|b| b == 0) {
                errors.push(format!("scales[{i}].{section}.bytes_tx missing or zero"));
            }
        }
        if s.get("sessions")
            .and_then(|v| v.get("root_peak"))
            .and_then(Value::as_i64)
            .is_none_or(|p| p < 1)
        {
            errors.push(format!("scales[{i}].sessions.root_peak missing or < 1"));
        }
        // Deep trees must actually shrink the root's fan-in: with an
        // aggregation tree the root sees its children, not every site.
        let depth = s.get("tree_depth").and_then(Value::as_u64).unwrap_or(1);
        let root_peak = s
            .get("sessions")
            .and_then(|v| v.get("root_peak"))
            .and_then(Value::as_i64)
            .unwrap_or(0);
        if depth >= 2 && root_peak as u64 >= sites && sites > 1 {
            errors.push(format!(
                "scales[{i}]: tree depth {depth} but root held {root_peak} sessions \
                 for {sites} sites (tree not engaged?)"
            ));
        }
    }
    match (
        report
            .get("gate")
            .and_then(|g| g.get("ratio"))
            .and_then(Value::as_f64),
        report
            .get("gate")
            .and_then(|g| g.get("top_root_work_ms"))
            .and_then(Value::as_f64),
    ) {
        (Some(ratio), Some(top)) => {
            if ratio > max_ratio {
                errors.push(format!(
                    "root round latency grew super-logarithmically: root work at \
                     the top scale is {top:.2} ms/round, {ratio:.2}x the 64-site \
                     anchor (allowed {max_ratio}x)"
                ));
            }
        }
        _ => errors.push("gate.ratio / gate.top_root_work_ms missing".to_string()),
    }

    if errors.is_empty() {
        println!("OK {path}: valid {SCHEMA}, scaling gate within {max_ratio}x");
    } else {
        for e in &errors {
            eprintln!("FAIL {path}: {e}");
        }
        std::process::exit(1);
    }
}
