//! Criterion benchmarks of the federated runtime itself: weight-payload
//! codec throughput, secure-channel sealing, aggregation latency, and a
//! full simulator round — the costs NVFlare adds on top of local training.

use clinfl_flare::aggregator::{Aggregator, CoordinateMedian, WeightedFedAvg};
use clinfl_flare::controller::SagConfig;
use clinfl_flare::executor::ArithmeticExecutor;
use clinfl_flare::security::{DhKeyPair, SecureChannel};
use clinfl_flare::simulator::{SimulatorConfig, SimulatorRunner};
use clinfl_flare::wire::{WireDecode, WireEncode};
use clinfl_flare::{Dxo, WeightTensor, Weights};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

/// A BERT-sized weight set (≈ 0.5M parameters, as measured by
/// `table2_models`).
fn bert_sized_weights() -> Weights {
    let mut w = Weights::new();
    w.insert(
        "embeddings".into(),
        WeightTensor::new(vec![443, 128], vec![0.1; 443 * 128]),
    );
    for l in 0..12 {
        w.insert(
            format!("layer{l}.attn"),
            WeightTensor::new(vec![128, 132], vec![0.01; 128 * 132]),
        );
        w.insert(
            format!("layer{l}.ffn"),
            WeightTensor::new(vec![128, 256], vec![0.01; 128 * 256]),
        );
    }
    w
}

fn bench_codec(c: &mut Criterion) {
    let weights = bert_sized_weights();
    let frame = weights.to_frame();
    let mut group = c.benchmark_group("wire_codec");
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("encode_bert_weights", |b| {
        b.iter(|| black_box(weights.to_frame()))
    });
    group.bench_function("decode_bert_weights", |b| {
        b.iter(|| black_box(Weights::from_frame(&frame).unwrap()))
    });
    group.finish();
}

fn bench_secure_channel(c: &mut Criterion) {
    let key = DhKeyPair::from_secret(1).shared_key(DhKeyPair::from_secret(2).public);
    let frame = bert_sized_weights().to_frame();
    let mut group = c.benchmark_group("secure_channel");
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("seal_bert_frame", |b| {
        let mut tx = SecureChannel::new(key, 0);
        b.iter(|| black_box(tx.seal(&frame)))
    });
    group.bench_function("open_bert_frame", |b| {
        let mut tx = SecureChannel::new(key, 0);
        let sealed = tx.seal(&frame);
        let rx = SecureChannel::new(key, 0);
        b.iter(|| black_box(rx.open(&sealed).unwrap()))
    });
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let reference = bert_sized_weights();
    let updates: Vec<(String, Dxo)> = (0..8)
        .map(|i| {
            (
                format!("site-{}", i + 1),
                Dxo::from_weights(reference.clone(), 100 * (i as u64 + 1)),
            )
        })
        .collect();
    let mut group = c.benchmark_group("aggregate_8_bert_updates");
    group.sample_size(20);
    group.bench_function("weighted_fedavg", |b| {
        b.iter(|| black_box(WeightedFedAvg.aggregate(&updates, &reference).unwrap()))
    });
    group.bench_function("coordinate_median", |b| {
        b.iter(|| black_box(CoordinateMedian.aggregate(&updates, &reference).unwrap()))
    });
    group.finish();
}

fn bench_full_round(c: &mut Criterion) {
    // A complete simulator run (provision + handshake + 1 round + shutdown)
    // with trivial executors: measures pure runtime overhead per round.
    let mut group = c.benchmark_group("simulator_overhead");
    group.sample_size(10);
    group.bench_function("8_clients_1_round_arith", |b| {
        b.iter(|| {
            let runner = SimulatorRunner::new(SimulatorConfig {
                n_clients: 8,
                sag: SagConfig {
                    rounds: 1,
                    min_clients: 8,
                    round_timeout: Duration::from_secs(10),
                    validate_global: false,
                    ..SagConfig::default()
                },
                seed: 1,
                ..SimulatorConfig::default()
            });
            let mut initial = Weights::new();
            initial.insert("w".into(), WeightTensor::new(vec![256], vec![0.0; 256]));
            let res = runner
                .run_simple(
                    initial,
                    |_, _| {
                        Box::new(ArithmeticExecutor {
                            delta: 1.0,
                            n_examples: 1,
                        })
                    },
                    &WeightedFedAvg,
                )
                .unwrap();
            black_box(res.workflow.final_weights);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_secure_channel,
    bench_aggregation,
    bench_full_round
);
criterion_main!(benches);
