//! Criterion benchmark of the **sec/local-epoch** figure (the paper's
//! Fig. 3 reports 12.7 s/local epoch for BERT on an RTX 2080 Ti): one local
//! training epoch per model on a site-sized shard.

use clinfl::{drivers, Learner, ModelSpec, PipelineConfig, TrainHyper};
use clinfl_data::ClassifyDataset;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn shard(cfg: &PipelineConfig, n: usize) -> ClassifyDataset {
    let data = drivers::build_task_data(cfg);
    ClassifyDataset::from_examples(
        data.train.examples().iter().take(n).cloned().collect(),
        data.train.seq_len(),
    )
}

fn bench_local_epoch(c: &mut Criterion) {
    let mut cfg = PipelineConfig::fast_demo();
    cfg.cohort.n_patients = 256;
    let site_shard = shard(&cfg, 128); // a mid-sized site's data
    let vocab = clinfl_data::CodeSystem::new().vocab().len();

    let mut group = c.benchmark_group("local_epoch_128_examples");
    group.sample_size(10);
    for model in [ModelSpec::Lstm, ModelSpec::BertMini, ModelSpec::Bert] {
        group.bench_function(model.as_str(), |b| {
            b.iter_batched(
                || Learner::new(model, vocab, cfg.seq_len, TrainHyper::for_model(model), 1),
                |mut learner| black_box(learner.train_epoch(&site_shard)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_evaluate(c: &mut Criterion) {
    let mut cfg = PipelineConfig::fast_demo();
    cfg.cohort.n_patients = 256;
    let valid = shard(&cfg, 128);
    let vocab = clinfl_data::CodeSystem::new().vocab().len();
    let mut group = c.benchmark_group("evaluate_128_examples");
    group.sample_size(10);
    for model in [ModelSpec::Lstm, ModelSpec::BertMini] {
        let learner = Learner::new(model, vocab, cfg.seq_len, TrainHyper::for_model(model), 1);
        group.bench_function(model.as_str(), |b| {
            b.iter(|| black_box(learner.evaluate(&valid)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_local_epoch, bench_evaluate);
criterion_main!(benches);
