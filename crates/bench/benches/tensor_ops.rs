//! Criterion micro-benchmarks for the autograd substrate: the kernels that
//! dominate LSTM/BERT training cost.

use clinfl_tensor::{kernels, Graph, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &(m, k, n, label) in &[
        (512usize, 128usize, 128usize, "bert_proj_512x128x128"),
        (32, 128, 512, "lstm_gates_32x128x512"),
        (576, 128, 256, "bert_ffn_576x128x256"),
    ] {
        let a = Tensor::randn(&[m, k], 1.0, 1);
        let b = Tensor::randn(&[k, n], 1.0, 2);
        group.throughput(Throughput::Elements((2 * m * k * n) as u64));
        group.bench_function(BenchmarkId::from_parameter(label), |bench| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_row_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_kernels");
    let rows = 1152usize; // 32 sequences x 36 positions
    let width = 128usize;
    let src: Vec<f32> = Tensor::randn(&[rows * width], 1.0, 3).into_data();
    group.throughput(Throughput::Elements((rows * width) as u64));
    group.bench_function("softmax", |b| {
        b.iter(|| {
            let mut d = src.clone();
            kernels::softmax_rows(&mut d, width);
            black_box(d);
        })
    });
    group.bench_function("layer_norm", |b| {
        b.iter(|| {
            let mut d = src.clone();
            black_box(kernels::layer_norm_rows(&mut d, width, 1e-5));
        })
    });
    group.bench_function("gelu", |b| {
        b.iter(|| {
            let d: Vec<f32> = src.iter().map(|&v| kernels::gelu(v)).collect();
            black_box(d);
        })
    });
    group.finish();
}

fn bench_graph_overhead(c: &mut Criterion) {
    // Forward+backward through a small MLP: measures tape bookkeeping cost
    // relative to raw kernels.
    c.bench_function("graph_mlp_fwd_bwd_64x64", |b| {
        let x = Tensor::randn(&[64, 64], 1.0, 4);
        let w1 = Tensor::randn(&[64, 64], 0.1, 5);
        let w2 = Tensor::randn(&[64, 64], 0.1, 6);
        b.iter(|| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let w1v = g.input(w1.clone());
            let w2v = g.input(w2.clone());
            let h = g.matmul(xv, w1v);
            let h = g.relu(h);
            let y = g.matmul(h, w2v);
            let sq = g.mul(y, y);
            let loss = g.mean(sq);
            g.backward(loss);
            black_box(g.grad(w1v).map(|t| t.data()[0]));
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_row_kernels, bench_graph_overhead
);
criterion_main!(benches);
