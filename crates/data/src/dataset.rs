//! Tokenized classification datasets and mini-batching.

use crate::cohort::Cohort;
use clinfl_text::{ClinicalTokenizer, Encoded};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One tokenized, labelled example.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Example {
    /// Tokenized event sequence.
    pub encoded: Encoded,
    /// Class label (0 = no ADR, 1 = treatment failure).
    pub label: u8,
}

/// A mini-batch in the flat layout the models consume.
#[derive(Clone, Debug, PartialEq)]
pub struct Batch {
    /// Token ids, `batch_size * seq_len`, row-major.
    pub ids: Vec<u32>,
    /// Attention mask aligned with `ids` (1 = real token).
    pub mask: Vec<u8>,
    /// One label per sequence.
    pub labels: Vec<i32>,
    /// Number of sequences in this batch.
    pub batch_size: usize,
    /// Sequence length.
    pub seq_len: usize,
}

/// A tokenized binary-classification dataset (the ADR fine-tuning task).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassifyDataset {
    examples: Vec<Example>,
    seq_len: usize,
}

impl ClassifyDataset {
    /// Tokenizes a cohort.
    pub fn from_cohort(cohort: &Cohort, tokenizer: &ClinicalTokenizer) -> Self {
        let examples = cohort
            .patients
            .iter()
            .map(|p| Example {
                encoded: tokenizer.encode(&p.events),
                label: p.adr as u8,
            })
            .collect();
        ClassifyDataset {
            examples,
            seq_len: tokenizer.max_len(),
        }
    }

    /// Builds a dataset directly from examples (used by partitioners).
    ///
    /// # Panics
    ///
    /// Panics if examples disagree on sequence length.
    pub fn from_examples(examples: Vec<Example>, seq_len: usize) -> Self {
        assert!(
            examples.iter().all(|e| e.encoded.ids.len() == seq_len),
            "examples must share seq_len {seq_len}"
        );
        ClassifyDataset { examples, seq_len }
    }

    /// The examples.
    pub fn examples(&self) -> &[Example] {
        &self.examples
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// True if there are no examples.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Tokenized sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        if self.examples.is_empty() {
            return 0.0;
        }
        self.examples.iter().filter(|e| e.label == 1).count() as f64 / self.examples.len() as f64
    }

    /// Splits into `(train, valid)` with `train_frac` of examples in train,
    /// after a deterministic shuffle.
    ///
    /// With the paper's cohort size (8,638) and `train_frac = 0.802`, this
    /// yields the paper's 6,927 / 1,732 split (8,638 × 0.802 ≈ 6,927,
    /// remainder 1,711≈1,732 — see EXPERIMENTS.md for the exact counts).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < train_frac < 1.0`.
    pub fn split(&self, train_frac: f64, seed: u64) -> (ClassifyDataset, ClassifyDataset) {
        assert!(
            train_frac > 0.0 && train_frac < 1.0,
            "train_frac must be in (0,1), got {train_frac}"
        );
        let mut idx: Vec<usize> = (0..self.examples.len()).collect();
        shuffle(&mut idx, seed);
        let n_train = ((self.examples.len() as f64) * train_frac).round() as usize;
        let (a, b) = idx.split_at(n_train.min(self.examples.len()));
        let take = |ids: &[usize]| {
            ClassifyDataset::from_examples(
                ids.iter().map(|&i| self.examples[i].clone()).collect(),
                self.seq_len,
            )
        };
        (take(a), take(b))
    }

    /// Iterates over shuffled mini-batches (last partial batch included).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn batches(&self, batch_size: usize, seed: u64) -> BatchIter<'_> {
        assert!(batch_size > 0, "batch_size must be positive");
        let mut order: Vec<usize> = (0..self.examples.len()).collect();
        shuffle(&mut order, seed);
        BatchIter {
            dataset: self,
            order,
            batch_size,
            cursor: 0,
        }
    }

    /// Concatenates datasets (e.g. to reassemble a centralized dataset from
    /// site shards).
    ///
    /// # Panics
    ///
    /// Panics if sequence lengths differ.
    pub fn concat(parts: &[ClassifyDataset]) -> ClassifyDataset {
        let seq_len = parts.first().map(|d| d.seq_len).unwrap_or(0);
        let examples = parts
            .iter()
            .inspect(|d| assert_eq!(d.seq_len, seq_len, "seq_len mismatch in concat"))
            .flat_map(|d| d.examples.iter().cloned())
            .collect();
        ClassifyDataset { examples, seq_len }
    }
}

/// Fisher–Yates shuffle deterministic in `seed`.
fn shuffle(idx: &mut [usize], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..idx.len()).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
}

/// Iterator over mini-batches of a [`ClassifyDataset`].
#[derive(Debug)]
pub struct BatchIter<'a> {
    dataset: &'a ClassifyDataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl Iterator for BatchIter<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let slice = &self.order[self.cursor..end];
        self.cursor = end;
        let s = self.dataset.seq_len;
        let mut ids = Vec::with_capacity(slice.len() * s);
        let mut mask = Vec::with_capacity(slice.len() * s);
        let mut labels = Vec::with_capacity(slice.len());
        for &i in slice {
            let ex = &self.dataset.examples[i];
            ids.extend_from_slice(&ex.encoded.ids);
            mask.extend_from_slice(&ex.encoded.attention_mask);
            labels.push(ex.label as i32);
        }
        Some(Batch {
            ids,
            mask,
            labels,
            batch_size: slice.len(),
            seq_len: s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::CodeSystem;
    use crate::cohort::{generate_cohort, CohortSpec};

    fn dataset(n: usize) -> ClassifyDataset {
        let cs = CodeSystem::new();
        let cohort = generate_cohort(&cs, &CohortSpec::small(n, 3));
        let tok = ClinicalTokenizer::new(cs.vocab().clone(), 32);
        ClassifyDataset::from_cohort(&cohort, &tok)
    }

    #[test]
    fn from_cohort_tokenizes_all() {
        let d = dataset(100);
        assert_eq!(d.len(), 100);
        assert_eq!(d.seq_len(), 32);
        assert!(d.examples().iter().all(|e| e.encoded.ids.len() == 32));
    }

    #[test]
    fn split_partitions_exactly() {
        let d = dataset(100);
        let (tr, va) = d.split(0.8, 1);
        assert_eq!(tr.len(), 80);
        assert_eq!(va.len(), 20);
        assert_eq!(tr.len() + va.len(), d.len());
    }

    #[test]
    fn split_deterministic_and_disjoint() {
        let d = dataset(50);
        let (a1, b1) = d.split(0.5, 9);
        let (a2, _) = d.split(0.5, 9);
        assert_eq!(a1, a2);
        // Disjointness via multiset size: concatenation is a permutation of
        // the original examples.
        let joined = ClassifyDataset::concat(&[a1.clone(), b1.clone()]);
        assert_eq!(joined.len(), d.len());
    }

    #[test]
    fn batches_cover_every_example_once() {
        let d = dataset(53);
        let mut seen = 0usize;
        for b in d.batches(16, 4) {
            assert!(b.batch_size <= 16);
            assert_eq!(b.ids.len(), b.batch_size * 32);
            assert_eq!(b.labels.len(), b.batch_size);
            seen += b.batch_size;
        }
        assert_eq!(seen, 53);
    }

    #[test]
    fn batches_shuffled_by_seed() {
        let d = dataset(64);
        let first: Vec<i32> = d.batches(64, 1).next().unwrap().labels;
        let second: Vec<i32> = d.batches(64, 2).next().unwrap().labels;
        assert_ne!(first, second, "different seeds should shuffle differently");
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn zero_batch_panics() {
        dataset(4).batches(0, 0);
    }

    #[test]
    #[should_panic(expected = "train_frac")]
    fn bad_split_panics() {
        dataset(4).split(1.5, 0);
    }
}
