//! Synthetic free-text clinical notes paired with the coded cohort.
//!
//! The paper motivates its framework with "clinical notes and other
//! text-based health information"; its dataset is coded events, but this
//! module renders each synthetic patient's record as a short narrative so
//! the word-level pipeline ([`clinfl_text::NoteTokenizer`]) has realistic
//! input. The narrative carries the same outcome signal as the code
//! sequence (drug order is verbalized), so either representation can train
//! the same classifiers.

use crate::codes::CodeSystem;
use crate::cohort::Patient;

/// Renders one patient's event sequence as a narrative note.
///
/// Deterministic in the patient: the note is a sentence-per-event
/// transcription with a templated header, so tests (and tokenizers) see
/// stable text.
pub fn render_note(patient: &Patient) -> String {
    let mut out = String::with_capacity(patient.events.len() * 24 + 64);
    out.push_str(&format!(
        "patient {} presented for antiplatelet management.",
        patient.id
    ));
    for event in &patient.events {
        out.push(' ');
        out.push_str(&describe_event(event));
    }
    out
}

fn describe_event(code: &str) -> String {
    match code {
        CodeSystem::CLOPIDOGREL => "started clopidogrel 75mg daily.".to_string(),
        CodeSystem::CLOPIDOGREL_HIGH => "clopidogrel dose escalated to 150mg.".to_string(),
        CodeSystem::INTERACTING => "omeprazole 20mg added for gastric protection.".to_string(),
        CodeSystem::RISK_DM2 => "history of type 2 diabetes noted.".to_string(),
        CodeSystem::RISK_CKD => "chronic kidney disease stage 3 on record.".to_string(),
        CodeSystem::INDEX_ACS => "admitted with acute coronary syndrome.".to_string(),
        other => {
            // Cluster codes render as generic diagnosis / prescription
            // sentences carrying the code for traceability.
            if let Some(code) = other.strip_prefix("DX:") {
                format!("documented diagnosis {code}.")
            } else if let Some(code) = other.strip_prefix("RX:") {
                format!("prescribed {code}.")
            } else {
                format!("noted {other}.")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::{generate_cohort, CohortSpec};
    use clinfl_text::{tokenize_words, NoteTokenizer, WordVocabBuilder};

    #[test]
    fn note_is_deterministic_and_mentions_key_events() {
        let cs = CodeSystem::new();
        let cohort = generate_cohort(&cs, &CohortSpec::small(50, 9));
        let p = &cohort.patients[0];
        let a = render_note(p);
        let b = render_note(p);
        assert_eq!(a, b);
        assert!(a.contains("clopidogrel 75mg"), "{a}");
        assert!(a.contains("acute coronary syndrome"));
    }

    #[test]
    fn note_order_matches_event_order() {
        let cs = CodeSystem::new();
        let cohort = generate_cohort(&cs, &CohortSpec::small(300, 10));
        // Find a patient with the interacting drug after initiation and
        // verify the narrative preserves that order.
        let p = cohort
            .patients
            .iter()
            .find(|p| {
                let clop = p.events.iter().position(|e| e == CodeSystem::CLOPIDOGREL);
                let omep = p.events.iter().position(|e| e == CodeSystem::INTERACTING);
                matches!((clop, omep), (Some(c), Some(o)) if o > c)
            })
            .expect("such a patient exists in 300");
        let note = render_note(p);
        let clop_at = note.find("started clopidogrel").unwrap();
        let omep_at = note.find("omeprazole 20mg added").unwrap();
        assert!(omep_at > clop_at);
    }

    #[test]
    fn notes_feed_word_pipeline() {
        let cs = CodeSystem::new();
        let cohort = generate_cohort(&cs, &CohortSpec::small(40, 11));
        let mut builder = WordVocabBuilder::new(2);
        for p in &cohort.patients {
            builder.feed(&render_note(p));
        }
        let vocab = builder.build();
        assert!(vocab.id("clopidogrel").is_some());
        let tok = NoteTokenizer::new(vocab, 48);
        let e = tok.encode(&render_note(&cohort.patients[0]));
        assert_eq!(e.ids.len(), 48);
        assert!(e.real_len() > 10);
    }

    #[test]
    fn every_event_renders_a_sentence() {
        let cs = CodeSystem::new();
        let cohort = generate_cohort(&cs, &CohortSpec::small(5, 12));
        for p in &cohort.patients {
            let note = render_note(p);
            let sentences = note.matches('.').count();
            assert!(
                sentences >= p.events.len(),
                "{} sentences for {} events",
                sentences,
                p.events.len()
            );
            assert!(!tokenize_words(&note).is_empty());
        }
    }
}
