//! Synthetic free-text clinical notes paired with the coded cohort.
//!
//! The paper motivates its framework with "clinical notes and other
//! text-based health information"; its dataset is coded events, but this
//! module renders each synthetic patient's record as a short narrative so
//! the word-level pipeline ([`clinfl_text::NoteTokenizer`]) has realistic
//! input. The narrative carries the same outcome signal as the code
//! sequence (drug order is verbalized), so either representation can train
//! the same classifiers.

use crate::codes::CodeSystem;
use crate::cohort::Patient;

/// Renders one patient's event sequence as a narrative note.
///
/// Deterministic in the patient: the note is a sentence-per-event
/// transcription with a templated header, so tests (and tokenizers) see
/// stable text.
pub fn render_note(patient: &Patient) -> String {
    render_note_for_site(patient, 0, 0.0)
}

/// Renders one patient's note with **site-specific vocabulary drift**:
/// federated silos document the same clinical events with different house
/// styles, and `drift` in `[0, 1]` controls how much of this site's
/// phrasing diverges from the canonical [`render_note`] templates.
///
/// The choice of which event templates a site rewrites is a deterministic
/// function of `(site, event code)` — each site has a stable dialect, the
/// same across every patient and every call — so `drift = 0.0` is
/// bit-identical to [`render_note`] and two sites with the same index
/// produce the same text.
pub fn render_note_for_site(patient: &Patient, site: usize, drift: f64) -> String {
    assert!((0.0..=1.0).contains(&drift), "drift must be in [0,1]");
    let mut out = String::with_capacity(patient.events.len() * 24 + 64);
    if site_uses_dialect(site, "HEADER", drift) {
        out.push_str(&format!(
            "patient {} reviewed in the anticoagulation clinic.",
            patient.id
        ));
    } else {
        out.push_str(&format!(
            "patient {} presented for antiplatelet management.",
            patient.id
        ));
    }
    for event in &patient.events {
        out.push(' ');
        if site_uses_dialect(site, event, drift) {
            out.push_str(&describe_event_dialect(event));
        } else {
            out.push_str(&describe_event(event));
        }
    }
    out
}

/// True when `site`'s dialect rewrites the template for `key`: an
/// FNV-style hash of `(site, key)` mapped into `[0, 1)` and compared to
/// `drift`, so the rewritten subset grows monotonically with `drift`.
fn site_uses_dialect(site: usize, key: &str, drift: f64) -> bool {
    if drift <= 0.0 {
        return false;
    }
    let mut h: u64 = 0xcbf29ce484222325 ^ (site as u64).wrapping_mul(0x100000001b3);
    for b in key.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    ((h >> 11) as f64 / (1u64 << 53) as f64) < drift
}

/// Alternate house-style phrasings (the drifted vocabulary).
fn describe_event_dialect(code: &str) -> String {
    match code {
        CodeSystem::CLOPIDOGREL => "commenced on clopidogrel 75mg od.".to_string(),
        CodeSystem::CLOPIDOGREL_HIGH => "clopidogrel uptitrated to 150mg od.".to_string(),
        CodeSystem::INTERACTING => "ppi cover with omeprazole 20mg commenced.".to_string(),
        CodeSystem::RISK_DM2 => "known t2dm on background.".to_string(),
        CodeSystem::RISK_CKD => "ckd stage 3 documented at baseline.".to_string(),
        CodeSystem::INDEX_ACS => "index presentation with acs.".to_string(),
        other => {
            if let Some(code) = other.strip_prefix("DX:") {
                format!("dx code {code} recorded.")
            } else if let Some(code) = other.strip_prefix("RX:") {
                format!("rx {code} issued.")
            } else {
                format!("finding {other} charted.")
            }
        }
    }
}

fn describe_event(code: &str) -> String {
    match code {
        CodeSystem::CLOPIDOGREL => "started clopidogrel 75mg daily.".to_string(),
        CodeSystem::CLOPIDOGREL_HIGH => "clopidogrel dose escalated to 150mg.".to_string(),
        CodeSystem::INTERACTING => "omeprazole 20mg added for gastric protection.".to_string(),
        CodeSystem::RISK_DM2 => "history of type 2 diabetes noted.".to_string(),
        CodeSystem::RISK_CKD => "chronic kidney disease stage 3 on record.".to_string(),
        CodeSystem::INDEX_ACS => "admitted with acute coronary syndrome.".to_string(),
        other => {
            // Cluster codes render as generic diagnosis / prescription
            // sentences carrying the code for traceability.
            if let Some(code) = other.strip_prefix("DX:") {
                format!("documented diagnosis {code}.")
            } else if let Some(code) = other.strip_prefix("RX:") {
                format!("prescribed {code}.")
            } else {
                format!("noted {other}.")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::{generate_cohort, CohortSpec};
    use clinfl_text::{tokenize_words, NoteTokenizer, WordVocabBuilder};

    #[test]
    fn note_is_deterministic_and_mentions_key_events() {
        let cs = CodeSystem::new();
        let cohort = generate_cohort(&cs, &CohortSpec::small(50, 9));
        let p = &cohort.patients[0];
        let a = render_note(p);
        let b = render_note(p);
        assert_eq!(a, b);
        assert!(a.contains("clopidogrel 75mg"), "{a}");
        assert!(a.contains("acute coronary syndrome"));
    }

    #[test]
    fn note_order_matches_event_order() {
        let cs = CodeSystem::new();
        let cohort = generate_cohort(&cs, &CohortSpec::small(300, 10));
        // Find a patient with the interacting drug after initiation and
        // verify the narrative preserves that order.
        let p = cohort
            .patients
            .iter()
            .find(|p| {
                let clop = p.events.iter().position(|e| e == CodeSystem::CLOPIDOGREL);
                let omep = p.events.iter().position(|e| e == CodeSystem::INTERACTING);
                matches!((clop, omep), (Some(c), Some(o)) if o > c)
            })
            .expect("such a patient exists in 300");
        let note = render_note(p);
        let clop_at = note.find("started clopidogrel").unwrap();
        let omep_at = note.find("omeprazole 20mg added").unwrap();
        assert!(omep_at > clop_at);
    }

    #[test]
    fn notes_feed_word_pipeline() {
        let cs = CodeSystem::new();
        let cohort = generate_cohort(&cs, &CohortSpec::small(40, 11));
        let mut builder = WordVocabBuilder::new(2);
        for p in &cohort.patients {
            builder.feed(&render_note(p));
        }
        let vocab = builder.build();
        assert!(vocab.id("clopidogrel").is_some());
        let tok = NoteTokenizer::new(vocab, 48);
        let e = tok.encode(&render_note(&cohort.patients[0]));
        assert_eq!(e.ids.len(), 48);
        assert!(e.real_len() > 10);
    }

    #[test]
    fn zero_drift_matches_canonical_note() {
        let cs = CodeSystem::new();
        let cohort = generate_cohort(&cs, &CohortSpec::small(20, 13));
        for p in &cohort.patients {
            for site in 0..4 {
                assert_eq!(render_note_for_site(p, site, 0.0), render_note(p));
            }
        }
    }

    #[test]
    fn drift_is_deterministic_and_site_specific() {
        let cs = CodeSystem::new();
        let cohort = generate_cohort(&cs, &CohortSpec::small(60, 14));
        let p = &cohort.patients[0];
        // Stable per (site, drift) …
        assert_eq!(
            render_note_for_site(p, 1, 0.6),
            render_note_for_site(p, 1, 0.6)
        );
        // … and at full drift every template is rewritten, so any two
        // patients' notes differ from the canonical rendering.
        let drifted = render_note_for_site(p, 3, 1.0);
        assert_ne!(drifted, render_note(p));
        assert!(drifted.contains("anticoagulation clinic"), "{drifted}");
        // Some pair of sites must disagree at intermediate drift (each
        // site has its own dialect subset).
        let texts: Vec<String> = (0..6).map(|s| render_note_for_site(p, s, 0.5)).collect();
        assert!(
            texts.iter().any(|t| t != &texts[0]),
            "expected site dialects to diverge at drift 0.5"
        );
    }

    #[test]
    fn drifted_notes_still_feed_word_pipeline() {
        let cs = CodeSystem::new();
        let cohort = generate_cohort(&cs, &CohortSpec::small(40, 15));
        let mut builder = WordVocabBuilder::new(2);
        for (i, p) in cohort.patients.iter().enumerate() {
            builder.feed(&render_note_for_site(p, i % 4, 0.8));
        }
        let vocab = builder.build();
        let tok = NoteTokenizer::new(vocab, 48);
        let e = tok.encode(&render_note_for_site(&cohort.patients[0], 0, 0.8));
        assert_eq!(e.ids.len(), 48);
        assert!(e.real_len() > 10);
    }

    #[test]
    fn every_event_renders_a_sentence() {
        let cs = CodeSystem::new();
        let cohort = generate_cohort(&cs, &CohortSpec::small(5, 12));
        for p in &cohort.patients {
            let note = render_note(p);
            let sentences = note.matches('.').count();
            assert!(
                sentences >= p.events.len(),
                "{} sentences for {} events",
                sentences,
                p.events.len()
            );
            assert!(!tokenize_words(&note).is_empty());
        }
    }
}
