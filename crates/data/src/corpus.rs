//! MLM pretraining corpus with learnable co-occurrence structure.

use crate::codes::CodeSystem;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Specification of the synthetic pretraining corpus.
///
/// The paper pretrains on 453,377 sequences (8,683 validation). Generating
/// and training on that many sequences is a wall-clock matter only, so the
/// default here is the paper count divided by [`PretrainSpec::scale`]; use
/// `scale = 1` to regenerate at full size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PretrainSpec {
    /// Divisor applied to the paper's sequence counts (default 16).
    pub scale: usize,
    /// Minimum events per sequence.
    pub min_events: usize,
    /// Maximum events per sequence.
    pub max_events: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for PretrainSpec {
    fn default() -> Self {
        PretrainSpec {
            scale: 16,
            min_events: 8,
            max_events: 22,
            seed: 4533,
        }
    }
}

impl PretrainSpec {
    /// Paper-scale training-sequence count divided by `scale`.
    pub fn n_train(&self) -> usize {
        453_377 / self.scale.max(1)
    }

    /// Paper-scale validation-sequence count divided by `scale`, floored
    /// at 32 so loss-curve measurements stay statistically usable at high
    /// scales.
    pub fn n_valid(&self) -> usize {
        (8_683 / self.scale.max(1)).max(32)
    }
}

/// A generated pretraining corpus (event-code sequences, no labels).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Corpus {
    /// Training sequences.
    pub train: Vec<Vec<String>>,
    /// Validation sequences.
    pub valid: Vec<Vec<String>>,
}

impl Corpus {
    /// Total number of sequences.
    pub fn len(&self) -> usize {
        self.train.len() + self.valid.len()
    }

    /// True if the corpus has no sequences.
    pub fn is_empty(&self) -> bool {
        self.train.is_empty() && self.valid.is_empty()
    }
}

/// Generates the pretraining corpus.
///
/// Each sequence is a chain of *visits*: a visit picks one condition
/// cluster, emits 1–2 diagnosis codes from it, then 1–3 of the cluster's
/// drug codes. Because drugs are strongly predictable from the cluster of
/// the surrounding diagnoses, the MLM objective has real signal — loss
/// falls from `ln |V|` toward the conditional entropy of this grammar,
/// reproducing the dynamics of the paper's Fig. 2.
///
/// A small fraction of noise events (uniform over the vocabulary's regular
/// codes) keeps the floor strictly positive.
pub fn generate_corpus(cs: &CodeSystem, spec: &PretrainSpec) -> Corpus {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let train = (0..spec.n_train())
        .map(|_| generate_sequence(cs, spec, &mut rng))
        .collect();
    let valid = (0..spec.n_valid())
        .map(|_| generate_sequence(cs, spec, &mut rng))
        .collect();
    Corpus { train, valid }
}

fn generate_sequence(cs: &CodeSystem, spec: &PretrainSpec, rng: &mut StdRng) -> Vec<String> {
    let target = rng.random_range(spec.min_events..=spec.max_events);
    let mut events = Vec::with_capacity(target + 4);
    while events.len() < target {
        let c = rng.random_range(0..cs.num_clusters());
        let n_dx = rng.random_range(1..=2usize);
        for _ in 0..n_dx {
            events.push(cs.dx_codes(c)[rng.random_range(0..cs.dx_codes(c).len())].clone());
        }
        let n_rx = rng.random_range(1..=3usize);
        for _ in 0..n_rx {
            if rng.random::<f64>() < 0.05 {
                // Noise event: any cluster's drug.
                let nc = rng.random_range(0..cs.num_clusters());
                events.push(cs.rx_codes(nc)[rng.random_range(0..cs.rx_codes(nc).len())].clone());
            } else {
                events.push(cs.rx_codes(c)[rng.random_range(0..cs.rx_codes(c).len())].clone());
            }
        }
    }
    events.truncate(target);
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PretrainSpec {
        PretrainSpec {
            scale: 1000,
            ..PretrainSpec::default()
        }
    }

    #[test]
    fn paper_counts_at_scale_one() {
        let s = PretrainSpec {
            scale: 1,
            ..PretrainSpec::default()
        };
        assert_eq!(s.n_train(), 453_377);
        assert_eq!(s.n_valid(), 8_683);
    }

    #[test]
    fn scaled_counts() {
        assert_eq!(spec().n_train(), 453);
        assert_eq!(spec().n_valid(), 32); // floored
    }

    #[test]
    fn deterministic() {
        let cs = CodeSystem::new();
        assert_eq!(generate_corpus(&cs, &spec()), generate_corpus(&cs, &spec()));
    }

    #[test]
    fn sequence_lengths_in_bounds() {
        let cs = CodeSystem::new();
        let corpus = generate_corpus(&cs, &spec());
        for s in corpus.train.iter().chain(&corpus.valid) {
            assert!(s.len() >= spec().min_events && s.len() <= spec().max_events);
        }
    }

    #[test]
    fn codes_exist_in_vocab() {
        let cs = CodeSystem::new();
        let corpus = generate_corpus(&cs, &spec());
        for s in corpus.train.iter().take(50) {
            for e in s {
                assert!(cs.vocab().id(e).is_some());
            }
        }
    }

    #[test]
    fn visits_are_cluster_coherent() {
        // Consecutive dx→rx pairs should share a cluster far more often
        // than chance.
        let cs = CodeSystem::new();
        let corpus = generate_corpus(&cs, &spec());
        let mut same = 0usize;
        let mut total = 0usize;
        for s in &corpus.train {
            for w in s.windows(2) {
                if let (Some(a), Some(b)) = (cluster_of(&w[0]), cluster_of(&w[1])) {
                    total += 1;
                    same += (a == b) as usize;
                }
            }
        }
        let rate = same as f64 / total as f64;
        assert!(rate > 0.5, "cluster coherence {rate}");
    }

    fn cluster_of(code: &str) -> Option<usize> {
        // Codes look like "DX:C07.03" / "RX:C07.03".
        code.get(4..6).and_then(|s| s.parse().ok())
    }
}
