//! Synthetic clinical code system (drug + diagnosis vocabulary).

use clinfl_text::Vocab;

/// Configuration of the synthetic code system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodeSystemSpec {
    /// Number of condition clusters (e.g. cardiac, GI, renal …).
    pub clusters: usize,
    /// Diagnosis codes per cluster.
    pub dx_per_cluster: usize,
    /// Drug codes per cluster.
    pub rx_per_cluster: usize,
}

impl Default for CodeSystemSpec {
    fn default() -> Self {
        CodeSystemSpec {
            clusters: 12,
            dx_per_cluster: 10,
            rx_per_cluster: 8,
        }
    }
}

/// The deterministic synthetic clinical vocabulary.
///
/// Codes come in two families mirroring real EHR coding: `DX:Cxx.Ryy`
/// (ICD-like diagnoses) and `RX:Cxx.Ryy` (ATC-like prescriptions), grouped
/// into condition *clusters* whose members co-occur within a visit — the
/// statistical structure the MLM objective learns. On top of the clusters
/// sit a handful of **named codes** that drive the ADR outcome model:
/// clopidogrel itself, the interacting CYP2C19-inhibitor, the
/// dose-escalation code, and the risk diagnoses.
///
/// Construction is fully deterministic, so every federated site builds an
/// identical vocabulary without any coordination — the same property real
/// deployments get from a shared terminology (ICD/ATC).
#[derive(Clone, Debug)]
pub struct CodeSystem {
    spec: CodeSystemSpec,
    vocab: Vocab,
    cluster_dx: Vec<Vec<String>>,
    cluster_rx: Vec<Vec<String>>,
}

impl CodeSystem {
    /// The index drug of the paper's cohort.
    pub const CLOPIDOGREL: &'static str = "RX:CLOPIDOGREL_75";
    /// Dose-escalated clopidogrel (a treatment-intensification signal).
    pub const CLOPIDOGREL_HIGH: &'static str = "RX:CLOPIDOGREL_150";
    /// Interacting co-prescription (CYP2C19 inhibitor).
    pub const INTERACTING: &'static str = "RX:OMEPRAZOLE_20";
    /// Risk diagnosis: type-2 diabetes.
    pub const RISK_DM2: &'static str = "DX:E11.9";
    /// Risk diagnosis: chronic kidney disease.
    pub const RISK_CKD: &'static str = "DX:N18.3";
    /// Index event: acute coronary syndrome (why clopidogrel is given).
    pub const INDEX_ACS: &'static str = "DX:I21.4";

    /// Builds the code system with the default spec.
    pub fn new() -> Self {
        Self::with_spec(CodeSystemSpec::default())
    }

    /// Builds the code system with a custom spec.
    ///
    /// # Panics
    ///
    /// Panics if any spec field is zero.
    pub fn with_spec(spec: CodeSystemSpec) -> Self {
        assert!(
            spec.clusters > 0 && spec.dx_per_cluster > 0 && spec.rx_per_cluster > 0,
            "CodeSystemSpec fields must be positive: {spec:?}"
        );
        let mut vocab = Vocab::new();
        for named in Self::named_codes() {
            vocab.add(named);
        }
        let mut cluster_dx = Vec::with_capacity(spec.clusters);
        let mut cluster_rx = Vec::with_capacity(spec.clusters);
        for c in 0..spec.clusters {
            let dx: Vec<String> = (0..spec.dx_per_cluster)
                .map(|i| format!("DX:C{c:02}.{i:02}"))
                .collect();
            let rx: Vec<String> = (0..spec.rx_per_cluster)
                .map(|i| format!("RX:C{c:02}.{i:02}"))
                .collect();
            for t in dx.iter().chain(rx.iter()) {
                vocab.add(t);
            }
            cluster_dx.push(dx);
            cluster_rx.push(rx);
        }
        CodeSystem {
            spec,
            vocab,
            cluster_dx,
            cluster_rx,
        }
    }

    /// The outcome-driving named codes, in a fixed order.
    pub fn named_codes() -> [&'static str; 6] {
        [
            Self::CLOPIDOGREL,
            Self::CLOPIDOGREL_HIGH,
            Self::INTERACTING,
            Self::RISK_DM2,
            Self::RISK_CKD,
            Self::INDEX_ACS,
        ]
    }

    /// The spec this system was built from.
    pub fn spec(&self) -> &CodeSystemSpec {
        &self.spec
    }

    /// The shared vocabulary (special tokens + named codes + clusters).
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Number of condition clusters.
    pub fn num_clusters(&self) -> usize {
        self.spec.clusters
    }

    /// Diagnosis codes of a cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn dx_codes(&self, cluster: usize) -> &[String] {
        &self.cluster_dx[cluster]
    }

    /// Drug codes of a cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn rx_codes(&self, cluster: usize) -> &[String] {
        &self.cluster_rx[cluster]
    }
}

impl Default for CodeSystem {
    fn default() -> Self {
        CodeSystem::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_construction() {
        let a = CodeSystem::new();
        let b = CodeSystem::new();
        assert_eq!(a.vocab(), b.vocab());
    }

    #[test]
    fn vocab_contains_named_and_cluster_codes() {
        let cs = CodeSystem::new();
        assert!(cs.vocab().id(CodeSystem::CLOPIDOGREL).is_some());
        assert!(cs.vocab().id(CodeSystem::INTERACTING).is_some());
        assert!(cs.vocab().id("DX:C00.00").is_some());
        assert!(cs.vocab().id("RX:C11.07").is_some());
    }

    #[test]
    fn vocab_size_matches_spec() {
        let spec = CodeSystemSpec {
            clusters: 3,
            dx_per_cluster: 2,
            rx_per_cluster: 2,
        };
        let cs = CodeSystem::with_spec(spec);
        // 5 specials + 6 named + 3 * (2 + 2)
        assert_eq!(cs.vocab().len(), 5 + 6 + 12);
    }

    #[test]
    fn cluster_accessors() {
        let cs = CodeSystem::new();
        assert_eq!(cs.dx_codes(0).len(), cs.spec().dx_per_cluster);
        assert_eq!(cs.rx_codes(5).len(), cs.spec().rx_per_cluster);
        assert_eq!(cs.num_clusters(), 12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_spec_panics() {
        CodeSystem::with_spec(CodeSystemSpec {
            clusters: 0,
            dx_per_cluster: 1,
            rx_per_cluster: 1,
        });
    }
}
