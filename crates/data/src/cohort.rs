//! Synthetic clopidogrel cohort with an order-sensitive ADR outcome.

use crate::codes::CodeSystem;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Specification of the synthetic fine-tuning cohort.
///
/// Defaults mirror the paper's Table I: 8,638 patients with a ≈ 21%
/// treatment-failure rate (1,824 / 8,638), which the fine-tuning split
/// divides 80/20 into 6,927 train / 1,732 validation (modulo rounding,
/// exactly the paper's counts).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CohortSpec {
    /// Number of patients to generate.
    pub n_patients: usize,
    /// Minimum number of events per record.
    pub min_events: usize,
    /// Maximum number of events per record.
    pub max_events: usize,
    /// Probability an interacting drug appears at all in a record.
    pub interacting_presence: f64,
    /// Probability the interacting drug lands *after* clopidogrel
    /// initiation, given it is present (the outcome-driving order signal).
    pub interacting_after_given_presence: f64,
    /// Probability of a dose-escalation event after initiation.
    pub escalation_prob: f64,
    /// Per-risk-diagnosis presence probability (two risk diagnoses exist).
    pub risk_dx_prob: f64,
    /// Label-noise rate: each rule label flips with this probability,
    /// bounding the best achievable accuracy at `1 - label_noise`.
    pub label_noise: f64,
    /// Master seed; the whole cohort is deterministic in it.
    pub seed: u64,
}

impl Default for CohortSpec {
    fn default() -> Self {
        CohortSpec {
            n_patients: 8_638,
            min_events: 6,
            max_events: 18,
            interacting_presence: 0.40,
            interacting_after_given_presence: 0.25,
            escalation_prob: 0.15,
            risk_dx_prob: 0.30,
            label_noise: 0.08,
            seed: 20230,
        }
    }
}

impl CohortSpec {
    /// A reduced cohort for fast tests / CI (same distributions, fewer
    /// patients).
    pub fn small(n_patients: usize, seed: u64) -> Self {
        CohortSpec {
            n_patients,
            seed,
            ..CohortSpec::default()
        }
    }
}

/// One synthetic patient record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Patient {
    /// Stable patient identifier within the cohort.
    pub id: u32,
    /// Chronologically ordered clinical event codes.
    pub events: Vec<String>,
    /// Treatment-failure (ADR) outcome label.
    pub adr: bool,
}

/// A generated cohort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cohort {
    /// All patients, in generation order.
    pub patients: Vec<Patient>,
}

impl Cohort {
    /// Number of patients.
    pub fn len(&self) -> usize {
        self.patients.len()
    }

    /// True if the cohort has no patients.
    pub fn is_empty(&self) -> bool {
        self.patients.is_empty()
    }

    /// Fraction of positive (ADR) labels.
    pub fn positive_rate(&self) -> f64 {
        if self.patients.is_empty() {
            return 0.0;
        }
        self.patients.iter().filter(|p| p.adr).count() as f64 / self.patients.len() as f64
    }
}

/// Generates the synthetic clopidogrel cohort.
///
/// ## Outcome model
///
/// Treatment failure fires (before label noise) when either:
///
/// 1. the interacting CYP2C19 inhibitor is prescribed **after** clopidogrel
///    initiation (order-sensitive — presence alone carries almost no
///    signal because "before" placements are as common), or
/// 2. the dose was escalated **and** at least one risk diagnosis
///    (diabetes / CKD) is on record.
///
/// Each label then flips with probability [`CohortSpec::label_noise`], so
/// the Bayes-optimal accuracy is `1 - label_noise` (default 92%) — leaving
/// headroom for the paper's best model (LSTM, 87.9%) while keeping the
/// task non-trivial.
///
/// # Panics
///
/// Panics if `min_events < 4` or `min_events > max_events`.
pub fn generate_cohort(cs: &CodeSystem, spec: &CohortSpec) -> Cohort {
    assert!(
        spec.min_events >= 4 && spec.min_events <= spec.max_events,
        "invalid event-count range {}..={}",
        spec.min_events,
        spec.max_events
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut patients = Vec::with_capacity(spec.n_patients);
    for id in 0..spec.n_patients {
        patients.push(generate_patient(cs, spec, id as u32, &mut rng));
    }
    Cohort { patients }
}

fn generate_patient(cs: &CodeSystem, spec: &CohortSpec, id: u32, rng: &mut StdRng) -> Patient {
    let n_events = rng.random_range(spec.min_events..=spec.max_events);

    // Background: draw visit-structured filler from 2-3 condition clusters,
    // mirroring how the pretraining corpus is built so domain statistics
    // match between the two stages.
    let n_clusters = rng.random_range(2..=3usize);
    let clusters: Vec<usize> = (0..n_clusters)
        .map(|_| rng.random_range(0..cs.num_clusters()))
        .collect();
    let mut events: Vec<String> = Vec::with_capacity(n_events + 6);
    while events.len() < n_events {
        let c = clusters[rng.random_range(0..clusters.len())];
        if rng.random::<f64>() < 0.5 {
            events.push(cs.dx_codes(c)[rng.random_range(0..cs.dx_codes(c).len())].clone());
        } else {
            events.push(cs.rx_codes(c)[rng.random_range(0..cs.rx_codes(c).len())].clone());
        }
    }

    // Clopidogrel initiation (preceded by its index diagnosis) somewhere in
    // the first half of the record.
    let init_pos = rng.random_range(1..=(events.len() / 2).max(1));
    events.insert(init_pos, CodeSystem::CLOPIDOGREL.to_string());
    events.insert(init_pos, CodeSystem::INDEX_ACS.to_string());
    let init_pos = init_pos + 1; // clopidogrel's actual index

    // Interacting drug: equally plausible before or mostly before; the
    // "after" placement is the outcome signal.
    let mut interacting_after = false;
    if rng.random::<f64>() < spec.interacting_presence {
        interacting_after = rng.random::<f64>() < spec.interacting_after_given_presence;
        let pos = if interacting_after {
            rng.random_range(init_pos + 1..=events.len())
        } else {
            rng.random_range(0..=init_pos)
        };
        events.insert(pos, CodeSystem::INTERACTING.to_string());
    }

    // Dose escalation always happens after initiation if it happens.
    let escalated = rng.random::<f64>() < spec.escalation_prob;
    if escalated {
        let lo = init_pos + 2; // after clopidogrel (+ any interacting insert)
        let pos = rng.random_range(lo.min(events.len())..=events.len());
        events.insert(pos, CodeSystem::CLOPIDOGREL_HIGH.to_string());
    }

    // Risk diagnoses can appear anywhere.
    let mut n_risk = 0;
    for risk in [CodeSystem::RISK_DM2, CodeSystem::RISK_CKD] {
        if rng.random::<f64>() < spec.risk_dx_prob {
            n_risk += 1;
            let pos = rng.random_range(0..=events.len());
            events.insert(pos, risk.to_string());
        }
    }

    let rule = interacting_after || (escalated && n_risk >= 1);
    let flip = rng.random::<f64>() < spec.label_noise;
    Patient {
        id,
        events,
        adr: rule != flip,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (CodeSystem, Cohort) {
        let cs = CodeSystem::new();
        let cohort = generate_cohort(&cs, &CohortSpec::small(2000, 7));
        (cs, cohort)
    }

    #[test]
    fn deterministic_in_seed() {
        let cs = CodeSystem::new();
        let a = generate_cohort(&cs, &CohortSpec::small(100, 1));
        let b = generate_cohort(&cs, &CohortSpec::small(100, 1));
        assert_eq!(a, b);
        let c = generate_cohort(&cs, &CohortSpec::small(100, 2));
        assert_ne!(a, c);
    }

    #[test]
    fn positive_rate_near_paper() {
        let (_, cohort) = small();
        let rate = cohort.positive_rate();
        // Paper: 1824/8638 = 21.1%. Allow a band for the synthetic model.
        assert!((0.15..0.30).contains(&rate), "positive rate {rate}");
    }

    #[test]
    fn every_patient_has_clopidogrel_after_index_dx() {
        let (_, cohort) = small();
        for p in &cohort.patients {
            let idx_dx = p
                .events
                .iter()
                .position(|e| e == CodeSystem::INDEX_ACS)
                .expect("index diagnosis present");
            let idx_rx = p
                .events
                .iter()
                .position(|e| e == CodeSystem::CLOPIDOGREL)
                .expect("clopidogrel present");
            // Other events (risk dx, early interacting drug) may be
            // inserted between, but initiation never precedes its
            // indication.
            assert!(idx_rx > idx_dx, "initiation follows index dx");
        }
    }

    #[test]
    fn order_signal_dominates_presence() {
        // Among patients WITH the interacting drug, "after" placements are
        // far more often positive than "before" placements.
        let (_, cohort) = small();
        let mut after_pos = 0usize;
        let mut after_tot = 0usize;
        let mut before_pos = 0usize;
        let mut before_tot = 0usize;
        for p in &cohort.patients {
            let clop = p
                .events
                .iter()
                .position(|e| e == CodeSystem::CLOPIDOGREL)
                .unwrap();
            if let Some(ipos) = p.events.iter().position(|e| e == CodeSystem::INTERACTING) {
                if ipos > clop {
                    after_tot += 1;
                    after_pos += p.adr as usize;
                } else {
                    before_tot += 1;
                    before_pos += p.adr as usize;
                }
            }
        }
        assert!(after_tot > 20 && before_tot > 20, "enough samples");
        let after_rate = after_pos as f64 / after_tot as f64;
        let before_rate = before_pos as f64 / before_tot as f64;
        assert!(
            after_rate > 0.8 && before_rate < 0.35,
            "after {after_rate:.2} vs before {before_rate:.2}"
        );
    }

    #[test]
    fn event_counts_within_bounds() {
        let (_, cohort) = small();
        for p in &cohort.patients {
            // Base events plus at most 6 inserted outcome codes.
            assert!(p.events.len() >= 6 && p.events.len() <= 24);
        }
    }

    #[test]
    fn all_codes_in_vocab() {
        let (cs, cohort) = small();
        for p in cohort.patients.iter().take(200) {
            for e in &p.events {
                assert!(cs.vocab().id(e).is_some(), "code {e} missing from vocab");
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid event-count range")]
    fn bad_range_panics() {
        let cs = CodeSystem::new();
        generate_cohort(
            &cs,
            &CohortSpec {
                min_events: 50,
                max_events: 10,
                ..CohortSpec::default()
            },
        );
    }
}
