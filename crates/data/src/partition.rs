//! Multi-site data partitioners (balanced, paper-imbalanced, label-skew,
//! Dirichlet quantity-skew).

use crate::dataset::ClassifyDataset;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The paper's 8-client imbalanced split ratios (§IV-B1): each federated
/// site receives this fraction of the pooled data.
pub const PAPER_IMBALANCED_RATIOS: [f64; 8] = [0.29, 0.22, 0.17, 0.14, 0.09, 0.04, 0.03, 0.02];

/// Strategy for dividing a pooled dataset across federated sites.
#[derive(Clone, Debug, PartialEq)]
pub enum SitePartitioner {
    /// Equal share per site (the paper's "balanced data" scheme).
    Balanced {
        /// Number of sites.
        n_sites: usize,
    },
    /// Explicit per-site fractions (the paper's "imbalanced data" scheme
    /// uses [`PAPER_IMBALANCED_RATIOS`]).
    Ratios(Vec<f64>),
    /// Label-skewed: site `i` receives `bias` of its examples from one
    /// class preferentially (extension for aggregator ablations; not in
    /// the paper).
    LabelSkew {
        /// Number of sites.
        n_sites: usize,
        /// In `[0, 1]`: 0 = uniform, 1 = fully single-class sites.
        bias: f64,
    },
    /// Dirichlet quantity skew: per-site fractions are drawn once from
    /// `Dirichlet(alpha)` (deterministic in the partition seed). Small
    /// `alpha` (≈0.1) produces heavily skewed silo sizes, large `alpha`
    /// (≥10) approaches a balanced split — the standard non-IID knob in
    /// the federated-learning literature.
    Dirichlet {
        /// Number of sites.
        n_sites: usize,
        /// Concentration parameter (> 0).
        alpha: f64,
    },
}

impl SitePartitioner {
    /// The paper's imbalanced 8-site partitioner.
    pub fn paper_imbalanced() -> Self {
        SitePartitioner::Ratios(PAPER_IMBALANCED_RATIOS.to_vec())
    }

    /// Number of sites this partitioner produces.
    pub fn n_sites(&self) -> usize {
        match self {
            SitePartitioner::Balanced { n_sites } => *n_sites,
            SitePartitioner::Ratios(r) => r.len(),
            SitePartitioner::LabelSkew { n_sites, .. } => *n_sites,
            SitePartitioner::Dirichlet { n_sites, .. } => *n_sites,
        }
    }

    /// Splits `dataset` into per-site shards (deterministic in `seed`).
    ///
    /// Every example lands in exactly one shard. Shard sizes follow the
    /// strategy via largest-remainder allocation, and whenever the dataset
    /// has at least one example per site (`n >= n_sites`) every shard is
    /// guaranteed non-empty. The degenerate `n < n_sites` case is allowed
    /// — there are simply not enough examples to go around — and leaves
    /// the lowest-ratio sites empty (tested below).
    ///
    /// # Panics
    ///
    /// Panics if the strategy is degenerate (zero sites, ratios that do not
    /// sum to ≈ 1, bias outside `[0, 1]`, alpha ≤ 0).
    pub fn partition(&self, dataset: &ClassifyDataset, seed: u64) -> Vec<ClassifyDataset> {
        match self {
            SitePartitioner::Balanced { n_sites } => {
                assert!(*n_sites > 0, "need at least one site");
                let ratios = vec![1.0 / *n_sites as f64; *n_sites];
                partition_by_ratios(dataset, &ratios, seed)
            }
            SitePartitioner::Ratios(ratios) => {
                assert!(!ratios.is_empty(), "need at least one site");
                let sum: f64 = ratios.iter().sum();
                assert!((sum - 1.0).abs() < 1e-6, "ratios must sum to 1, got {sum}");
                assert!(
                    ratios.iter().all(|&r| r > 0.0),
                    "ratios must be positive: {ratios:?}"
                );
                partition_by_ratios(dataset, ratios, seed)
            }
            SitePartitioner::LabelSkew { n_sites, bias } => {
                assert!(*n_sites > 0, "need at least one site");
                assert!(
                    (0.0..=1.0).contains(bias),
                    "bias must be in [0,1], got {bias}"
                );
                partition_label_skew(dataset, *n_sites, *bias, seed)
            }
            SitePartitioner::Dirichlet { n_sites, alpha } => {
                assert!(*n_sites > 0, "need at least one site");
                assert!(*alpha > 0.0, "alpha must be positive, got {alpha}");
                let ratios = dirichlet_ratios(*n_sites, *alpha, seed);
                // The shuffle seed is offset so the site-size draw and the
                // example shuffle use independent streams.
                partition_by_ratios(dataset, &ratios, seed.wrapping_add(0xD1E1))
            }
        }
    }
}

/// Draws per-site fractions from `Dirichlet(alpha)`: `n` independent
/// `Gamma(alpha, 1)` samples (Marsaglia–Tsang, with the `u^{1/alpha}`
/// boost for `alpha < 1`), normalized to sum to 1.
fn dirichlet_ratios(n: usize, alpha: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD112_1C11);
    let mut g: Vec<f64> = (0..n).map(|_| gamma_sample(&mut rng, alpha)).collect();
    let sum: f64 = g.iter().sum();
    if sum <= f64::MIN_POSITIVE {
        // Astronomically unlikely; fall back to a balanced draw rather
        // than divide by zero.
        return vec![1.0 / n as f64; n];
    }
    for v in &mut g {
        *v /= sum;
    }
    g
}

/// One `Gamma(alpha, 1)` sample via Marsaglia & Tsang (2000).
fn gamma_sample(rng: &mut StdRng, alpha: f64) -> f64 {
    if alpha < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        return gamma_sample(rng, alpha + 1.0) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = std_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.random();
        if u < 1.0 - 0.0331 * x.powi(4)
            || u.max(f64::MIN_POSITIVE).ln() < 0.5 * x * x + d * (1.0 - v + v.ln())
        {
            return d * v;
        }
    }
}

/// Standard normal sample via Box–Muller.
fn std_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Largest-remainder allocation of `n` examples over `ratios`: each site
/// gets `floor(n·rᵢ)`, then the remaining examples go to the largest
/// fractional parts (ties to the lower index). When `n >= ratios.len()`
/// every site is additionally guaranteed at least one example (taken from
/// the largest allocation), so rounding can never silently empty a shard
/// — the bug the old cumulative `start + round(n·r)` scheme had.
pub fn allocate_counts(n: usize, ratios: &[f64]) -> Vec<usize> {
    let k = ratios.len();
    let mut counts: Vec<usize> = Vec::with_capacity(k);
    let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(k);
    let mut used = 0usize;
    for (i, &r) in ratios.iter().enumerate() {
        let exact = n as f64 * r;
        let floor = exact.floor() as usize;
        counts.push(floor);
        fracs.push((i, exact - floor as f64));
        used += floor;
    }
    // Distribute the remainder by largest fractional part, deterministic
    // tie-break on the lower site index.
    fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut remaining = n.saturating_sub(used);
    for &(i, _) in fracs.iter().cycle().take(k.max(1) * 2) {
        if remaining == 0 {
            break;
        }
        counts[i] += 1;
        remaining -= 1;
    }
    // Non-empty guarantee whenever there is enough data to go around.
    if n >= k {
        for i in 0..k {
            while counts[i] == 0 {
                let donor = (0..k)
                    .max_by_key(|&j| counts[j])
                    .expect("at least one site");
                if counts[donor] <= 1 {
                    break;
                }
                counts[donor] -= 1;
                counts[i] += 1;
            }
        }
    }
    debug_assert_eq!(counts.iter().sum::<usize>(), n);
    counts
}

fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..idx.len()).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

fn partition_by_ratios(
    dataset: &ClassifyDataset,
    ratios: &[f64],
    seed: u64,
) -> Vec<ClassifyDataset> {
    let idx = shuffled_indices(dataset.len(), seed);
    let counts = allocate_counts(dataset.len(), ratios);
    let mut shards = Vec::with_capacity(ratios.len());
    let mut start = 0usize;
    for &count in &counts {
        let end = start + count;
        let examples = idx[start..end]
            .iter()
            .map(|&i| dataset.examples()[i].clone())
            .collect();
        shards.push(ClassifyDataset::from_examples(examples, dataset.seq_len()));
        start = end;
    }
    if dataset.len() >= ratios.len() {
        debug_assert!(
            shards.iter().all(|s| !s.is_empty()),
            "largest-remainder allocation must keep every shard non-empty"
        );
    }
    shards
}

fn partition_label_skew(
    dataset: &ClassifyDataset,
    n_sites: usize,
    bias: f64,
    seed: u64,
) -> Vec<ClassifyDataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = shuffled_indices(dataset.len(), seed.wrapping_add(1));
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n_sites];
    for &i in &idx {
        let label = dataset.examples()[i].label as usize;
        let site = if rng.random::<f64>() < bias {
            // Biased assignment: positives to the low half, negatives high.
            let half = (n_sites / 2).max(1);
            if label == 1 {
                rng.random_range(0..half)
            } else {
                rng.random_range(half.min(n_sites - 1)..n_sites)
            }
        } else {
            rng.random_range(0..n_sites)
        };
        buckets[site].push(i);
    }
    buckets
        .into_iter()
        .map(|b| {
            ClassifyDataset::from_examples(
                b.into_iter()
                    .map(|i| dataset.examples()[i].clone())
                    .collect(),
                dataset.seq_len(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::CodeSystem;
    use crate::cohort::{generate_cohort, CohortSpec};
    use clinfl_text::ClinicalTokenizer;

    fn dataset(n: usize) -> ClassifyDataset {
        let cs = CodeSystem::new();
        let cohort = generate_cohort(&cs, &CohortSpec::small(n, 5));
        let tok = ClinicalTokenizer::new(cs.vocab().clone(), 24);
        ClassifyDataset::from_cohort(&cohort, &tok)
    }

    #[test]
    fn paper_ratios_sum_to_one() {
        let sum: f64 = PAPER_IMBALANCED_RATIOS.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_split_sizes() {
        let d = dataset(800);
        let shards = SitePartitioner::Balanced { n_sites: 8 }.partition(&d, 1);
        assert_eq!(shards.len(), 8);
        assert!(shards.iter().all(|s| s.len() == 100));
    }

    #[test]
    fn imbalanced_split_matches_ratios() {
        let d = dataset(1000);
        let shards = SitePartitioner::paper_imbalanced().partition(&d, 2);
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        for (size, ratio) in sizes.iter().zip(PAPER_IMBALANCED_RATIOS) {
            let expected = 1000.0 * ratio;
            assert!(
                (*size as f64 - expected).abs() <= 2.0,
                "size {size} vs expected {expected}"
            );
        }
        // Monotone decreasing, like the paper's ratio list.
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "{sizes:?}");
    }

    #[test]
    fn partition_conserves_examples() {
        let d = dataset(333);
        for p in [
            SitePartitioner::Balanced { n_sites: 5 },
            SitePartitioner::paper_imbalanced(),
            SitePartitioner::LabelSkew {
                n_sites: 4,
                bias: 0.7,
            },
        ] {
            let shards = p.partition(&d, 7);
            let total: usize = shards.iter().map(|s| s.len()).sum();
            assert_eq!(total, d.len(), "{p:?}");
        }
    }

    #[test]
    fn partition_deterministic() {
        let d = dataset(100);
        let a = SitePartitioner::paper_imbalanced().partition(&d, 3);
        let b = SitePartitioner::paper_imbalanced().partition(&d, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn label_skew_biases_positive_rates() {
        let d = dataset(2000);
        let shards = SitePartitioner::LabelSkew {
            n_sites: 4,
            bias: 0.9,
        }
        .partition(&d, 11);
        let lo = shards[0].positive_rate();
        let hi = shards[3].positive_rate();
        assert!(
            lo > hi + 0.2,
            "expected skew: site0 {lo:.2} vs site3 {hi:.2}"
        );
    }

    #[test]
    fn zero_bias_is_roughly_uniform() {
        let d = dataset(2000);
        let shards = SitePartitioner::LabelSkew {
            n_sites: 4,
            bias: 0.0,
        }
        .partition(&d, 11);
        let base = d.positive_rate();
        for s in &shards {
            assert!((s.positive_rate() - base).abs() < 0.08);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_ratios_panic() {
        SitePartitioner::Ratios(vec![0.5, 0.2]).partition(&dataset(10), 0);
    }

    /// Regression for the rounding-drift bug: the old cumulative
    /// `start + round(n·r)` allocation could hand an entire small dataset
    /// to the high-ratio sites and leave a low-ratio shard empty. With
    /// largest-remainder allocation every shard is non-empty whenever
    /// `n >= n_sites`, for every seed.
    #[test]
    fn small_dataset_many_sites_keeps_every_shard_nonempty() {
        for n in [8usize, 11, 17, 23, 40] {
            let d = dataset(n);
            for seed in 0..5u64 {
                let shards = SitePartitioner::paper_imbalanced().partition(&d, seed);
                let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
                assert_eq!(sizes.iter().sum::<usize>(), n);
                assert!(
                    sizes.iter().all(|&s| s > 0),
                    "empty shard at n={n} seed={seed}: {sizes:?}"
                );
            }
        }
    }

    /// The documented degenerate path: fewer examples than sites still
    /// conserves every example, leaving the lowest-ratio sites empty.
    #[test]
    fn fewer_examples_than_sites_conserves() {
        let d = dataset(5);
        let shards = SitePartitioner::paper_imbalanced().partition(&d, 3);
        assert_eq!(shards.len(), 8);
        assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), 5);
    }

    #[test]
    fn allocate_counts_conserves_and_fills() {
        // Adversarial ratio shapes across a range of n.
        let shapes: [&[f64]; 3] = [
            &PAPER_IMBALANCED_RATIOS,
            &[0.5, 0.25, 0.125, 0.0625, 0.0625],
            &[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
        ];
        for ratios in shapes {
            for n in 0..200usize {
                let counts = allocate_counts(n, ratios);
                assert_eq!(counts.iter().sum::<usize>(), n, "{ratios:?} n={n}");
                if n >= ratios.len() {
                    assert!(
                        counts.iter().all(|&c| c > 0),
                        "{ratios:?} n={n}: {counts:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn dirichlet_is_deterministic_and_conserves() {
        let d = dataset(400);
        let p = SitePartitioner::Dirichlet {
            n_sites: 6,
            alpha: 0.3,
        };
        let a = p.partition(&d, 9);
        let b = p.partition(&d, 9);
        assert_eq!(a, b);
        assert_eq!(a.iter().map(|s| s.len()).sum::<usize>(), 400);
        assert!(a.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn dirichlet_alpha_controls_skew() {
        let d = dataset(2000);
        let spread = |alpha: f64| -> usize {
            let shards = SitePartitioner::Dirichlet { n_sites: 8, alpha }.partition(&d, 21);
            let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
            sizes.iter().max().unwrap() - sizes.iter().min().unwrap()
        };
        // Small alpha concentrates mass on few sites; large alpha is near
        // balanced. The gap should be wide and ordered.
        let skewed = spread(0.1);
        let flat = spread(100.0);
        assert!(
            skewed > flat + 200,
            "alpha=0.1 spread {skewed} vs alpha=100 spread {flat}"
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn dirichlet_rejects_bad_alpha() {
        SitePartitioner::Dirichlet {
            n_sites: 4,
            alpha: 0.0,
        }
        .partition(&dataset(10), 0);
    }
}
