//! Multi-site data partitioners (balanced, paper-imbalanced, label-skew).

use crate::dataset::ClassifyDataset;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The paper's 8-client imbalanced split ratios (§IV-B1): each federated
/// site receives this fraction of the pooled data.
pub const PAPER_IMBALANCED_RATIOS: [f64; 8] = [0.29, 0.22, 0.17, 0.14, 0.09, 0.04, 0.03, 0.02];

/// Strategy for dividing a pooled dataset across federated sites.
#[derive(Clone, Debug, PartialEq)]
pub enum SitePartitioner {
    /// Equal share per site (the paper's "balanced data" scheme).
    Balanced {
        /// Number of sites.
        n_sites: usize,
    },
    /// Explicit per-site fractions (the paper's "imbalanced data" scheme
    /// uses [`PAPER_IMBALANCED_RATIOS`]).
    Ratios(Vec<f64>),
    /// Label-skewed: site `i` receives `bias` of its examples from one
    /// class preferentially (extension for aggregator ablations; not in
    /// the paper).
    LabelSkew {
        /// Number of sites.
        n_sites: usize,
        /// In `[0, 1]`: 0 = uniform, 1 = fully single-class sites.
        bias: f64,
    },
}

impl SitePartitioner {
    /// The paper's imbalanced 8-site partitioner.
    pub fn paper_imbalanced() -> Self {
        SitePartitioner::Ratios(PAPER_IMBALANCED_RATIOS.to_vec())
    }

    /// Number of sites this partitioner produces.
    pub fn n_sites(&self) -> usize {
        match self {
            SitePartitioner::Balanced { n_sites } => *n_sites,
            SitePartitioner::Ratios(r) => r.len(),
            SitePartitioner::LabelSkew { n_sites, .. } => *n_sites,
        }
    }

    /// Splits `dataset` into per-site shards (deterministic in `seed`).
    ///
    /// Every example lands in exactly one shard; shard sizes follow the
    /// strategy (the last site absorbs rounding remainders).
    ///
    /// # Panics
    ///
    /// Panics if the strategy is degenerate (zero sites, ratios that do not
    /// sum to ≈ 1, bias outside `[0, 1]`).
    pub fn partition(&self, dataset: &ClassifyDataset, seed: u64) -> Vec<ClassifyDataset> {
        match self {
            SitePartitioner::Balanced { n_sites } => {
                assert!(*n_sites > 0, "need at least one site");
                let ratios = vec![1.0 / *n_sites as f64; *n_sites];
                partition_by_ratios(dataset, &ratios, seed)
            }
            SitePartitioner::Ratios(ratios) => {
                assert!(!ratios.is_empty(), "need at least one site");
                let sum: f64 = ratios.iter().sum();
                assert!((sum - 1.0).abs() < 1e-6, "ratios must sum to 1, got {sum}");
                assert!(
                    ratios.iter().all(|&r| r > 0.0),
                    "ratios must be positive: {ratios:?}"
                );
                partition_by_ratios(dataset, ratios, seed)
            }
            SitePartitioner::LabelSkew { n_sites, bias } => {
                assert!(*n_sites > 0, "need at least one site");
                assert!(
                    (0.0..=1.0).contains(bias),
                    "bias must be in [0,1], got {bias}"
                );
                partition_label_skew(dataset, *n_sites, *bias, seed)
            }
        }
    }
}

fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..idx.len()).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

fn partition_by_ratios(
    dataset: &ClassifyDataset,
    ratios: &[f64],
    seed: u64,
) -> Vec<ClassifyDataset> {
    let idx = shuffled_indices(dataset.len(), seed);
    let n = dataset.len();
    let mut shards = Vec::with_capacity(ratios.len());
    let mut start = 0usize;
    for (s, &r) in ratios.iter().enumerate() {
        let end = if s + 1 == ratios.len() {
            n
        } else {
            (start + (n as f64 * r).round() as usize).min(n)
        };
        let examples = idx[start..end]
            .iter()
            .map(|&i| dataset.examples()[i].clone())
            .collect();
        shards.push(ClassifyDataset::from_examples(examples, dataset.seq_len()));
        start = end;
    }
    shards
}

fn partition_label_skew(
    dataset: &ClassifyDataset,
    n_sites: usize,
    bias: f64,
    seed: u64,
) -> Vec<ClassifyDataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = shuffled_indices(dataset.len(), seed.wrapping_add(1));
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n_sites];
    for &i in &idx {
        let label = dataset.examples()[i].label as usize;
        let site = if rng.random::<f64>() < bias {
            // Biased assignment: positives to the low half, negatives high.
            let half = (n_sites / 2).max(1);
            if label == 1 {
                rng.random_range(0..half)
            } else {
                rng.random_range(half.min(n_sites - 1)..n_sites)
            }
        } else {
            rng.random_range(0..n_sites)
        };
        buckets[site].push(i);
    }
    buckets
        .into_iter()
        .map(|b| {
            ClassifyDataset::from_examples(
                b.into_iter()
                    .map(|i| dataset.examples()[i].clone())
                    .collect(),
                dataset.seq_len(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes::CodeSystem;
    use crate::cohort::{generate_cohort, CohortSpec};
    use clinfl_text::ClinicalTokenizer;

    fn dataset(n: usize) -> ClassifyDataset {
        let cs = CodeSystem::new();
        let cohort = generate_cohort(&cs, &CohortSpec::small(n, 5));
        let tok = ClinicalTokenizer::new(cs.vocab().clone(), 24);
        ClassifyDataset::from_cohort(&cohort, &tok)
    }

    #[test]
    fn paper_ratios_sum_to_one() {
        let sum: f64 = PAPER_IMBALANCED_RATIOS.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_split_sizes() {
        let d = dataset(800);
        let shards = SitePartitioner::Balanced { n_sites: 8 }.partition(&d, 1);
        assert_eq!(shards.len(), 8);
        assert!(shards.iter().all(|s| s.len() == 100));
    }

    #[test]
    fn imbalanced_split_matches_ratios() {
        let d = dataset(1000);
        let shards = SitePartitioner::paper_imbalanced().partition(&d, 2);
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        for (size, ratio) in sizes.iter().zip(PAPER_IMBALANCED_RATIOS) {
            let expected = 1000.0 * ratio;
            assert!(
                (*size as f64 - expected).abs() <= 2.0,
                "size {size} vs expected {expected}"
            );
        }
        // Monotone decreasing, like the paper's ratio list.
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "{sizes:?}");
    }

    #[test]
    fn partition_conserves_examples() {
        let d = dataset(333);
        for p in [
            SitePartitioner::Balanced { n_sites: 5 },
            SitePartitioner::paper_imbalanced(),
            SitePartitioner::LabelSkew {
                n_sites: 4,
                bias: 0.7,
            },
        ] {
            let shards = p.partition(&d, 7);
            let total: usize = shards.iter().map(|s| s.len()).sum();
            assert_eq!(total, d.len(), "{p:?}");
        }
    }

    #[test]
    fn partition_deterministic() {
        let d = dataset(100);
        let a = SitePartitioner::paper_imbalanced().partition(&d, 3);
        let b = SitePartitioner::paper_imbalanced().partition(&d, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn label_skew_biases_positive_rates() {
        let d = dataset(2000);
        let shards = SitePartitioner::LabelSkew {
            n_sites: 4,
            bias: 0.9,
        }
        .partition(&d, 11);
        let lo = shards[0].positive_rate();
        let hi = shards[3].positive_rate();
        assert!(
            lo > hi + 0.2,
            "expected skew: site0 {lo:.2} vs site3 {hi:.2}"
        );
    }

    #[test]
    fn zero_bias_is_roughly_uniform() {
        let d = dataset(2000);
        let shards = SitePartitioner::LabelSkew {
            n_sites: 4,
            bias: 0.0,
        }
        .partition(&d, 11);
        let base = d.positive_rate();
        for s in &shards {
            assert!((s.positive_rate() - base).abs() < 0.08);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_ratios_panic() {
        SitePartitioner::Ratios(vec![0.5, 0.2]).partition(&dataset(10), 0);
    }
}
