//! # clinfl-data
//!
//! Synthetic clinical-EHR substrate for the `clinfl` reproduction of
//! *"Multi-Site Clinical Federated Learning using Recursive and Attentive
//! Models and NVFlare"* (ICDCS 2023).
//!
//! The paper's dataset — electronic health records of **8,638 clopidogrel
//! patients, 1,824 of whom were treatment-failure cases** (≈ 21%), from
//! Cipherome (its ref. \[13\]) — is proprietary and HIPAA-protected, so this
//! crate generates a synthetic cohort that exercises the same code paths:
//!
//! * [`CodeSystem`] — a deterministic clinical code vocabulary (ATC-like
//!   drug codes, ICD-like diagnosis codes) organized in condition clusters,
//!   shared by the pretraining corpus and the fine-tuning cohort.
//! * [`CohortSpec`] / [`generate_cohort`] — patient event sequences with an
//!   **order-sensitive** adverse-drug-reaction (ADR) outcome: treatment
//!   failure depends on *when* an interacting drug (a CYP2C19 inhibitor
//!   like omeprazole) is prescribed relative to clopidogrel initiation, not
//!   merely on its presence. A recursive model therefore has a genuine
//!   representational advantage, matching the paper's observation that the
//!   LSTM outperforms BERT on this task.
//! * [`PretrainSpec`] / [`generate_corpus`] — an MLM pretraining corpus
//!   with cluster-structured co-occurrence statistics (so MLM loss can
//!   actually fall, as in the paper's Fig. 2).
//! * [`SitePartitioner`] — the paper's exact 8-site imbalanced split
//!   ratios `{0.29, 0.22, 0.17, 0.14, 0.09, 0.04, 0.03, 0.02}`, a balanced
//!   split, and a label-skew split for ablations.
//! * [`ClassifyDataset`] / [`Batch`] — tokenized, batched training data.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod codes;
mod cohort;
mod corpus;
mod dataset;
mod notes;
mod partition;

pub use codes::{CodeSystem, CodeSystemSpec};
pub use cohort::{generate_cohort, Cohort, CohortSpec, Patient};
pub use corpus::{generate_corpus, Corpus, PretrainSpec};
pub use dataset::{Batch, BatchIter, ClassifyDataset, Example};
pub use notes::{render_note, render_note_for_site};
pub use partition::{allocate_counts, SitePartitioner, PAPER_IMBALANCED_RATIOS};
