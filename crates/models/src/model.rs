//! The common interface federated executors train against.

use clinfl_tensor::{Graph, Params, Var};

/// A borrowed mini-batch of token sequences in flat row-major layout.
///
/// This is the model-side view of `clinfl_data::Batch`; keeping it borrowed
/// lets executors batch without copying.
#[derive(Clone, Copy, Debug)]
pub struct TokenBatch<'a> {
    /// Token ids, `batch_size * seq_len` entries.
    pub ids: &'a [u32],
    /// Attention mask aligned with `ids` (1 = real token, 0 = padding).
    pub mask: &'a [u8],
    /// Number of sequences.
    pub batch_size: usize,
    /// Tokens per sequence.
    pub seq_len: usize,
}

impl TokenBatch<'_> {
    /// Validates the flat layout.
    ///
    /// # Panics
    ///
    /// Panics if `ids`/`mask` lengths disagree with
    /// `batch_size * seq_len`.
    pub fn validate(&self) {
        assert_eq!(
            self.ids.len(),
            self.batch_size * self.seq_len,
            "ids length mismatch"
        );
        assert_eq!(
            self.mask.len(),
            self.batch_size * self.seq_len,
            "mask length mismatch"
        );
    }
}

/// Which of the paper's three models a component refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ModelKind {
    /// BERT (hidden 128, 6 heads, 12 layers).
    Bert,
    /// BERT-mini (hidden 50, 2 heads, 6 layers).
    BertMini,
    /// LSTM (hidden 128, 3 layers).
    Lstm,
}

impl ModelKind {
    /// All three paper models, in Table II column order.
    pub fn all() -> [ModelKind; 3] {
        [ModelKind::Bert, ModelKind::BertMini, ModelKind::Lstm]
    }

    /// Display name matching the paper's tables.
    pub fn as_str(self) -> &'static str {
        match self {
            ModelKind::Bert => "BERT",
            ModelKind::BertMini => "BERT-mini",
            ModelKind::Lstm => "LSTM",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A trainable sequence classifier: the contract between models and the
/// training/federated layers.
///
/// Implementations own a [`Params`] store; the FL runtime exchanges weights
/// through it, optimizers update it, and `classification_loss` builds the
/// per-batch autograd graph.
pub trait SequenceClassifier {
    /// The parameter store (for weight exchange and optimizers).
    fn params(&self) -> &Params;

    /// Mutable parameter store.
    fn params_mut(&mut self) -> &mut Params;

    /// Builds the forward graph for a labelled batch and returns the scalar
    /// cross-entropy loss variable. `labels` has one entry per sequence.
    fn classification_loss(&self, g: &mut Graph, batch: &TokenBatch<'_>, labels: &[i32]) -> Var;

    /// Predicted class per sequence (evaluation mode, no dropout), built on
    /// a caller-provided graph so training loops can reuse one tape (and its
    /// buffer pool) across steps.
    ///
    /// Implementations reset `g` and switch it to evaluation mode
    /// themselves; the caller is responsible for restoring training mode
    /// (and the dropout seed) afterwards.
    fn predict_with(&self, g: &mut Graph, batch: &TokenBatch<'_>) -> Vec<usize>;

    /// Class-probability rows per sequence (softmax over logits, evaluation
    /// mode) on a caller-provided graph; see [`Self::predict_with`] for the
    /// reset contract. Row order matches the batch; each row sums to 1.
    fn predict_proba_with(&self, g: &mut Graph, batch: &TokenBatch<'_>) -> Vec<Vec<f32>>;

    /// Predicted class per sequence (evaluation mode, no dropout).
    fn predict(&self, batch: &TokenBatch<'_>) -> Vec<usize> {
        let mut g = Graph::new();
        self.predict_with(&mut g, batch)
    }

    /// Class-probability rows per sequence (softmax over logits,
    /// evaluation mode). Row order matches the batch; each row sums to 1.
    fn predict_proba(&self, batch: &TokenBatch<'_>) -> Vec<Vec<f32>> {
        let mut g = Graph::new();
        self.predict_proba_with(&mut g, batch)
    }

    /// Top-1 accuracy on a labelled batch.
    fn accuracy(&self, batch: &TokenBatch<'_>, labels: &[i32]) -> f64 {
        let preds = self.predict(batch);
        let correct = preds
            .iter()
            .zip(labels)
            .filter(|(p, l)| **p as i32 == **l)
            .count();
        correct as f64 / labels.len().max(1) as f64
    }
}
