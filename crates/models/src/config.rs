//! Model hyper-parameter configurations (paper Table II).

/// Configuration of the [`crate::BertModel`] transformer.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BertConfig {
    /// Vocabulary size (token embedding rows).
    pub vocab_size: usize,
    /// Hidden dimension (paper: 128 for BERT, 50 for BERT-mini).
    pub hidden: usize,
    /// Number of attention heads (paper: 6 / 2).
    pub heads: usize,
    /// Number of transformer blocks (paper: 12 / 6).
    pub layers: usize,
    /// Feed-forward inner dimension (we use `2 * hidden`; the paper does
    /// not specify it).
    pub ffn: usize,
    /// Maximum sequence length (position embedding rows).
    pub max_seq_len: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Number of output classes for the classification head.
    pub num_classes: usize,
}

impl BertConfig {
    /// The paper's **BERT** column of Table II (hidden 128, 6 heads,
    /// 12 layers). `vocab_size`/`max_seq_len` must still be set for the
    /// corpus at hand.
    pub fn bert(vocab_size: usize, max_seq_len: usize) -> Self {
        BertConfig {
            vocab_size,
            hidden: 128,
            heads: 6,
            layers: 12,
            ffn: 256,
            max_seq_len,
            dropout: 0.1,
            num_classes: 2,
        }
    }

    /// The paper's **BERT-mini** column of Table II (hidden 50, 2 heads,
    /// 6 layers).
    pub fn bert_mini(vocab_size: usize, max_seq_len: usize) -> Self {
        BertConfig {
            vocab_size,
            hidden: 50,
            heads: 2,
            layers: 6,
            ffn: 100,
            max_seq_len,
            dropout: 0.1,
            num_classes: 2,
        }
    }

    /// Per-head dimension. When `hidden` is not divisible by `heads` (the
    /// paper's BERT has 128/6), heads use `ceil(hidden/heads)` and the
    /// attention output is projected back from `heads * head_dim` to
    /// `hidden`.
    pub fn head_dim(&self) -> usize {
        self.hidden.div_ceil(self.heads)
    }

    /// Total inner width of the attention projections
    /// (`heads * head_dim`).
    pub fn attn_inner(&self) -> usize {
        self.heads * self.head_dim()
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized fields or `dropout ∉ [0, 1)`.
    pub fn validate(&self) {
        assert!(self.vocab_size > 0, "vocab_size must be positive");
        assert!(self.hidden > 0, "hidden must be positive");
        assert!(self.heads > 0, "heads must be positive");
        assert!(self.layers > 0, "layers must be positive");
        assert!(self.ffn > 0, "ffn must be positive");
        assert!(self.max_seq_len > 0, "max_seq_len must be positive");
        assert!(self.num_classes >= 2, "need at least two classes");
        assert!(
            (0.0..1.0).contains(&self.dropout),
            "dropout must be in [0,1)"
        );
    }
}

/// Configuration of the [`crate::LstmClassifier`].
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LstmConfig {
    /// Vocabulary size (embedding rows).
    pub vocab_size: usize,
    /// Hidden dimension (paper: 128).
    pub hidden: usize,
    /// Number of stacked LSTM layers (paper: 3).
    pub layers: usize,
    /// Dropout applied between layers and before the head.
    pub dropout: f32,
    /// Number of output classes.
    pub num_classes: usize,
}

impl LstmConfig {
    /// The paper's **LSTM** column of Table II (hidden 128, 3 layers),
    /// with `vocab_size` left at a placeholder of 1 to be overridden.
    pub fn paper() -> Self {
        LstmConfig {
            vocab_size: 1,
            hidden: 128,
            layers: 3,
            dropout: 0.1,
            num_classes: 2,
        }
    }

    /// Paper LSTM over a concrete vocabulary.
    pub fn with_vocab(vocab_size: usize) -> Self {
        LstmConfig {
            vocab_size,
            ..LstmConfig::paper()
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized fields or `dropout ∉ [0, 1)`.
    pub fn validate(&self) {
        assert!(self.vocab_size > 0, "vocab_size must be positive");
        assert!(self.hidden > 0, "hidden must be positive");
        assert!(self.layers > 0, "layers must be positive");
        assert!(self.num_classes >= 2, "need at least two classes");
        assert!(
            (0.0..1.0).contains(&self.dropout),
            "dropout must be in [0,1)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_bert_spec() {
        let c = BertConfig::bert(500, 36);
        assert_eq!((c.hidden, c.heads, c.layers), (128, 6, 12));
        // 128 not divisible by 6 → head_dim 22, inner 132.
        assert_eq!(c.head_dim(), 22);
        assert_eq!(c.attn_inner(), 132);
        c.validate();
    }

    #[test]
    fn table2_bert_mini_spec() {
        let c = BertConfig::bert_mini(500, 36);
        assert_eq!((c.hidden, c.heads, c.layers), (50, 2, 6));
        assert_eq!(c.head_dim(), 25);
        assert_eq!(c.attn_inner(), 50);
        c.validate();
    }

    #[test]
    fn table2_lstm_spec() {
        let c = LstmConfig::with_vocab(500);
        assert_eq!((c.hidden, c.layers), (128, 3));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "heads must be positive")]
    fn zero_heads_panics() {
        BertConfig {
            heads: 0,
            ..BertConfig::bert(10, 8)
        }
        .validate();
    }
}
