//! The attentive model: a BERT-style transformer encoder with MLM and
//! classification heads.

use crate::config::BertConfig;
use crate::model::{SequenceClassifier, TokenBatch};
use clinfl_obs::KernelTimer;
use clinfl_tensor::{Graph, Init, ParamId, Params, Tensor, Var};

/// Additive attention-mask value for padded key positions. `-1e4` (rather
/// than `-inf`) keeps `f32` softmax numerically safe.
const NEG_ATTN: f32 = -1.0e4;

/// Wall time and invocation count of the whole multi-head self-attention
/// sublayer (the graph runs define-by-run, so this covers the forward
/// compute of Q/K/V projections, scores, softmax, and output projection).
static OBS_ATTENTION: KernelTimer = KernelTimer::new("model.attention");

#[derive(Clone, Debug)]
struct BlockParams {
    ln1_g: ParamId,
    ln1_b: ParamId,
    wq: ParamId,
    bq: ParamId,
    wk: ParamId,
    bk: ParamId,
    wv: ParamId,
    bv: ParamId,
    wo: ParamId,
    bo: ParamId,
    ln2_g: ParamId,
    ln2_b: ParamId,
    w_ff1: ParamId,
    b_ff1: ParamId,
    w_ff2: ParamId,
    b_ff2: ParamId,
}

/// BERT encoder with both of the paper's heads.
///
/// Architecture (pre-LN variant, chosen for optimization stability at the
/// paper's large learning rate — see DESIGN.md):
///
/// ```text
/// token-emb + position-emb → LN → dropout
/// × layers: x += MHA(LN(x));  x += FFN(LN(x))
/// final LN
/// heads: [CLS] → linear (classification)   |   dense+GELU → decoder (MLM)
/// ```
///
/// When `hidden` is not divisible by `heads` (the paper's BERT: 128 / 6),
/// each head uses `ceil(hidden/heads)` dimensions and the attention output
/// is projected back from `heads * head_dim` to `hidden`.
#[derive(Clone, Debug)]
pub struct BertModel {
    config: BertConfig,
    params: Params,
    tok_emb: ParamId,
    pos_emb: ParamId,
    emb_ln_g: ParamId,
    emb_ln_b: ParamId,
    blocks: Vec<BlockParams>,
    final_ln_g: ParamId,
    final_ln_b: ParamId,
    cls_w: ParamId,
    cls_b: ParamId,
    mlm_dense_w: ParamId,
    mlm_dense_b: ParamId,
    mlm_ln_g: ParamId,
    mlm_ln_b: ParamId,
    mlm_dec_b: ParamId,
}

impl BertModel {
    /// Builds the model with deterministic initialization in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see [`BertConfig::validate`]).
    pub fn new(config: &BertConfig, seed: u64) -> Self {
        config.validate();
        let mut params = Params::new();
        let h = config.hidden;
        let inner = config.attn_inner();
        let mut s = seed;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s
        };
        let norm = Init::Normal(0.02);
        let tok_emb = params.register(
            "bert.embeddings.token",
            norm.tensor(&[config.vocab_size, h], next()),
        );
        let pos_emb = params.register(
            "bert.embeddings.position",
            norm.tensor(&[config.max_seq_len, h], next()),
        );
        let emb_ln_g = params.register("bert.embeddings.ln.gain", Tensor::ones(&[h]));
        let emb_ln_b = params.register("bert.embeddings.ln.bias", Tensor::zeros(&[h]));
        let mut blocks = Vec::with_capacity(config.layers);
        for l in 0..config.layers {
            let p = |params: &mut Params, name: &str, dims: &[usize], seed: u64| {
                params.register(format!("bert.layer{l}.{name}"), norm.tensor(dims, seed))
            };
            let z = |params: &mut Params, name: &str, dims: &[usize]| {
                params.register(format!("bert.layer{l}.{name}"), Tensor::zeros(dims))
            };
            let o = |params: &mut Params, name: &str, dims: &[usize]| {
                params.register(format!("bert.layer{l}.{name}"), Tensor::ones(dims))
            };
            blocks.push(BlockParams {
                ln1_g: o(&mut params, "ln1.gain", &[h]),
                ln1_b: z(&mut params, "ln1.bias", &[h]),
                wq: p(&mut params, "attn.wq", &[h, inner], next()),
                bq: z(&mut params, "attn.bq", &[inner]),
                wk: p(&mut params, "attn.wk", &[h, inner], next()),
                bk: z(&mut params, "attn.bk", &[inner]),
                wv: p(&mut params, "attn.wv", &[h, inner], next()),
                bv: z(&mut params, "attn.bv", &[inner]),
                wo: p(&mut params, "attn.wo", &[inner, h], next()),
                bo: z(&mut params, "attn.bo", &[h]),
                ln2_g: o(&mut params, "ln2.gain", &[h]),
                ln2_b: z(&mut params, "ln2.bias", &[h]),
                w_ff1: p(&mut params, "ffn.w1", &[h, config.ffn], next()),
                b_ff1: z(&mut params, "ffn.b1", &[config.ffn]),
                w_ff2: p(&mut params, "ffn.w2", &[config.ffn, h], next()),
                b_ff2: z(&mut params, "ffn.b2", &[h]),
            });
        }
        let final_ln_g = params.register("bert.final_ln.gain", Tensor::ones(&[h]));
        let final_ln_b = params.register("bert.final_ln.bias", Tensor::zeros(&[h]));
        let cls_w = params.register(
            "bert.cls_head.w",
            Init::XavierUniform.tensor(&[h, config.num_classes], next()),
        );
        let cls_b = params.register("bert.cls_head.b", Tensor::zeros(&[config.num_classes]));
        let mlm_dense_w = params.register("bert.mlm_head.dense.w", norm.tensor(&[h, h], next()));
        let mlm_dense_b = params.register("bert.mlm_head.dense.b", Tensor::zeros(&[h]));
        let mlm_ln_g = params.register("bert.mlm_head.ln.gain", Tensor::ones(&[h]));
        let mlm_ln_b = params.register("bert.mlm_head.ln.bias", Tensor::zeros(&[h]));
        // The MLM decoder weight is tied to the token-embedding table (as
        // in BERT); only its bias is a separate parameter.
        let mlm_dec_b = params.register(
            "bert.mlm_head.decoder.b",
            Tensor::zeros(&[config.vocab_size]),
        );
        BertModel {
            config: *config,
            params,
            tok_emb,
            pos_emb,
            emb_ln_g,
            emb_ln_b,
            blocks,
            final_ln_g,
            final_ln_b,
            cls_w,
            cls_b,
            mlm_dense_w,
            mlm_dense_b,
            mlm_ln_g,
            mlm_ln_b,
            mlm_dec_b,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BertConfig {
        &self.config
    }

    /// Total number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.params.num_elements()
    }

    /// Number of parameters in the encoder backbone (without either head),
    /// the set exchanged during MLM pretraining-then-finetune transfer.
    pub fn num_backbone_parameters(&self) -> usize {
        self.params
            .iter()
            .filter(|(_, name, _)| !name.contains("cls_head") && !name.contains("mlm_head"))
            .map(|(_, _, t)| t.numel())
            .sum()
    }

    fn layer_norm(&self, g: &mut Graph, x: Var, gain: ParamId, bias: ParamId) -> Var {
        let n = g.normalize_last(x, 1e-5);
        let gain = g.param(&self.params, gain);
        let bias = g.param(&self.params, bias);
        let scaled = g.mul(n, gain);
        g.add(scaled, bias)
    }

    /// Builds the additive attention mask `[B, heads, S, S]` from the key
    /// padding mask, writing into a pooled graph input.
    fn attention_mask(&self, g: &mut Graph, batch: &TokenBatch<'_>) -> Var {
        let (b, s, heads) = (batch.batch_size, batch.seq_len, self.config.heads);
        g.input_with(&[b, heads, s, s], |data| {
            for bi in 0..b {
                for key in 0..s {
                    if batch.mask[bi * s + key] == 0 {
                        for hd in 0..heads {
                            for q in 0..s {
                                data[((bi * heads + hd) * s + q) * s + key] = NEG_ATTN;
                            }
                        }
                    }
                }
            }
        })
    }

    /// Builds the encoder forward pass, returning hidden states
    /// `[B, S, hidden]`.
    fn encode(&self, g: &mut Graph, batch: &TokenBatch<'_>) -> Var {
        batch.validate();
        let (b, s, h) = (batch.batch_size, batch.seq_len, self.config.hidden);
        assert!(
            s <= self.config.max_seq_len,
            "sequence length {s} exceeds max_seq_len {}",
            self.config.max_seq_len
        );
        let heads = self.config.heads;
        let dh = self.config.head_dim();
        let inner = self.config.attn_inner();
        let p = self.config.dropout;

        let tok_table = g.param(&self.params, self.tok_emb);
        let tok = g.embedding(tok_table, batch.ids);
        let tok = g.reshape(tok, &[b, s, h]);
        let mut pos_ids = vec![0u32; b * s];
        for (i, v) in pos_ids.iter_mut().enumerate() {
            *v = (i % s) as u32;
        }
        let pos_table = g.param(&self.params, self.pos_emb);
        let pos = g.embedding(pos_table, &pos_ids);
        let pos = g.reshape(pos, &[b, s, h]);
        let x = g.add(tok, pos);
        let x = self.layer_norm(g, x, self.emb_ln_g, self.emb_ln_b);
        let mut x = g.dropout(x, p);

        let amask = self.attention_mask(g, batch);
        let scale = 1.0 / (dh as f32).sqrt();

        for blk in &self.blocks {
            // --- Multi-head self-attention sublayer (pre-LN) ---
            let obs_attn = OBS_ATTENTION.start();
            let hn = self.layer_norm(g, x, blk.ln1_g, blk.ln1_b);
            let proj = |g: &mut Graph, model: &Self, w, bias| {
                let wv = g.param(&model.params, w);
                let bv = g.param(&model.params, bias);
                let y = g.matmul(hn, wv);
                let y = g.add(y, bv);
                let y = g.reshape(y, &[b, s, heads, dh]);
                g.swap_axes12(y) // [B, heads, S, dh]
            };
            let q = proj(g, self, blk.wq, blk.bq);
            let k = proj(g, self, blk.wk, blk.bk);
            let v = proj(g, self, blk.wv, blk.bv);
            // q·kᵀ through the packed a·bᵀ kernel: one batched call over
            // all B·heads score matrices, no transposed copy of k.
            let scores = g.matmul_bt(q, k); // [B, heads, S, S]
            let scores = g.scale(scores, scale);
            let scores = g.add(scores, amask);
            let attn = g.softmax(scores);
            let attn = g.dropout(attn, p);
            let ctx = g.matmul(attn, v); // [B, heads, S, dh]
            let ctx = g.swap_axes12(ctx); // [B, S, heads, dh]
            let ctx = g.reshape(ctx, &[b, s, inner]);
            let wo = g.param(&self.params, blk.wo);
            let bo = g.param(&self.params, blk.bo);
            let out = g.matmul(ctx, wo);
            let out = g.add(out, bo);
            let out = g.dropout(out, p);
            x = g.add(x, out);
            drop(obs_attn);

            // --- Feed-forward sublayer (pre-LN) ---
            let hn2 = self.layer_norm(g, x, blk.ln2_g, blk.ln2_b);
            let w1 = g.param(&self.params, blk.w_ff1);
            let b1 = g.param(&self.params, blk.b_ff1);
            let f = g.matmul(hn2, w1);
            let f = g.add(f, b1);
            let f = g.gelu(f);
            let w2 = g.param(&self.params, blk.w_ff2);
            let b2 = g.param(&self.params, blk.b_ff2);
            let f = g.matmul(f, w2);
            let f = g.add(f, b2);
            let f = g.dropout(f, p);
            x = g.add(x, f);
        }
        self.layer_norm(g, x, self.final_ln_g, self.final_ln_b)
    }

    fn cls_logits(&self, g: &mut Graph, batch: &TokenBatch<'_>) -> Var {
        let enc = self.encode(g, batch);
        let cls = g.select_axis1(enc, 0);
        let cls = g.dropout(cls, self.config.dropout);
        let w = g.param(&self.params, self.cls_w);
        let bias = g.param(&self.params, self.cls_b);
        let logits = g.matmul(cls, w);
        g.add(logits, bias)
    }

    /// Masked-language-model loss (the paper's pretraining objective).
    ///
    /// `mlm_labels` has one entry per token position (`batch * seq_len`),
    /// holding the original token id at corrupted positions and
    /// [`clinfl_text::IGNORE_INDEX`] elsewhere — exactly the output of
    /// [`clinfl_text::MlmMasker::mask`].
    ///
    /// # Panics
    ///
    /// Panics if `mlm_labels.len() != batch_size * seq_len`.
    pub fn mlm_loss(&self, g: &mut Graph, batch: &TokenBatch<'_>, mlm_labels: &[i32]) -> Var {
        assert_eq!(
            mlm_labels.len(),
            batch.batch_size * batch.seq_len,
            "one MLM label per token position"
        );
        let (b, s, h) = (batch.batch_size, batch.seq_len, self.config.hidden);
        let enc = self.encode(g, batch);
        let flat = g.reshape(enc, &[b * s, h]);
        let dw = g.param(&self.params, self.mlm_dense_w);
        let db = g.param(&self.params, self.mlm_dense_b);
        let d = g.matmul(flat, dw);
        let d = g.add(d, db);
        let d = g.gelu(d);
        let d = self.layer_norm(g, d, self.mlm_ln_g, self.mlm_ln_b);
        // Tied decoder: project back through the transposed token-embedding
        // table, so MLM gradients also shape the embeddings directly. The
        // packed a·bᵀ kernel reads the `[V, H]` table in place — no `[H, V]`
        // transposed copy, and the gradient lands in the table's layout.
        let table = g.param(&self.params, self.tok_emb);
        let dec_b = g.param(&self.params, self.mlm_dec_b);
        let logits = g.matmul_bt(d, table);
        let logits = g.add(logits, dec_b);
        g.cross_entropy(logits, mlm_labels, clinfl_text::IGNORE_INDEX)
    }
}

impl SequenceClassifier for BertModel {
    fn params(&self) -> &Params {
        &self.params
    }

    fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    fn classification_loss(&self, g: &mut Graph, batch: &TokenBatch<'_>, labels: &[i32]) -> Var {
        assert_eq!(labels.len(), batch.batch_size, "one label per sequence");
        let logits = self.cls_logits(g, batch);
        g.cross_entropy(logits, labels, clinfl_text::IGNORE_INDEX)
    }

    fn predict_with(&self, g: &mut Graph, batch: &TokenBatch<'_>) -> Vec<usize> {
        g.reset();
        g.set_training(false);
        let logits = self.cls_logits(g, batch);
        g.value(logits).argmax_rows()
    }

    fn predict_proba_with(&self, g: &mut Graph, batch: &TokenBatch<'_>) -> Vec<Vec<f32>> {
        g.reset();
        g.set_training(false);
        let logits = self.cls_logits(g, batch);
        let probs = g.softmax(logits);
        let classes = self.config.num_classes;
        g.value(probs)
            .data()
            .chunks(classes)
            .map(<[f32]>::to_vec)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinfl_tensor::{Adam, Optimizer};
    use clinfl_text::IGNORE_INDEX;

    fn tiny_config() -> BertConfig {
        BertConfig {
            vocab_size: 30,
            hidden: 12,
            heads: 3,
            layers: 2,
            ffn: 24,
            max_seq_len: 8,
            dropout: 0.0,
            num_classes: 2,
        }
    }

    fn batch_data(b: usize, s: usize) -> (Vec<u32>, Vec<u8>) {
        let ids: Vec<u32> = (0..b * s).map(|i| 5 + (i as u32 % 20)).collect();
        let mask = vec![1u8; b * s];
        (ids, mask)
    }

    #[test]
    fn deterministic_construction() {
        let a = BertModel::new(&tiny_config(), 2);
        let b = BertModel::new(&tiny_config(), 2);
        assert_eq!(a.params().to_named(), b.params().to_named());
    }

    #[test]
    fn paper_param_counts_match_formula() {
        let vocab = 443;
        let seq = 36;
        for (cfg, name) in [
            (BertConfig::bert(vocab, seq), "BERT"),
            (BertConfig::bert_mini(vocab, seq), "BERT-mini"),
        ] {
            let m = BertModel::new(&cfg, 1);
            let h = cfg.hidden;
            let inner = cfg.attn_inner();
            let per_block = 2 * h + 2 * h             // two layer norms
                + 3 * (h * inner + inner)             // q, k, v
                + inner * h + h                       // output proj
                + h * cfg.ffn + cfg.ffn               // ffn in
                + cfg.ffn * h + h; // ffn out
            let expected = vocab * h + seq * h + 2 * h // embeddings + emb LN
                + cfg.layers * per_block
                + 2 * h                                // final LN
                + h * 2 + 2                            // cls head
                + h * h + h + 2 * h                    // mlm dense + head LN
                + vocab; // mlm decoder bias (weight tied to embeddings)
            assert_eq!(m.num_parameters(), expected, "{name}");
            assert!(m.num_backbone_parameters() < m.num_parameters());
        }
    }

    #[test]
    fn bert_has_more_parameters_than_mini() {
        let b = BertModel::new(&BertConfig::bert(443, 36), 1);
        let m = BertModel::new(&BertConfig::bert_mini(443, 36), 1);
        assert!(b.num_parameters() > 3 * m.num_parameters());
    }

    #[test]
    fn predict_shape() {
        let m = BertModel::new(&tiny_config(), 3);
        let (ids, mask) = batch_data(4, 8);
        let preds = m.predict(&TokenBatch {
            ids: &ids,
            mask: &mask,
            batch_size: 4,
            seq_len: 8,
        });
        assert_eq!(preds.len(), 4);
        assert!(preds.iter().all(|&p| p < 2));
    }

    #[test]
    fn padded_keys_are_ignored() {
        // Changing token ids at padded positions must not affect logits.
        let m = BertModel::new(&tiny_config(), 3);
        let mut ids = vec![2, 5, 6, 3, 0, 0, 0, 0];
        let mask = vec![1, 1, 1, 1, 0, 0, 0, 0];
        let batch = |ids: &[u32]| {
            let mut g = Graph::new();
            g.set_training(false);
            let b = TokenBatch {
                ids,
                mask: &mask,
                batch_size: 1,
                seq_len: 8,
            };
            let l = m.cls_logits(&mut g, &b);
            g.value(l).data().to_vec()
        };
        let before = batch(&ids);
        ids[5] = 17;
        ids[7] = 9;
        let after = batch(&ids);
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn predict_proba_rows_are_distributions() {
        let m = BertModel::new(&tiny_config(), 3);
        let (ids, mask) = batch_data(2, 8);
        let probs = m.predict_proba(&TokenBatch {
            ids: &ids,
            mask: &mask,
            batch_size: 2,
            seq_len: 8,
        });
        assert_eq!(probs.len(), 2);
        for row in &probs {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn mlm_loss_starts_near_log_vocab() {
        let m = BertModel::new(&tiny_config(), 4);
        let (ids, mask) = batch_data(2, 8);
        let labels: Vec<i32> = (0..16)
            .map(|i| if i % 3 == 0 { 6 } else { IGNORE_INDEX })
            .collect();
        let mut g = Graph::new();
        g.set_training(false);
        let loss = m.mlm_loss(
            &mut g,
            &TokenBatch {
                ids: &ids,
                mask: &mask,
                batch_size: 2,
                seq_len: 8,
            },
            &labels,
        );
        let expected = (30.0f32).ln();
        let got = g.value(loss).item();
        assert!(
            (got - expected).abs() < 1.0,
            "initial MLM loss {got} should be near ln|V| = {expected}"
        );
    }

    #[test]
    fn mlm_loss_decreases_with_training() {
        let mut m = BertModel::new(&tiny_config(), 5);
        let ids: Vec<u32> = vec![2, 5, 6, 7, 8, 9, 10, 3, 2, 5, 6, 7, 8, 9, 10, 3];
        let mask = vec![1u8; 16];
        // Predict position 3 (always token 7) and position 5 (always 9).
        let mut labels = vec![IGNORE_INDEX; 16];
        labels[3] = 7;
        labels[5] = 9;
        labels[11] = 7;
        labels[13] = 9;
        let mut masked = ids.clone();
        masked[3] = 4;
        masked[5] = 4;
        masked[11] = 4;
        masked[13] = 4;
        let batch = TokenBatch {
            ids: &masked,
            mask: &mask,
            batch_size: 2,
            seq_len: 8,
        };
        let mut opt = Adam::with_lr(0.01);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..40 {
            let mut g = Graph::new();
            let loss = m.mlm_loss(&mut g, &batch, &labels);
            last = g.value(loss).item();
            first.get_or_insert(last);
            g.backward(loss);
            g.grads_into(m.params_mut());
            opt.step(m.params_mut());
        }
        assert!(
            last < first.unwrap() * 0.3,
            "MLM loss did not fall: {:?} -> {last}",
            first
        );
    }

    #[test]
    fn classification_learns_order_task() {
        let mut m = BertModel::new(&tiny_config(), 6);
        let seqs: Vec<(Vec<u32>, i32)> = vec![
            (vec![2, 5, 6, 3], 1),
            (vec![2, 6, 5, 3], 0),
            (vec![2, 7, 5, 6], 1),
            (vec![2, 6, 7, 5], 0),
        ];
        let ids: Vec<u32> = seqs.iter().flat_map(|(s, _)| s.clone()).collect();
        let mask = vec![1u8; 16];
        let labels: Vec<i32> = seqs.iter().map(|(_, l)| *l).collect();
        let batch = TokenBatch {
            ids: &ids,
            mask: &mask,
            batch_size: 4,
            seq_len: 4,
        };
        let mut opt = Adam::with_lr(0.005);
        for _ in 0..80 {
            let mut g = Graph::new();
            let loss = m.classification_loss(&mut g, &batch, &labels);
            g.backward(loss);
            g.grads_into(m.params_mut());
            opt.step(m.params_mut());
        }
        assert_eq!(m.predict(&batch), vec![1, 0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "exceeds max_seq_len")]
    fn too_long_sequence_panics() {
        let m = BertModel::new(&tiny_config(), 3);
        let (ids, mask) = batch_data(1, 16);
        m.predict(&TokenBatch {
            ids: &ids,
            mask: &mask,
            batch_size: 1,
            seq_len: 16,
        });
    }
}
