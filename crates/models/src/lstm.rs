//! The recursive model: a stacked LSTM sequence classifier.

use crate::config::LstmConfig;
use crate::model::{SequenceClassifier, TokenBatch};
use clinfl_tensor::{Graph, Init, ParamId, Params, Tensor, Var};

/// Per-layer LSTM parameter handles (separate matrices per gate).
#[derive(Clone, Debug)]
struct LstmLayerParams {
    /// Input weights per gate `[in_dim, hidden]`, order i, f, g, o.
    w_x: [ParamId; 4],
    /// Recurrent weights per gate `[hidden, hidden]`.
    w_h: [ParamId; 4],
    /// Biases per gate `[hidden]`.
    b: [ParamId; 4],
}

/// The paper's LSTM-based diagnosis classifier (Table II: hidden 128,
/// 3 layers): embedding → stacked LSTM → final hidden state → linear head.
///
/// Padding is handled by carrying the previous hidden/cell state through
/// masked timesteps, so the "final" state is the state at each sequence's
/// last real token — the recurrent-model equivalent of `[CLS]` pooling.
#[derive(Clone, Debug)]
pub struct LstmClassifier {
    config: LstmConfig,
    params: Params,
    embedding: ParamId,
    layers: Vec<LstmLayerParams>,
    head_w: ParamId,
    head_b: ParamId,
}

const GATE_NAMES: [&str; 4] = ["i", "f", "g", "o"];

impl LstmClassifier {
    /// Builds the classifier with deterministic initialization in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see [`LstmConfig::validate`]).
    pub fn new(config: &LstmConfig, seed: u64) -> Self {
        config.validate();
        let mut params = Params::new();
        let h = config.hidden;
        let mut s = seed;
        let mut next_seed = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s
        };
        // Unlike BERT (whose LayerNorm rescales tiny embeddings), the LSTM
        // consumes embeddings raw: N(0, 0.02) would leave the gates pinned
        // near their bias values and stall learning, so use a conventional
        // recurrent-model scale.
        let embedding = params.register(
            "lstm.embedding",
            Init::Normal(0.2).tensor(&[config.vocab_size, h], next_seed()),
        );
        let mut layers = Vec::with_capacity(config.layers);
        for l in 0..config.layers {
            let make = |params: &mut Params, kind: &str, gate: &str, dims: &[usize], seed: u64| {
                params.register(
                    format!("lstm.l{l}.{kind}_{gate}"),
                    Init::XavierUniform.tensor(dims, seed),
                )
            };
            let w_x = GATE_NAMES.map(|gd| make(&mut params, "wx", gd, &[h, h], next_seed()));
            let w_h = GATE_NAMES.map(|gd| make(&mut params, "wh", gd, &[h, h], next_seed()));
            let b = GATE_NAMES.map(|gd| {
                // Forget-gate bias starts at 1.0 (standard LSTM practice) so
                // early training does not forget everything.
                let init = if gd == "f" {
                    Tensor::ones(&[h])
                } else {
                    Tensor::zeros(&[h])
                };
                params.register(format!("lstm.l{l}.b_{gd}"), init)
            });
            layers.push(LstmLayerParams { w_x, w_h, b });
        }
        let head_w = params.register(
            "lstm.head.w",
            Init::XavierUniform.tensor(&[h, config.num_classes], next_seed()),
        );
        let head_b = params.register("lstm.head.b", Tensor::zeros(&[config.num_classes]));
        LstmClassifier {
            config: *config,
            params,
            embedding,
            layers,
            head_w,
            head_b,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LstmConfig {
        &self.config
    }

    /// Total number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.params.num_elements()
    }

    /// Builds the encoder forward pass, returning the final hidden state of
    /// the top layer, shape `[batch, hidden]`.
    fn encode(&self, g: &mut Graph, batch: &TokenBatch<'_>) -> Var {
        batch.validate();
        let (b, s, h) = (batch.batch_size, batch.seq_len, self.config.hidden);
        let table = g.param(&self.params, self.embedding);

        // Per-timestep token embeddings: x_t = embed(ids[:, t])  [B, H].
        let mut xs: Vec<Var> = Vec::with_capacity(s);
        let mut keep_masks: Vec<(Var, Var)> = Vec::with_capacity(s);
        let mut ids_t = vec![0u32; b];
        for t in 0..s {
            for (bi, id) in ids_t.iter_mut().enumerate() {
                *id = batch.ids[bi * s + t];
            }
            xs.push(g.embedding(table, &ids_t));
            // Expanded carry masks: keep = m, hold = 1 - m, both [B, H],
            // written straight into pooled zeroed leaves.
            let keep = g.input_with(&[b, h], |data| {
                for bi in 0..b {
                    if batch.mask[bi * s + t] != 0 {
                        data[bi * h..(bi + 1) * h].fill(1.0);
                    }
                }
            });
            let hold = g.input_with(&[b, h], |data| {
                for bi in 0..b {
                    if batch.mask[bi * s + t] == 0 {
                        data[bi * h..(bi + 1) * h].fill(1.0);
                    }
                }
            });
            keep_masks.push((keep, hold));
        }

        let mut layer_input = xs;
        let mut last_h = None;
        for (li, layer) in self.layers.iter().enumerate() {
            let wx = layer.w_x.map(|id| g.param(&self.params, id));
            let wh = layer.w_h.map(|id| g.param(&self.params, id));
            let bias = layer.b.map(|id| g.param(&self.params, id));
            let mut h_prev = g.input_with(&[b, h], |_| {});
            let mut c_prev = g.input_with(&[b, h], |_| {});
            let mut outputs = Vec::with_capacity(s);
            for (t, &x_t) in layer_input.iter().enumerate() {
                let gate = |g: &mut Graph, k: usize| {
                    let xz = g.matmul(x_t, wx[k]);
                    let hz = g.matmul(h_prev, wh[k]);
                    let z = g.add(xz, hz);
                    g.add(z, bias[k])
                };
                let zi = gate(g, 0);
                let i_g = g.sigmoid(zi);
                let zf = gate(g, 1);
                let f_g = g.sigmoid(zf);
                let zg = gate(g, 2);
                let g_g = g.tanh(zg);
                let zo = gate(g, 3);
                let o_g = g.sigmoid(zo);
                let fc = g.mul(f_g, c_prev);
                let ig = g.mul(i_g, g_g);
                let c_new = g.add(fc, ig);
                let c_tanh = g.tanh(c_new);
                let h_new = g.mul(o_g, c_tanh);
                // Carry state through padded positions.
                let (keep, hold) = keep_masks[t];
                let hk = g.mul(h_new, keep);
                let hh = g.mul(h_prev, hold);
                let h_t = g.add(hk, hh);
                let ck = g.mul(c_new, keep);
                let ch = g.mul(c_prev, hold);
                let c_t = g.add(ck, ch);
                h_prev = h_t;
                c_prev = c_t;
                outputs.push(h_t);
            }
            // Inter-layer dropout (not after the top layer; the head has
            // its own dropout).
            if li + 1 < self.layers.len() {
                layer_input = outputs
                    .iter()
                    .map(|&o| g.dropout(o, self.config.dropout))
                    .collect();
            }
            last_h = Some(h_prev);
        }
        last_h.expect("at least one layer")
    }

    fn logits(&self, g: &mut Graph, batch: &TokenBatch<'_>) -> Var {
        let enc = self.encode(g, batch);
        let enc = g.dropout(enc, self.config.dropout);
        let w = g.param(&self.params, self.head_w);
        let bias = g.param(&self.params, self.head_b);
        let proj = g.matmul(enc, w);
        g.add(proj, bias)
    }
}

impl SequenceClassifier for LstmClassifier {
    fn params(&self) -> &Params {
        &self.params
    }

    fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    fn classification_loss(&self, g: &mut Graph, batch: &TokenBatch<'_>, labels: &[i32]) -> Var {
        assert_eq!(labels.len(), batch.batch_size, "one label per sequence");
        let logits = self.logits(g, batch);
        g.cross_entropy(logits, labels, clinfl_text::IGNORE_INDEX)
    }

    fn predict_with(&self, g: &mut Graph, batch: &TokenBatch<'_>) -> Vec<usize> {
        g.reset();
        g.set_training(false);
        let logits = self.logits(g, batch);
        g.value(logits).argmax_rows()
    }

    fn predict_proba_with(&self, g: &mut Graph, batch: &TokenBatch<'_>) -> Vec<Vec<f32>> {
        g.reset();
        g.set_training(false);
        let logits = self.logits(g, batch);
        let probs = g.softmax(logits);
        let classes = self.config.num_classes;
        g.value(probs)
            .data()
            .chunks(classes)
            .map(<[f32]>::to_vec)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinfl_tensor::{Adam, Optimizer};

    fn tiny_config() -> LstmConfig {
        LstmConfig {
            vocab_size: 20,
            hidden: 8,
            layers: 2,
            dropout: 0.0,
            num_classes: 2,
        }
    }

    fn batch_data(b: usize, s: usize) -> (Vec<u32>, Vec<u8>) {
        let ids: Vec<u32> = (0..b * s).map(|i| 5 + (i as u32 % 10)).collect();
        let mask = vec![1u8; b * s];
        (ids, mask)
    }

    #[test]
    fn deterministic_construction() {
        let a = LstmClassifier::new(&tiny_config(), 7);
        let b = LstmClassifier::new(&tiny_config(), 7);
        assert_eq!(a.params().to_named(), b.params().to_named());
        let c = LstmClassifier::new(&tiny_config(), 8);
        assert_ne!(a.params().to_named(), c.params().to_named());
    }

    #[test]
    fn paper_param_count() {
        // Table II LSTM: hidden 128, 3 layers, over a 443-token vocab.
        let cfg = LstmConfig::with_vocab(443);
        let m = LstmClassifier::new(&cfg, 1);
        let h = 128usize;
        let expected = 443 * h                     // embedding
            + 3 * (4 * h * h + 4 * h * h + 4 * h)  // 3 layers of gates
            + h * 2 + 2; // head
        assert_eq!(m.num_parameters(), expected);
    }

    #[test]
    fn predict_shape_and_range() {
        let m = LstmClassifier::new(&tiny_config(), 3);
        let (ids, mask) = batch_data(4, 6);
        let preds = m.predict(&TokenBatch {
            ids: &ids,
            mask: &mask,
            batch_size: 4,
            seq_len: 6,
        });
        assert_eq!(preds.len(), 4);
        assert!(preds.iter().all(|&p| p < 2));
    }

    #[test]
    fn padding_does_not_change_prediction() {
        // Appending padded timesteps must not alter the final state.
        let m = LstmClassifier::new(&tiny_config(), 3);
        let ids_short: Vec<u32> = vec![5, 6, 7, 8];
        let mask_short = vec![1u8; 4];
        let mut g1 = Graph::new();
        g1.set_training(false);
        let h1 = m.encode(
            &mut g1,
            &TokenBatch {
                ids: &ids_short,
                mask: &mask_short,
                batch_size: 1,
                seq_len: 4,
            },
        );
        let ids_padded: Vec<u32> = vec![5, 6, 7, 8, 0, 0];
        let mask_padded = vec![1, 1, 1, 1, 0, 0];
        let mut g2 = Graph::new();
        g2.set_training(false);
        let h2 = m.encode(
            &mut g2,
            &TokenBatch {
                ids: &ids_padded,
                mask: &mask_padded,
                batch_size: 1,
                seq_len: 6,
            },
        );
        let a = g1.value(h1).data();
        let b = g2.value(h2).data();
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn predict_proba_rows_are_distributions() {
        let m = LstmClassifier::new(&tiny_config(), 3);
        let (ids, mask) = batch_data(3, 5);
        let probs = m.predict_proba(&TokenBatch {
            ids: &ids,
            mask: &mask,
            batch_size: 3,
            seq_len: 5,
        });
        assert_eq!(probs.len(), 3);
        for row in &probs {
            assert_eq!(row.len(), 2);
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row sums to {sum}");
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        // argmax of proba agrees with predict.
        let preds = m.predict(&TokenBatch {
            ids: &ids,
            mask: &mask,
            batch_size: 3,
            seq_len: 5,
        });
        for (p, row) in preds.iter().zip(&probs) {
            let am = if row[1] > row[0] { 1 } else { 0 };
            assert_eq!(*p, am);
        }
    }

    #[test]
    fn loss_decreases_with_training() {
        // Order-sensitive toy task: label = 1 iff token 5 appears before
        // token 6.
        let m_cfg = tiny_config();
        let mut model = LstmClassifier::new(&m_cfg, 5);
        let seqs: Vec<(Vec<u32>, i32)> = vec![
            (vec![5, 6, 7, 7], 1),
            (vec![6, 5, 7, 7], 0),
            (vec![7, 5, 6, 7], 1),
            (vec![7, 6, 7, 5], 0),
            (vec![5, 7, 6, 7], 1),
            (vec![6, 7, 5, 7], 0),
        ];
        let ids: Vec<u32> = seqs.iter().flat_map(|(s, _)| s.clone()).collect();
        let mask = vec![1u8; ids.len()];
        let labels: Vec<i32> = seqs.iter().map(|(_, l)| *l).collect();
        let batch = TokenBatch {
            ids: &ids,
            mask: &mask,
            batch_size: 6,
            seq_len: 4,
        };
        let mut opt = Adam::with_lr(0.02);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let mut g = Graph::new();
            let loss = model.classification_loss(&mut g, &batch, &labels);
            last = g.value(loss).item();
            first.get_or_insert(last);
            g.backward(loss);
            g.grads_into(model.params_mut());
            opt.step(model.params_mut());
        }
        let first = first.unwrap();
        assert!(
            last < first * 0.5,
            "loss did not decrease: {first} -> {last}"
        );
        // And the model now classifies the training set correctly.
        assert_eq!(model.predict(&batch), vec![1, 0, 1, 0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "one label per sequence")]
    fn wrong_label_count_panics() {
        let m = LstmClassifier::new(&tiny_config(), 3);
        let (ids, mask) = batch_data(2, 4);
        let mut g = Graph::new();
        m.classification_loss(
            &mut g,
            &TokenBatch {
                ids: &ids,
                mask: &mask,
                batch_size: 2,
                seq_len: 4,
            },
            &[0],
        );
    }
}
