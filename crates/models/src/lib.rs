//! # clinfl-models
//!
//! The three clinical NLP models evaluated in *"Multi-Site Clinical
//! Federated Learning using Recursive and Attentive Models and NVFlare"*
//! (ICDCS 2023), built on the [`clinfl_tensor`] autograd engine:
//!
//! | Spec (paper Table II) | BERT | BERT-mini | LSTM |
//! |---|---|---|---|
//! | Hidden dimension      | 128  | 50        | 128  |
//! | Attention heads       | 6    | 2         | —    |
//! | Hidden layers         | 12   | 6         | 3    |
//!
//! * [`LstmClassifier`] — the *recursive* model: embedding → stacked LSTM
//!   (backpropagation through time) → final hidden state → linear head.
//! * [`BertModel`] — the *attentive* model: token + position embeddings →
//!   pre-LN transformer blocks → either a `[CLS]` classification head
//!   ([`BertModel::classification_loss`]) or an MLM head
//!   ([`BertModel::mlm_loss`]) for the paper's pretraining stage.
//!
//! All models implement [`SequenceClassifier`], the interface the
//! federated-learning executors train against, and expose their weights
//! through [`clinfl_tensor::Params`] for FL weight exchange.
//!
//! ```
//! use clinfl_models::{LstmClassifier, LstmConfig, SequenceClassifier, TokenBatch};
//!
//! let mut model = LstmClassifier::new(&LstmConfig { vocab_size: 50, ..LstmConfig::paper() }, 1);
//! let ids = vec![2, 5, 6, 3, 0, 0, 2, 7, 8, 3, 0, 0];
//! let mask = vec![1, 1, 1, 1, 0, 0, 1, 1, 1, 1, 0, 0];
//! let batch = TokenBatch { ids: &ids, mask: &mask, batch_size: 2, seq_len: 6 };
//! let preds = model.predict(&batch);
//! assert_eq!(preds.len(), 2);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod bert;
mod config;
mod lstm;
mod model;

pub use bert::BertModel;
pub use config::{BertConfig, LstmConfig};
pub use lstm::LstmClassifier;
pub use model::{ModelKind, SequenceClassifier, TokenBatch};
