//! Pipeline configuration (the paper's Table I, with a scale knob).

use clinfl_data::{CohortSpec, PretrainSpec};
use clinfl_flare::client::RetryPolicy;
use clinfl_flare::faults::FaultConfig;
use std::path::PathBuf;
use std::time::Duration;

/// Which of the paper's three models to build (Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelSpec {
    /// BERT: hidden 128, 6 heads, 12 layers.
    Bert,
    /// BERT-mini: hidden 50, 2 heads, 6 layers.
    BertMini,
    /// LSTM: hidden 128, 3 layers.
    Lstm,
}

impl ModelSpec {
    /// All three, in Table II column order.
    pub fn all() -> [ModelSpec; 3] {
        [ModelSpec::Bert, ModelSpec::BertMini, ModelSpec::Lstm]
    }

    /// Display name matching the paper's tables.
    pub fn as_str(self) -> &'static str {
        match self {
            ModelSpec::Bert => "BERT",
            ModelSpec::BertMini => "BERT-mini",
            ModelSpec::Lstm => "LSTM",
        }
    }
}

impl std::fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Optimization hyper-parameters for one training run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainHyper {
    /// Adam learning rate. Table I lists `1e-2`; that is stable for the
    /// LSTM but (as the paper itself notes in §IV-B3, "differences in
    /// optimization methods … learning rate") too aggressive for the
    /// transformers, which default lower here.
    pub lr: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Gradient-clipping max norm (0 disables).
    pub clip_norm: f32,
}

impl TrainHyper {
    /// Defaults for BERT MLM pretraining: smaller batches (more optimizer
    /// steps per pass over a scaled-down corpus) and a higher rate paired
    /// with the `MlmLearner`'s warmup schedule.
    pub fn for_mlm() -> Self {
        TrainHyper {
            lr: 2e-3,
            batch_size: 16,
            clip_norm: 1.0,
        }
    }

    /// Per-model defaults.
    pub fn for_model(model: ModelSpec) -> Self {
        match model {
            ModelSpec::Lstm => TrainHyper {
                // Table I lists Adam 1e-2; on this substrate 1e-2 spends
                // most of training on the majority-class plateau while
                // 3e-3 converges steadily (see EXPERIMENTS.md calibration
                // notes), so the default backs off by ~3x.
                lr: 3e-3,
                batch_size: 32,
                clip_norm: 5.0,
            },
            ModelSpec::Bert | ModelSpec::BertMini => TrainHyper {
                lr: 1e-3,
                batch_size: 32,
                clip_norm: 1.0,
            },
        }
    }
}

/// End-to-end pipeline configuration.
///
/// `paper()` mirrors Table I exactly (8 clients; 8,638-patient cohort split
/// 6,927 / 1,732 ≈ 80/20; pretraining corpus 453,377 / 8,683). Because the
/// reproduction substrate is a single-core CPU rather than the paper's
/// 4×RTX 2080 Ti + p3.8xlarge, `scale` divides the data volumes;
/// experiment records in EXPERIMENTS.md state the scale used per run.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Number of federated sites (paper: 8).
    pub n_clients: usize,
    /// Communication rounds `E` for fine-tuning.
    pub rounds: u32,
    /// Local epochs per round (Fig. 3 shows 10 local epochs).
    pub local_epochs: u32,
    /// Centralized / standalone training epochs (compute-matched to
    /// `rounds * local_epochs`).
    pub epochs: u32,
    /// Tokenizer sequence length.
    pub seq_len: usize,
    /// Train fraction of the cohort (paper: 6,927 / 8,638 ≈ 0.802).
    pub train_frac: f64,
    /// The synthetic cohort spec (scaled).
    pub cohort: CohortSpec,
    /// The synthetic pretraining corpus spec (scaled).
    pub pretrain: PretrainSpec,
    /// MLM pretraining epochs per scheme / rounds in FL pretraining.
    pub pretrain_rounds: u32,
    /// Master seed.
    pub seed: u64,
    /// Runtime fault-tolerance knobs for the federated phases.
    pub runtime: RuntimeConfig,
}

/// Fault-tolerance knobs threaded into the `clinfl-flare` runtime: fault
/// injection, round quorum, and the client retry policy. The defaults
/// (no faults, wait for every client) reproduce the pre-fault-layer
/// behavior exactly.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Deterministic link-fault injection profile.
    pub faults: FaultConfig,
    /// Minimum client updates required to aggregate a round.
    pub min_clients: usize,
    /// Deadline for gathering one round's updates.
    pub round_timeout: Duration,
    /// Once `min_clients` updates arrived, close the round this long
    /// after the last accepted update (`None` waits for everyone).
    pub quorum_grace: Option<Duration>,
    /// Client send/recv retry policy.
    pub retry: RetryPolicy,
    /// Persist round snapshots + the run checkpoint into this directory
    /// (crash-safe atomic writes). `None` disables on-disk checkpoints.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume the federated run from the checkpoint in `checkpoint_dir`
    /// instead of starting at round 0.
    pub resume: bool,
    /// Keep at most this many `round_<n>.cfw` files (oldest pruned
    /// first); `None` keeps all.
    pub retain_checkpoints: Option<usize>,
    /// Wire codec for weight exchange, as a codec string (e.g. `"raw"`,
    /// `"delta"`, `"delta+int8"`, `"delta+topk0.05+int8"`); see
    /// `clinfl_flare::codec::CodecSpec::parse` for the grammar.
    pub wire_codec: String,
    /// Quantizer override composed onto `wire_codec` (`"f32"`, `"f16"`,
    /// or `"int8"`); `None` keeps whatever `wire_codec` says.
    pub wire_quant: Option<String>,
    /// Top-k sparsification fraction override in `(0, 1]`, composed onto
    /// `wire_codec`; `None` keeps whatever `wire_codec` says.
    pub wire_topk: Option<f64>,
    /// Aggregation-tree depth (edges from the root to a leaf). `0` or
    /// `1` keeps the classic flat fleet; `>= 2` inserts layers of
    /// interior aggregator nodes (`clinfl_flare::relay`) so the root
    /// round cost stays `O(log n)` in the site count. The `CLINFL_TREE`
    /// environment knob still applies when this is left at `0`.
    pub tree_depth: u32,
    /// Maximum children per aggregation-tree node (only meaningful with
    /// `tree_depth >= 2`).
    pub tree_fanout: usize,
    /// Per-round client sampling fraction in `(0, 1]`. Each round the
    /// server seeds a deterministic draw of `ceil(fraction · n)` sites
    /// from `(seed, round)` and only they train; everyone still receives
    /// the validation broadcast. Values `>= 1.0` disable sampling and
    /// take the exact legacy (bit-identical) code path.
    pub client_sample_fraction: f64,
    /// DP-SGD clipping norm: each site's weight delta is clipped to this
    /// global L2 norm before Gaussian noise is added. `None` disables the
    /// DP filter entirely (no clipping, no noise, no accountant).
    pub dp_clip: Option<f32>,
    /// DP-SGD noise multiplier σ (noise std = `dp_sigma · dp_clip` per
    /// coordinate). Only meaningful with `dp_clip` set.
    pub dp_sigma: f32,
    /// Target δ of the (ε, δ) guarantee tracked by
    /// `clinfl_flare::privacy::DpAccountant`.
    pub dp_delta: f64,
    /// FedProx proximal coefficient μ: local training adds
    /// `μ/2 · ‖w − w_global‖²` to anchor sites near the global model
    /// under non-IID drift. `None` keeps plain FedAvg local training.
    pub fedprox_mu: Option<f32>,
    /// Post-FL personalization: each site fine-tunes the final global
    /// model on its own shard for this many local epochs (0 disables).
    pub personalize_epochs: u32,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            faults: FaultConfig::none(),
            min_clients: 1,
            round_timeout: Duration::from_secs(3600),
            quorum_grace: None,
            retry: RetryPolicy::default(),
            checkpoint_dir: None,
            resume: false,
            retain_checkpoints: None,
            wire_codec: "raw".to_string(),
            wire_quant: None,
            wire_topk: None,
            tree_depth: 0,
            tree_fanout: 8,
            client_sample_fraction: 1.0,
            dp_clip: None,
            dp_sigma: 1.0,
            dp_delta: 1e-5,
            fedprox_mu: None,
            personalize_epochs: 0,
        }
    }
}

impl RuntimeConfig {
    /// Resolves the `wire_codec`/`wire_quant`/`wire_topk` knobs into one
    /// codec spec: the base string is parsed, then the quantizer and
    /// top-k overrides (CLI conveniences) are composed onto it.
    ///
    /// # Errors
    ///
    /// A human-readable message for unparseable specs or out-of-range
    /// overrides.
    pub fn wire_spec(&self) -> Result<clinfl_flare::codec::CodecSpec, String> {
        use clinfl_flare::codec::{CodecSpec, QuantMode};
        let mut spec = CodecSpec::parse(&self.wire_codec)?;
        if let Some(q) = &self.wire_quant {
            spec.quant = match q.to_ascii_lowercase().as_str() {
                "f32" | "raw" => QuantMode::F32,
                "f16" => QuantMode::F16,
                "int8" => QuantMode::Int8,
                other => return Err(format!("unknown wire_quant {other:?}")),
            };
        }
        if let Some(f) = self.wire_topk {
            if !(f > 0.0 && f <= 1.0) {
                return Err(format!("wire_topk {f} outside (0, 1]"));
            }
            spec.topk_permille = Some(((f * 1000.0).round() as u16).clamp(1, 1000));
        }
        Ok(spec)
    }

    /// Resolves the DP-SGD knobs: `Ok(None)` when DP is off (`dp_clip`
    /// unset), `Ok(Some((clip, sigma)))` when on and in range.
    ///
    /// # Errors
    ///
    /// A human-readable message when `dp_clip`, `dp_sigma`, or `dp_delta`
    /// is out of range.
    pub fn dp_params(&self) -> Result<Option<(f32, f32)>, String> {
        let Some(clip) = self.dp_clip else {
            return Ok(None);
        };
        if !(clip > 0.0 && clip.is_finite()) {
            return Err(format!("dp_clip {clip} must be a positive finite norm"));
        }
        if !(self.dp_sigma > 0.0 && self.dp_sigma.is_finite()) {
            return Err(format!(
                "dp_sigma {} must be a positive finite noise multiplier",
                self.dp_sigma
            ));
        }
        if !(self.dp_delta > 0.0 && self.dp_delta < 1.0) {
            return Err(format!("dp_delta {} must be in (0, 1)", self.dp_delta));
        }
        Ok(Some((clip, self.dp_sigma)))
    }
}

impl PipelineConfig {
    /// The paper's full-scale configuration (Table I). Expect hours of CPU
    /// time; use [`PipelineConfig::scaled`] for routine runs.
    pub fn paper() -> Self {
        PipelineConfig {
            n_clients: 8,
            rounds: 10,
            local_epochs: 2,
            epochs: 20,
            seq_len: 26,
            train_frac: 0.802,
            cohort: CohortSpec::default(),
            pretrain: PretrainSpec {
                scale: 1,
                ..PretrainSpec::default()
            },
            pretrain_rounds: 10,
            seed: 20230,
            runtime: RuntimeConfig::default(),
        }
    }

    /// Paper configuration with data volumes divided by `scale` and a
    /// matching compute budget (the default experiment setting; see
    /// EXPERIMENTS.md).
    pub fn scaled(scale: usize) -> Self {
        let scale = scale.max(1);
        let mut cfg = PipelineConfig::paper();
        cfg.cohort.n_patients = (cfg.cohort.n_patients / scale).max(64);
        cfg.pretrain.scale = 16 * scale;
        if scale >= 4 {
            cfg.rounds = 5;
            cfg.local_epochs = 2;
            cfg.epochs = 10;
            cfg.pretrain_rounds = 6;
        }
        cfg
    }

    /// A seconds-scale configuration for tests and the quickstart example.
    pub fn fast_demo() -> Self {
        let mut cfg = PipelineConfig::scaled(32);
        cfg.cohort.n_patients = 240;
        cfg.rounds = 2;
        cfg.local_epochs = 1;
        cfg.epochs = 2;
        cfg.pretrain_rounds = 2;
        cfg.pretrain.scale = 2048;
        cfg
    }

    /// The paper's imbalanced-site partitioner (§IV-B1 ratios).
    pub fn imbalanced_partitioner(&self) -> clinfl_data::SitePartitioner {
        assert_eq!(
            self.n_clients, 8,
            "the paper's imbalanced ratios are defined for 8 clients"
        );
        clinfl_data::SitePartitioner::paper_imbalanced()
    }

    /// A balanced partitioner over `n_clients`.
    pub fn balanced_partitioner(&self) -> clinfl_data::SitePartitioner {
        clinfl_data::SitePartitioner::Balanced {
            n_sites: self.n_clients,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts() {
        let cfg = PipelineConfig::paper();
        assert_eq!(cfg.n_clients, 8);
        assert_eq!(cfg.cohort.n_patients, 8_638);
        assert_eq!(cfg.pretrain.n_train(), 453_377);
        assert_eq!(cfg.pretrain.n_valid(), 8_683);
        // 80/20 split reproduces the paper's 6,927 / 1,732 within rounding.
        let train = (8_638.0 * cfg.train_frac).round() as usize;
        assert_eq!(train, 6_928); // vs paper 6,927 (±1 from their rounding)
        assert_eq!(8_638 - train, 1_710);
    }

    #[test]
    fn scaled_reduces_volume() {
        let cfg = PipelineConfig::scaled(4);
        assert_eq!(cfg.cohort.n_patients, 2_159);
        assert!(cfg.pretrain.n_train() < 10_000);
        assert_eq!(cfg.rounds, 5);
    }

    #[test]
    fn hyper_defaults_differ_by_model() {
        assert!(
            TrainHyper::for_model(ModelSpec::Lstm).lr > TrainHyper::for_model(ModelSpec::Bert).lr
        );
    }

    #[test]
    fn dp_params_validate() {
        let mut rt = RuntimeConfig::default();
        assert_eq!(rt.dp_params(), Ok(None));
        rt.dp_clip = Some(1.0);
        assert_eq!(rt.dp_params(), Ok(Some((1.0, 1.0))));
        rt.dp_sigma = 0.0;
        assert!(rt.dp_params().is_err());
        rt.dp_sigma = 1.0;
        rt.dp_delta = 1.0;
        assert!(rt.dp_params().is_err());
    }

    #[test]
    fn model_spec_names() {
        assert_eq!(ModelSpec::Bert.to_string(), "BERT");
        assert_eq!(ModelSpec::all().len(), 3);
    }
}
