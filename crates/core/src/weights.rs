//! Conversions between the autograd parameter store and the federated
//! wire format.

use clinfl_flare::{WeightTensor, Weights};
use clinfl_tensor::{Params, Tensor};

/// Exports a [`Params`] store as federated [`Weights`].
pub fn params_to_weights(params: &Params) -> Weights {
    params
        .iter()
        .map(|(_, name, t)| {
            (
                name.to_string(),
                WeightTensor::new(t.dims().to_vec(), t.data().to_vec()),
            )
        })
        .collect()
}

/// Loads federated [`Weights`] into a [`Params`] store (matching by name).
/// Returns the number of parameters updated.
///
/// # Panics
///
/// Panics if a named tensor has a different shape locally — that means two
/// sites built different architectures, which must fail loudly.
pub fn weights_to_params(weights: &Weights, params: &mut Params) -> usize {
    let named = weights
        .iter()
        .map(|(name, wt)| {
            (
                name.clone(),
                Tensor::from_vec(&wt.dims, wt.data.clone())
                    .expect("wire tensors are shape-checked at decode"),
            )
        })
        .collect();
    params.load_named(&named)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_values() {
        let mut p = Params::new();
        p.register("a", Tensor::randn(&[3, 2], 1.0, 1));
        p.register("b", Tensor::ones(&[4]));
        let w = params_to_weights(&p);
        assert_eq!(w.len(), 2);
        assert_eq!(w["a"].dims, vec![3, 2]);

        let mut q = Params::new();
        q.register("a", Tensor::zeros(&[3, 2]));
        q.register("b", Tensor::zeros(&[4]));
        assert_eq!(weights_to_params(&w, &mut q), 2);
        assert_eq!(
            q.value(q.id_of("a").unwrap()),
            p.value(p.id_of("a").unwrap())
        );
    }

    #[test]
    fn extra_wire_tensors_ignored() {
        let mut p = Params::new();
        p.register("a", Tensor::zeros(&[2]));
        let mut w = params_to_weights(&p);
        w.insert("extra".into(), WeightTensor::new(vec![1], vec![5.0]));
        let mut q = Params::new();
        q.register("a", Tensor::zeros(&[2]));
        assert_eq!(weights_to_params(&w, &mut q), 1);
    }
}
