//! Conversions between the autograd parameter store and the federated
//! wire format.

use clinfl_flare::{WeightTensor, Weights};
use clinfl_tensor::{Params, Tensor};

/// Exports a [`Params`] store as federated [`Weights`].
pub fn params_to_weights(params: &Params) -> Weights {
    params
        .iter()
        .map(|(_, name, t)| {
            (
                name.to_string(),
                WeightTensor::new(t.dims().to_vec(), t.data().to_vec()),
            )
        })
        .collect()
}

/// Loads federated [`Weights`] into a [`Params`] store (matching by name).
/// Returns the number of parameters updated.
///
/// # Panics
///
/// Panics if a named tensor has a different shape locally — that means two
/// sites built different architectures, which must fail loudly.
pub fn weights_to_params(weights: &Weights, params: &mut Params) -> usize {
    params.copy_values_from(|name| {
        weights
            .get(name)
            .map(|wt| (wt.dims.as_slice(), wt.data.as_slice()))
    })
}

/// Loads federated [`Weights`] into a [`Params`] store by value, moving each
/// tensor's buffer into place instead of copying (the consuming counterpart
/// of [`weights_to_params`] for payloads the caller no longer needs).
/// Returns the number of parameters updated.
///
/// # Panics
///
/// Panics if a named tensor has a different shape locally (architecture
/// mismatch between sites).
pub fn weights_into_params(mut weights: Weights, params: &mut Params) -> usize {
    params.replace_values(|name| {
        weights.remove(name).map(|wt| {
            let (dims, data) = wt.into_parts();
            Tensor::from_vec(&dims, data).expect("wire tensors are shape-checked at decode")
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_values() {
        let mut p = Params::new();
        p.register("a", Tensor::randn(&[3, 2], 1.0, 1));
        p.register("b", Tensor::ones(&[4]));
        let w = params_to_weights(&p);
        assert_eq!(w.len(), 2);
        assert_eq!(w["a"].dims, vec![3, 2]);

        let mut q = Params::new();
        q.register("a", Tensor::zeros(&[3, 2]));
        q.register("b", Tensor::zeros(&[4]));
        assert_eq!(weights_to_params(&w, &mut q), 2);
        assert_eq!(
            q.value(q.id_of("a").unwrap()),
            p.value(p.id_of("a").unwrap())
        );
    }

    #[test]
    fn consuming_load_matches_copying_load() {
        let mut p = Params::new();
        p.register("a", Tensor::randn(&[2, 3], 1.0, 7));
        let w = params_to_weights(&p);
        let mut q = Params::new();
        q.register("a", Tensor::zeros(&[2, 3]));
        assert_eq!(weights_into_params(w, &mut q), 1);
        assert_eq!(
            q.value(q.id_of("a").unwrap()),
            p.value(p.id_of("a").unwrap())
        );
    }

    #[test]
    fn extra_wire_tensors_ignored() {
        let mut p = Params::new();
        p.register("a", Tensor::zeros(&[2]));
        let mut w = params_to_weights(&p);
        w.insert("extra".into(), WeightTensor::new(vec![1], vec![5.0]));
        let mut q = Params::new();
        q.register("a", Tensor::zeros(&[2]));
        assert_eq!(weights_to_params(&w, &mut q), 1);
    }
}
