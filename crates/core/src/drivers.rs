//! Training drivers for the paper's three schemes (centralized /
//! standalone / federated) and the four MLM pretraining regimes.

use crate::config::{ModelSpec, PipelineConfig, TrainHyper};
use crate::executor::{ClinicalExecutor, MlmExecutor};
use crate::learner::{Learner, MlmLearner};
use clinfl_data::{generate_cohort, generate_corpus, ClassifyDataset, CodeSystem, SitePartitioner};
use clinfl_flare::aggregator::WeightedFedAvg;
use clinfl_flare::controller::SagConfig;
use clinfl_flare::filters::{DpGaussian, FilterChain};
use clinfl_flare::privacy::DpAccountant;
use clinfl_flare::simulator::{SimulatorConfig, SimulatorRunner, TreeConfig};
use clinfl_flare::{EventLog, FlareError};
use clinfl_models::BertConfig;
use clinfl_tensor::LrSchedule;
use clinfl_text::{ClinicalTokenizer, Encoded};
use std::collections::BTreeMap;

/// Tokenized data for the fine-tuning task.
#[derive(Clone, Debug)]
pub struct TaskData {
    /// Shared code system / vocabulary.
    pub code_system: CodeSystem,
    /// The tokenizer all sites share.
    pub tokenizer: ClinicalTokenizer,
    /// Pooled training split.
    pub train: ClassifyDataset,
    /// Held-out validation split.
    pub valid: ClassifyDataset,
}

/// Builds the synthetic cohort and tokenizes it per the config.
pub fn build_task_data(cfg: &PipelineConfig) -> TaskData {
    let code_system = CodeSystem::new();
    let cohort = generate_cohort(&code_system, &cfg.cohort);
    let tokenizer = ClinicalTokenizer::new(code_system.vocab().clone(), cfg.seq_len);
    let dataset = ClassifyDataset::from_cohort(&cohort, &tokenizer);
    let (train, valid) = dataset.split(cfg.train_frac, cfg.seed ^ 0x5917);
    TaskData {
        code_system,
        tokenizer,
        train,
        valid,
    }
}

/// Result of one training scheme.
#[derive(Clone, Debug)]
pub struct TrainOutcome {
    /// Final top-1 accuracy on the held-out validation split.
    pub accuracy: f64,
    /// Per-epoch (or per-round) `(train_loss, valid_acc)` history.
    pub history: Vec<(f64, f64)>,
    /// The run's event log (federated runs only).
    pub log: Option<EventLog>,
    /// Per-site accuracy after post-FL personalization (each site
    /// fine-tunes the final global model on its own shard for
    /// `RuntimeConfig::personalize_epochs` local epochs). Empty when
    /// personalization is disabled.
    pub personalized_per_site: Vec<f64>,
    /// Mean of `personalized_per_site` (`None` when disabled).
    pub personalized_mean: Option<f64>,
    /// Cumulative `(ε, δ)` from the DP accountant (`None` when DP-SGD is
    /// off).
    pub privacy: Option<(f64, f64)>,
}

/// Centralized training: one model over the pooled dataset — the paper's
/// upper-bound scheme.
pub fn train_centralized(cfg: &PipelineConfig, spec: ModelSpec) -> TrainOutcome {
    let _run_span = clinfl_obs::span("run");
    let data = build_task_data(cfg);
    let outcome = centralized_on(cfg, spec, &data.train, &data.valid, cfg.seed);
    if clinfl_obs::enabled() {
        let _ = clinfl_obs::snapshot().write_artifact(&format!("centralized-{spec:?}"));
    }
    outcome
}

fn centralized_on(
    cfg: &PipelineConfig,
    spec: ModelSpec,
    train: &ClassifyDataset,
    valid: &ClassifyDataset,
    seed: u64,
) -> TrainOutcome {
    let hyper = TrainHyper::for_model(spec);
    let vocab_size = CodeSystem::new().vocab().len();
    let mut learner = Learner::new(spec, vocab_size, cfg.seq_len, hyper, seed);
    let mut history = Vec::with_capacity(cfg.epochs as usize);
    for _ in 0..cfg.epochs {
        let stats = learner.train_epoch(train);
        let acc = learner.evaluate(valid);
        history.push((stats.mean_loss, acc));
    }
    TrainOutcome {
        accuracy: learner.evaluate(valid),
        history,
        log: None,
        personalized_per_site: Vec::new(),
        personalized_mean: None,
        privacy: None,
    }
}

/// Result of standalone (per-site, no collaboration) training.
#[derive(Clone, Debug)]
pub struct StandaloneOutcome {
    /// Accuracy of each site's local model on the shared validation split.
    pub per_site: Vec<f64>,
    /// Mean over sites (the single number reported in Table III).
    pub mean_accuracy: f64,
}

/// Standalone training: each site trains its own model on its (imbalanced)
/// local shard only — the paper's lower-bound scheme.
pub fn train_standalone(cfg: &PipelineConfig, spec: ModelSpec) -> StandaloneOutcome {
    let data = build_task_data(cfg);
    let shards = cfg
        .imbalanced_partitioner()
        .partition(&data.train, cfg.seed ^ 0xA17);
    // Sites are independent, so train them on their own threads; each one
    // holds a compute permit, bounding concurrency to CLINFL_THREADS (and
    // restoring the serial order of work with a budget of 1). Results are
    // keyed by site index, so the output never depends on the schedule.
    let mut per_site = vec![0.0f64; shards.len()];
    std::thread::scope(|s| {
        for (i, (shard, slot)) in shards.iter().zip(per_site.iter_mut()).enumerate() {
            let valid = &data.valid;
            s.spawn(move || {
                let _permit = clinfl_tensor::pool::compute_permit();
                *slot = centralized_on(cfg, spec, shard, valid, cfg.seed.wrapping_add(i as u64))
                    .accuracy;
            });
        }
    });
    let mean_accuracy = per_site.iter().sum::<f64>() / per_site.len().max(1) as f64;
    if clinfl_obs::enabled() {
        let _ = clinfl_obs::snapshot().write_artifact(&format!("standalone-{spec:?}"));
    }
    StandaloneOutcome {
        per_site,
        mean_accuracy,
    }
}

fn simulator_config(cfg: &PipelineConfig) -> Result<SimulatorConfig, FlareError> {
    let wire = cfg
        .runtime
        .wire_spec()
        .map_err(|e| FlareError::Codec(format!("bad wire codec config: {e}")))?;
    Ok(SimulatorConfig {
        n_clients: cfg.n_clients,
        sag: SagConfig {
            rounds: cfg.rounds,
            min_clients: cfg.runtime.min_clients,
            round_timeout: cfg.runtime.round_timeout,
            validate_global: true, // doubles as the unsampled clients' keepalive
            quorum_grace: cfg.runtime.quorum_grace,
            resume_from: None, // loaded by the simulator when `resume` is set
            client_sample_fraction: cfg.runtime.client_sample_fraction,
        },
        seed: cfg.seed,
        behaviors: BTreeMap::new(),
        faults: cfg.runtime.faults.clone(),
        retry: cfg.runtime.retry,
        checkpoint_dir: cfg.runtime.checkpoint_dir.clone(),
        resume: cfg.runtime.resume,
        retain_checkpoints: cfg.runtime.retain_checkpoints,
        wire,
        wire_overrides: BTreeMap::new(),
        server_codecs_enabled: true,
        tree: (cfg.runtime.tree_depth >= 2).then(|| TreeConfig {
            depth: cfg.runtime.tree_depth,
            fanout: cfg.runtime.tree_fanout.max(2),
        }),
    })
}

/// Federated training over the paper's 8-site imbalanced partition using
/// the ScatterAndGather workflow and weighted FedAvg.
///
/// # Errors
///
/// Propagates runtime failures from the simulator.
pub fn train_federated(cfg: &PipelineConfig, spec: ModelSpec) -> Result<TrainOutcome, FlareError> {
    train_federated_with(cfg, spec, &cfg.imbalanced_partitioner(), EventLog::new())
}

/// Federated training with an explicit partitioner and log (used by the
/// benches for the balanced-vs-imbalanced ablation and the Fig. 3 demo).
///
/// # Errors
///
/// Propagates runtime failures from the simulator.
pub fn train_federated_with(
    cfg: &PipelineConfig,
    spec: ModelSpec,
    partitioner: &SitePartitioner,
    log: EventLog,
) -> Result<TrainOutcome, FlareError> {
    let data = build_task_data(cfg);
    let shards = partitioner.partition(&data.train, cfg.seed ^ 0xA17);
    let hyper = TrainHyper::for_model(spec);
    let vocab_size = data.code_system.vocab().len();

    let dp = cfg
        .runtime
        .dp_params()
        .map_err(|e| FlareError::Codec(format!("bad DP config: {e}")))?;

    let seed_learner = Learner::new(spec, vocab_size, cfg.seq_len, hyper, cfg.seed);
    let initial = seed_learner.export_weights();

    let runner = SimulatorRunner::with_log(simulator_config(cfg)?, log.clone());
    let valid = data.valid.clone();
    let result = runner.run(
        initial,
        |i, _site| {
            let learner = Learner::new(spec, vocab_size, cfg.seq_len, hyper, cfg.seed);
            let mut executor = ClinicalExecutor::new(
                learner,
                shards[i].clone(),
                valid.clone(),
                cfg.local_epochs,
                log.clone(),
            );
            if let Some(mu) = cfg.runtime.fedprox_mu {
                executor = executor.with_prox(mu);
            }
            Box::new(executor)
        },
        &WeightedFedAvg,
        |i| {
            // With DP on, every site's outgoing update is clipped and
            // noised before it leaves the client — the server only ever
            // sees the privatized delta.
            let mut chain = FilterChain::new();
            if let Some((clip, sigma)) = dp {
                chain.push(Box::new(DpGaussian {
                    clip_norm: clip,
                    sigma,
                    seed: cfg.seed ^ (i as u64 + 1).wrapping_mul(0xD1FF),
                }));
            }
            chain
        },
    )?;

    // DP accounting: one noised release per completed round, amplified by
    // the effective per-round sampling rate k/n (mirroring
    // `clinfl_flare::controller::sample_sites`' k = ceil(fraction·n)).
    let privacy = dp.map(|(_clip, sigma)| {
        let n = cfg.n_clients.max(1);
        let fraction = cfg.runtime.client_sample_fraction;
        let q = if fraction >= 1.0 {
            1.0
        } else {
            ((fraction.max(0.0) * n as f64).ceil() as usize).clamp(1, n) as f64 / n as f64
        };
        let mut acc = DpAccountant::new(f64::from(sigma), q, cfg.runtime.dp_delta);
        for _ in &result.workflow.rounds {
            acc.step();
        }
        acc.publish(&clinfl_obs::Registry::global());
        (acc.epsilon(), acc.delta())
    });

    // Server-side final evaluation of the aggregated model on the full
    // validation split.
    let final_weights = &result.workflow.final_weights;
    let mut eval = Learner::new(spec, vocab_size, cfg.seq_len, hyper, cfg.seed);
    eval.load_weights(final_weights);
    let accuracy = eval.evaluate(&data.valid);

    // Personalization arm: each site fine-tunes the final global model on
    // its own shard, in parallel under the compute-permit budget (same
    // scheme as `train_standalone`; results keyed by site index, so the
    // output never depends on the thread schedule).
    let mut personalized_per_site = Vec::new();
    if cfg.runtime.personalize_epochs > 0 {
        personalized_per_site = vec![0.0f64; shards.len()];
        std::thread::scope(|s| {
            for (i, (shard, slot)) in shards
                .iter()
                .zip(personalized_per_site.iter_mut())
                .enumerate()
            {
                let valid = &data.valid;
                s.spawn(move || {
                    let _permit = clinfl_tensor::pool::compute_permit();
                    let mut learner = Learner::new(
                        spec,
                        vocab_size,
                        cfg.seq_len,
                        hyper,
                        cfg.seed.wrapping_add(0x9E + i as u64),
                    );
                    learner.load_weights(final_weights);
                    for _ in 0..cfg.runtime.personalize_epochs {
                        learner.train_epoch(shard);
                    }
                    *slot = learner.evaluate(valid);
                });
            }
        });
    }
    let personalized_mean = (!personalized_per_site.is_empty())
        .then(|| personalized_per_site.iter().sum::<f64>() / personalized_per_site.len() as f64);

    let history = result
        .workflow
        .rounds
        .iter()
        .map(|r| {
            let mean_loss = r
                .client_metrics
                .values()
                .filter_map(|m| m.get("train_loss"))
                .sum::<f64>()
                / r.client_metrics.len().max(1) as f64;
            (mean_loss, r.global_metric.unwrap_or(0.0))
        })
        .collect();
    Ok(TrainOutcome {
        accuracy,
        history,
        log: Some(result.log),
        personalized_per_site,
        personalized_mean,
        privacy,
    })
}

// ---------------------------------------------------------------------
// Serve mode (multi-tenant job runtime)
// ---------------------------------------------------------------------

/// Builds the job factory behind `clinfl serve`: each submitted
/// [`clinfl_flare::job::JobConfig`] becomes a private clinical
/// federation at `base`'s scale. The config's `model` key picks the
/// architecture (`lstm` / `bert` / `bert-mini`, default `lstm`),
/// `clients` sizes a balanced partition, and `seed` (if set) re-seeds
/// data generation and training so two same-seed jobs are bit-identical.
/// With `checkpoint_root`, every job persists into its own
/// `job-<n>-<name>` subdirectory — never a shared one, which the
/// persistor's lock file would refuse anyway.
pub fn serve_job_factory(
    base: PipelineConfig,
    checkpoint_root: Option<std::path::PathBuf>,
) -> clinfl_flare::admin::JobFactory {
    let seq = std::sync::atomic::AtomicU64::new(1);
    Box::new(move |config: clinfl_flare::job::JobConfig| {
        let model = match config.model.as_deref() {
            None | Some("lstm") => ModelSpec::Lstm,
            Some("bert") => ModelSpec::Bert,
            Some("bert-mini") | Some("bert_mini") => ModelSpec::BertMini,
            Some(other) => {
                return Err(FlareError::Codec(format!(
                    "unknown model {other:?} (expected lstm, bert, bert-mini)"
                )))
            }
        };
        let mut cfg = base.clone();
        cfg.n_clients = config.clients;
        cfg.rounds = config.rounds;
        if let Some(seed) = config.seed {
            cfg.seed = seed;
        }
        let data = build_task_data(&cfg);
        let shards = cfg
            .balanced_partitioner()
            .partition(&data.train, cfg.seed ^ 0xA17);
        let hyper = TrainHyper::for_model(model);
        let vocab_size = data.code_system.vocab().len();
        let initial =
            Learner::new(model, vocab_size, cfg.seq_len, hyper, cfg.seed).export_weights();
        let valid = data.valid;
        let log = EventLog::new();
        let (seed, seq_len, local_epochs) = (cfg.seed, cfg.seq_len, cfg.local_epochs);
        let checkpoint_dir = checkpoint_root.as_ref().map(|root| {
            root.join(format!(
                "job-{}-{}",
                seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                config.name
            ))
        });
        Ok(clinfl_flare::jobs::JobSpec {
            seed,
            initial,
            make_executor: Box::new(move |i, _site| {
                let learner = Learner::new(model, vocab_size, seq_len, hyper, seed);
                Box::new(ClinicalExecutor::new(
                    learner,
                    shards[i % shards.len()].clone(),
                    valid.clone(),
                    local_epochs,
                    log.clone(),
                ))
            }),
            checkpoint_dir,
            config,
        })
    })
}

// ---------------------------------------------------------------------
// MLM pretraining (paper Fig. 2)
// ---------------------------------------------------------------------

/// The four pretraining regimes of the paper's Fig. 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MlmScheme {
    /// All data on one node (upper bound).
    Centralized,
    /// One site's share only (lower bound, "BERT utilizing a small
    /// dataset").
    SmallData,
    /// Federated over the paper's imbalanced 8-site split.
    FlImbalanced,
    /// Federated over a balanced 8-site split.
    FlBalanced,
}

impl MlmScheme {
    /// All four, in the paper's order.
    pub fn all() -> [MlmScheme; 4] {
        [
            MlmScheme::Centralized,
            MlmScheme::SmallData,
            MlmScheme::FlImbalanced,
            MlmScheme::FlBalanced,
        ]
    }

    /// Label used in Fig. 2's legend.
    pub fn as_str(self) -> &'static str {
        match self {
            MlmScheme::Centralized => "BERT (centralized)",
            MlmScheme::SmallData => "BERT (small dataset)",
            MlmScheme::FlImbalanced => "BERT (FL, imbalanced)",
            MlmScheme::FlBalanced => "BERT (FL, balanced)",
        }
    }
}

impl std::fmt::Display for MlmScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tokenized pretraining corpus.
#[derive(Clone, Debug)]
pub struct MlmData {
    /// Training sequences.
    pub train: Vec<Encoded>,
    /// Held-out sequences (loss curve measurements).
    pub valid: Vec<Encoded>,
    /// Vocabulary size.
    pub vocab_size: usize,
}

/// Generates and tokenizes the pretraining corpus.
pub fn build_mlm_data(cfg: &PipelineConfig) -> MlmData {
    let cs = CodeSystem::new();
    let corpus = generate_corpus(&cs, &cfg.pretrain);
    let tokenizer = ClinicalTokenizer::new(cs.vocab().clone(), cfg.seq_len);
    let encode = |seqs: &[Vec<String>]| -> Vec<Encoded> {
        seqs.iter().map(|s| tokenizer.encode(s)).collect()
    };
    MlmData {
        train: encode(&corpus.train),
        valid: encode(&corpus.valid),
        vocab_size: cs.vocab().len(),
    }
}

/// Runs one MLM pretraining scheme, returning the per-round validation
/// loss curve (the series plotted in Fig. 2). The initial point is the
/// untrained model's loss (≈ `ln |V|`).
///
/// # Errors
///
/// Propagates simulator failures for the FL schemes.
pub fn pretrain_mlm(
    cfg: &PipelineConfig,
    scheme: MlmScheme,
    data: &MlmData,
) -> Result<Vec<f64>, FlareError> {
    let hyper = TrainHyper::for_mlm();
    let bert = BertConfig::bert(data.vocab_size, cfg.seq_len);
    match scheme {
        MlmScheme::Centralized | MlmScheme::SmallData => {
            let train: Vec<Encoded> = match scheme {
                MlmScheme::Centralized => data.train.clone(),
                _ => {
                    // One balanced site's share (1/n of the data).
                    let per = (data.train.len() / cfg.n_clients).max(1);
                    data.train[..per].to_vec()
                }
            };
            let mut learner =
                MlmLearner::new(&bert, CodeSystem::new().vocab().clone(), hyper, cfg.seed);
            learner.set_schedule(mlm_warmup(cfg, train.len(), hyper.batch_size));
            let mut curve = vec![learner.eval_loss(&data.valid)];
            for _ in 0..cfg.pretrain_rounds {
                learner.train_epoch(&train);
                curve.push(learner.eval_loss(&data.valid));
            }
            Ok(curve)
        }
        MlmScheme::FlImbalanced | MlmScheme::FlBalanced => {
            let shards = split_sequences(
                &data.train,
                match scheme {
                    MlmScheme::FlImbalanced => clinfl_data::PAPER_IMBALANCED_RATIOS.to_vec(),
                    _ => vec![1.0 / cfg.n_clients as f64; cfg.n_clients],
                },
            );
            let log = EventLog::new();
            let mut sim_cfg = simulator_config(cfg)?;
            sim_cfg.sag.rounds = cfg.pretrain_rounds;
            // Keep pretraining checkpoints apart from fine-tuning ones so a
            // resume never crosses phases.
            if let Some(dir) = sim_cfg.checkpoint_dir.take() {
                sim_cfg.checkpoint_dir = Some(dir.join("pretrain"));
            }
            let runner = SimulatorRunner::with_log(sim_cfg, log.clone());
            let mut seed_learner =
                MlmLearner::new(&bert, CodeSystem::new().vocab().clone(), hyper, cfg.seed);
            let initial = seed_learner.export_weights();
            let initial_loss = seed_learner.eval_loss(&data.valid);
            let valid = data.valid.clone();
            let result = runner.run_simple(
                initial,
                |i, _| {
                    let mut learner =
                        MlmLearner::new(&bert, CodeSystem::new().vocab().clone(), hyper, cfg.seed);
                    learner.set_schedule(mlm_warmup(cfg, shards[i].len(), hyper.batch_size));
                    Box::new(MlmExecutor::new(
                        learner,
                        shards[i].clone(),
                        valid.clone(),
                        1,
                        log.clone(),
                    ))
                },
                &WeightedFedAvg,
            )?;
            let mut curve = vec![initial_loss];
            curve.extend(
                result
                    .workflow
                    .rounds
                    .iter()
                    .map(|r| r.global_metric.unwrap_or(f64::NAN)),
            );
            Ok(curve)
        }
    }
}

/// Warmup sized to the planned step budget: the standard 64 steps at
/// experiment scale, but never more than a quarter of the total steps so
/// scaled-down runs (tests, demos) still spend most of training at full
/// rate.
fn mlm_warmup(cfg: &PipelineConfig, n_train: usize, batch_size: usize) -> LrSchedule {
    let steps_per_epoch = n_train.div_ceil(batch_size).max(1) as u64;
    let total_steps = steps_per_epoch * u64::from(cfg.pretrain_rounds);
    LrSchedule::LinearWarmup {
        warmup_steps: 64.min((total_steps / 4).max(1)),
    }
}

/// Splits the MLM corpus into per-site shards with the same
/// largest-remainder allocation as `clinfl_data::partition_by_ratios`.
/// The old cumulative `start + round(n·rᵢ)` scheme let per-site rounding
/// drift accumulate, silently starving (even emptying) the last sites on
/// small corpora.
fn split_sequences(seqs: &[Encoded], ratios: Vec<f64>) -> Vec<Vec<Encoded>> {
    let counts = clinfl_data::allocate_counts(seqs.len(), &ratios);
    let mut out = Vec::with_capacity(ratios.len());
    let mut start = 0usize;
    for c in counts {
        out.push(seqs[start..start + c].to_vec());
        start += c;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> PipelineConfig {
        let mut cfg = PipelineConfig::fast_demo();
        cfg.cohort.n_patients = 120;
        cfg.epochs = 1;
        cfg.rounds = 1;
        cfg.local_epochs = 1;
        cfg
    }

    #[test]
    fn task_data_split_counts() {
        let cfg = tiny_cfg();
        let data = build_task_data(&cfg);
        assert_eq!(data.train.len() + data.valid.len(), 120);
        assert!(data.train.len() > data.valid.len());
    }

    #[test]
    fn centralized_lstm_runs() {
        let cfg = tiny_cfg();
        let out = train_centralized(&cfg, ModelSpec::Lstm);
        assert_eq!(out.history.len(), 1);
        assert!(out.accuracy > 0.0 && out.accuracy <= 1.0);
    }

    #[test]
    fn federated_lstm_round_trips() {
        let cfg = tiny_cfg();
        let out = train_federated(&cfg, ModelSpec::Lstm).unwrap();
        assert_eq!(out.history.len(), 1);
        assert!(out.accuracy > 0.0 && out.accuracy <= 1.0);
        assert!(out.log.unwrap().contains("Local epoch site-1: 1/1"));
    }

    #[test]
    fn standalone_reports_all_sites() {
        let cfg = tiny_cfg();
        let out = train_standalone(&cfg, ModelSpec::Lstm);
        assert_eq!(out.per_site.len(), 8);
        let mean = out.per_site.iter().sum::<f64>() / 8.0;
        assert!((out.mean_accuracy - mean).abs() < 1e-12);
    }

    #[test]
    fn mlm_split_conserves() {
        let e = Encoded {
            ids: vec![2, 3],
            attention_mask: vec![1, 1],
        };
        let seqs = vec![e; 100];
        let shards = split_sequences(&seqs, clinfl_data::PAPER_IMBALANCED_RATIOS.to_vec());
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 100);
        assert_eq!(shards.len(), 8);
        assert!(shards[0].len() > shards[7].len());
    }

    #[test]
    fn mlm_split_has_no_rounding_drift() {
        let e = Encoded {
            ids: vec![2],
            attention_mask: vec![1],
        };
        // The old cumulative-rounding split emptied trailing shards on
        // small corpora; largest-remainder keeps every shard non-empty
        // whenever n >= sites.
        for n in [8usize, 10, 17, 33] {
            let seqs = vec![e.clone(); n];
            let shards = split_sequences(&seqs, clinfl_data::PAPER_IMBALANCED_RATIOS.to_vec());
            assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), n, "n={n}");
            assert!(shards.iter().all(|s| !s.is_empty()), "empty shard at n={n}");
        }
    }

    #[test]
    fn federated_scenario_knobs_run() {
        let mut cfg = tiny_cfg();
        cfg.runtime.client_sample_fraction = 0.5;
        cfg.runtime.dp_clip = Some(1.0);
        cfg.runtime.dp_sigma = 0.8;
        cfg.runtime.fedprox_mu = Some(0.01);
        cfg.runtime.personalize_epochs = 1;
        let out = train_federated(&cfg, ModelSpec::Lstm).unwrap();
        assert!(out.accuracy > 0.0 && out.accuracy <= 1.0);
        let (eps, delta) = out.privacy.expect("DP on => privacy tracked");
        assert!(eps > 0.0 && eps.is_finite());
        assert!((delta - 1e-5).abs() < 1e-12);
        assert_eq!(out.personalized_per_site.len(), 8);
        let mean = out.personalized_mean.expect("personalization ran");
        assert!(mean > 0.0 && mean <= 1.0);
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(MlmScheme::all().len(), 4);
        assert!(MlmScheme::FlImbalanced.to_string().contains("imbalanced"));
    }
}
