//! Typed experiment runners regenerating the paper's tables and figures.

use crate::config::{ModelSpec, PipelineConfig};
use crate::drivers::{self, build_mlm_data, pretrain_mlm, MlmScheme};
use clinfl_flare::FlareError;
use std::fmt;

/// The three training schemes of Table III, in row order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Pooled-data training (upper bound).
    Centralized,
    /// Per-site training without collaboration (lower bound).
    Standalone,
    /// Federated learning over NVFlare-style ScatterAndGather.
    Federated,
}

impl Scheme {
    /// All schemes in the paper's row order.
    pub fn all() -> [Scheme; 3] {
        [Scheme::Centralized, Scheme::Standalone, Scheme::Federated]
    }

    /// Row label as printed in Table III.
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Centralized => "Centralized",
            Scheme::Standalone => "Standalone",
            Scheme::Federated => "FL",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Reproduction of Table III: top-1 accuracy [%] of the three models under
/// the three schemes.
#[derive(Clone, Debug)]
pub struct Table3 {
    /// `cells[scheme][model]` in [`Scheme::all`] × [`ModelSpec::all`]
    /// order, as percentages.
    pub cells: Vec<Vec<f64>>,
}

/// The paper's reported Table III values (top-1 accuracy [%]), for
/// side-by-side printing.
pub const PAPER_TABLE3: [[f64; 3]; 3] = [
    // BERT, BERT-mini, LSTM
    [80.1, 72.7, 87.9], // Centralized
    [72.2, 68.5, 67.3], // Standalone
    [80.1, 72.3, 87.5], // FL
];

impl Table3 {
    /// Accuracy cell by scheme/model.
    pub fn get(&self, scheme: Scheme, model: ModelSpec) -> f64 {
        let si = Scheme::all()
            .iter()
            .position(|s| *s == scheme)
            .expect("scheme");
        let mi = ModelSpec::all()
            .iter()
            .position(|m| *m == model)
            .expect("model");
        self.cells[si][mi]
    }

    /// Checks the paper's qualitative shape (see EXPERIMENTS.md):
    /// FL ≈ centralized for every model, and standalone clearly worse
    /// than FL.
    pub fn shape_report(&self) -> Vec<String> {
        let mut notes = Vec::new();
        for model in ModelSpec::all() {
            let c = self.get(Scheme::Centralized, model);
            let f = self.get(Scheme::Federated, model);
            let s = self.get(Scheme::Standalone, model);
            notes.push(format!(
                "{model}: centralized {c:.1}%, FL {f:.1}% (gap {:.1}), standalone {s:.1}% (FL advantage {:.1})",
                c - f,
                f - s
            ));
        }
        notes
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TABLE III — TOP-1 ACCURACY [%] (measured | paper)\n{:<14} {:>16} {:>16} {:>16}",
            "Schemes/Model", "BERT", "BERT-mini", "LSTM"
        )?;
        for (si, scheme) in Scheme::all().iter().enumerate() {
            write!(f, "{:<14}", scheme.as_str())?;
            for (mi, _) in ModelSpec::all().iter().enumerate() {
                write!(
                    f,
                    " {:>8.1} | {:<5.1}",
                    self.cells[si][mi], PAPER_TABLE3[si][mi]
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Runs the full Table III grid (9 training runs).
///
/// # Errors
///
/// Propagates federated-runtime failures.
pub fn run_table3(cfg: &PipelineConfig) -> Result<Table3, FlareError> {
    run_table3_with(cfg, |_, _| {})
}

/// [`run_table3`] with a progress callback `(scheme, model)` invoked before
/// each cell.
///
/// # Errors
///
/// Propagates federated-runtime failures.
pub fn run_table3_with(
    cfg: &PipelineConfig,
    mut progress: impl FnMut(Scheme, ModelSpec),
) -> Result<Table3, FlareError> {
    let mut cells = Vec::with_capacity(3);
    for scheme in Scheme::all() {
        let mut row = Vec::with_capacity(3);
        for model in ModelSpec::all() {
            progress(scheme, model);
            let cfg = budget_for(cfg, model);
            let acc = match scheme {
                Scheme::Centralized => drivers::train_centralized(&cfg, model).accuracy,
                Scheme::Standalone => drivers::train_standalone(&cfg, model).mean_accuracy,
                Scheme::Federated => drivers::train_federated(&cfg, model)?.accuracy,
            };
            row.push(acc * 100.0);
        }
        cells.push(row);
    }
    Ok(Table3 { cells })
}

/// Compute-matched per-model budgets: an LSTM epoch costs roughly one
/// sixth of a BERT epoch on this substrate, so the recursive model gets
/// proportionally more epochs (and local epochs per round) for the same
/// wall-clock share — mirroring how the paper trained each model to
/// convergence rather than to an epoch count.
fn budget_for(cfg: &PipelineConfig, model: ModelSpec) -> PipelineConfig {
    let mut cfg = cfg.clone();
    if model == ModelSpec::Lstm {
        cfg.epochs *= 3;
        cfg.local_epochs *= 3;
    }
    cfg
}

/// Reproduction of Fig. 2: MLM validation-loss curves for the four
/// pretraining regimes.
#[derive(Clone, Debug)]
pub struct Fig2 {
    /// `(scheme, per-round validation loss)` series; index 0 of each curve
    /// is the untrained model (≈ `ln |V|`).
    pub curves: Vec<(MlmScheme, Vec<f64>)>,
}

impl Fig2 {
    /// The curve for a scheme.
    pub fn curve(&self, scheme: MlmScheme) -> &[f64] {
        &self
            .curves
            .iter()
            .find(|(s, _)| *s == scheme)
            .expect("scheme present")
            .1
    }

    /// Final loss of a scheme.
    pub fn final_loss(&self, scheme: MlmScheme) -> f64 {
        *self.curve(scheme).last().expect("non-empty curve")
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FIG. 2 — MLM VALIDATION LOSS PER ROUND")?;
        for (scheme, curve) in &self.curves {
            write!(f, "{:<24}", scheme.as_str())?;
            for v in curve {
                write!(f, " {v:6.3}")?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "(paper: starts 10.7 with its vocabulary; centralized/FL reach 3.5, small-data stalls at 4.4 —\n ours starts at ln|V| for the synthetic vocabulary; shape comparison in EXPERIMENTS.md)"
        )
    }
}

/// Runs all four Fig. 2 pretraining schemes.
///
/// # Errors
///
/// Propagates federated-runtime failures.
pub fn run_fig2(cfg: &PipelineConfig) -> Result<Fig2, FlareError> {
    run_fig2_with(cfg, |_| {})
}

/// [`run_fig2`] with a progress callback.
///
/// # Errors
///
/// Propagates federated-runtime failures.
pub fn run_fig2_with(
    cfg: &PipelineConfig,
    mut progress: impl FnMut(MlmScheme),
) -> Result<Fig2, FlareError> {
    let data = build_mlm_data(cfg);
    let mut curves = Vec::with_capacity(4);
    for scheme in MlmScheme::all() {
        progress(scheme);
        curves.push((scheme, pretrain_mlm(cfg, scheme, &data)?));
    }
    Ok(Fig2 { curves })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_constants_match_text() {
        // Sanity-pin the transcription of the paper's Table III.
        assert_eq!(PAPER_TABLE3[0][2], 87.9); // centralized LSTM
        assert_eq!(PAPER_TABLE3[2][0], 80.1); // FL BERT
        assert_eq!(PAPER_TABLE3[1][1], 68.5); // standalone BERT-mini
    }

    #[test]
    fn table3_accessors() {
        let t = Table3 {
            cells: vec![
                vec![1.0, 2.0, 3.0],
                vec![4.0, 5.0, 6.0],
                vec![7.0, 8.0, 9.0],
            ],
        };
        assert_eq!(t.get(Scheme::Centralized, ModelSpec::Bert), 1.0);
        assert_eq!(t.get(Scheme::Standalone, ModelSpec::Lstm), 6.0);
        assert_eq!(t.get(Scheme::Federated, ModelSpec::BertMini), 8.0);
        let shown = t.to_string();
        assert!(shown.contains("TABLE III"));
        assert_eq!(t.shape_report().len(), 3);
    }

    #[test]
    fn fig2_accessors() {
        let f = Fig2 {
            curves: vec![
                (MlmScheme::Centralized, vec![6.0, 4.0, 3.0]),
                (MlmScheme::SmallData, vec![6.0, 5.0, 4.4]),
            ],
        };
        assert_eq!(f.final_loss(MlmScheme::Centralized), 3.0);
        assert_eq!(f.curve(MlmScheme::SmallData).len(), 3);
        assert!(f.to_string().contains("FIG. 2"));
    }
}
