//! NVFlare executors wiring the learners into the federated runtime
//! (the paper Fig. 3's `CiBertLearner`).

use crate::learner::{Learner, MlmLearner};
use clinfl_data::ClassifyDataset;
use clinfl_flare::executor::{Executor, TaskContext};
use clinfl_flare::{Dxo, EventLog, Weights};
use clinfl_text::Encoded;
use std::collections::BTreeMap;

/// Federated executor for the ADR fine-tuning task: on each `Train` task it
/// loads the global model, runs `local_epochs` of local training on the
/// site's shard, and submits the updated weights with
/// `train_loss`/`valid_acc` metrics — producing exactly the log lines of
/// the paper's Fig. 3.
pub struct ClinicalExecutor {
    learner: Learner,
    train: ClassifyDataset,
    valid: ClassifyDataset,
    /// Small validation probe used for the per-epoch log lines (full
    /// validation happens once per round in [`Executor::validate`]).
    valid_probe: ClassifyDataset,
    local_epochs: u32,
    log: EventLog,
}

impl std::fmt::Debug for ClinicalExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClinicalExecutor")
            .field("train_examples", &self.train.len())
            .field("local_epochs", &self.local_epochs)
            .finish_non_exhaustive()
    }
}

impl ClinicalExecutor {
    /// Creates the executor for one site.
    pub fn new(
        learner: Learner,
        train: ClassifyDataset,
        valid: ClassifyDataset,
        local_epochs: u32,
        log: EventLog,
    ) -> Self {
        let probe_n = valid.len().min(96);
        let valid_probe =
            ClassifyDataset::from_examples(valid.examples()[..probe_n].to_vec(), valid.seq_len());
        ClinicalExecutor {
            learner,
            train,
            valid,
            valid_probe,
            local_epochs,
            log,
        }
    }

    /// Enables FedProx local training with coefficient `mu` (extension;
    /// see [`Learner::set_prox`]).
    pub fn with_prox(mut self, mu: f32) -> Self {
        self.learner.set_prox(mu);
        self
    }
}

impl Executor for ClinicalExecutor {
    fn train(&mut self, global: &Weights, ctx: &TaskContext) -> Dxo {
        self.learner.load_weights(global);
        self.learner.reset_optimizer();
        let mut last_loss = 0.0;
        let mut last_acc = 0.0;
        for e in 0..self.local_epochs {
            let stats = self.learner.train_epoch(&self.train);
            last_loss = stats.mean_loss;
            last_acc = self.learner.evaluate(&self.valid_probe);
            self.log.info(
                "CiBertLearner",
                format!(
                    "Local epoch {site}: {cur}/{total} (lr={lr}), train_loss={loss:.3}, valid_acc={acc:.3} [{secs:.1} sec/local epoch]",
                    site = ctx.site,
                    cur = e + 1,
                    total = self.local_epochs,
                    lr = self.learner.hyper().lr,
                    loss = stats.mean_loss,
                    acc = last_acc,
                    secs = stats.seconds,
                ),
            );
        }
        let mut metrics = BTreeMap::new();
        metrics.insert("train_loss".to_string(), last_loss);
        metrics.insert("valid_acc".to_string(), last_acc);
        let mut dxo = Dxo::from_weights(self.learner.export_weights(), self.train.len() as u64);
        dxo.metrics = metrics;
        dxo
    }

    fn validate(&mut self, global: &Weights, _ctx: &TaskContext) -> f64 {
        self.learner.load_weights(global);
        self.learner.evaluate(&self.valid)
    }
}

/// Federated executor for BERT MLM pretraining (the paper's Fig. 2 FL
/// schemes). Validation reports the **MLM loss** on the shared held-out
/// corpus — lower is better, so round summaries carry the loss curve
/// directly.
pub struct MlmExecutor {
    learner: MlmLearner,
    train: Vec<Encoded>,
    valid: Vec<Encoded>,
    local_epochs: u32,
    log: EventLog,
}

impl std::fmt::Debug for MlmExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MlmExecutor")
            .field("train_sequences", &self.train.len())
            .finish_non_exhaustive()
    }
}

impl MlmExecutor {
    /// Creates the executor for one site.
    pub fn new(
        learner: MlmLearner,
        train: Vec<Encoded>,
        valid: Vec<Encoded>,
        local_epochs: u32,
        log: EventLog,
    ) -> Self {
        MlmExecutor {
            learner,
            train,
            valid,
            local_epochs,
            log,
        }
    }
}

impl Executor for MlmExecutor {
    fn train(&mut self, global: &Weights, ctx: &TaskContext) -> Dxo {
        self.learner.load_weights(global);
        let mut last = 0.0;
        for e in 0..self.local_epochs {
            let stats = self.learner.train_epoch(&self.train);
            last = stats.mean_loss;
            self.log.info(
                "CiBertLearner",
                format!(
                    "MLM epoch {site}: {cur}/{total}, mlm_loss={loss:.3} [{secs:.1} sec]",
                    site = ctx.site,
                    cur = e + 1,
                    total = self.local_epochs,
                    loss = stats.mean_loss,
                    secs = stats.seconds,
                ),
            );
        }
        let mut metrics = BTreeMap::new();
        metrics.insert("mlm_loss".to_string(), last);
        let mut dxo = Dxo::from_weights(self.learner.export_weights(), self.train.len() as u64);
        dxo.metrics = metrics;
        dxo
    }

    fn validate(&mut self, global: &Weights, _ctx: &TaskContext) -> f64 {
        self.learner.load_weights(global);
        self.learner.eval_loss(&self.valid)
    }
}
