//! `clinfl` — command-line front end for the clinical federated-learning
//! pipeline.
//!
//! ```text
//! clinfl centralized --model lstm --scale 16
//! clinfl standalone  --model bert-mini --scale 16
//! clinfl federated   --model lstm --scale 16 [--balanced] [--echo]
//!                    [--dirichlet A] [--sample-fraction F]
//!                    [--dp-clip C] [--dp-sigma S] [--dp-delta D]
//!                    [--fedprox-mu M] [--personalize-epochs N]
//!                    [--checkpoint-dir D] [--resume D] [--retain N]
//!                    [--wire-codec S] [--wire-quant Q] [--wire-topk F]
//!                    [--tree-depth D] [--tree-fanout F]
//! clinfl pretrain    --scale 64 --scheme centralized
//! clinfl table3      --scale 10
//! clinfl fig2        --scale 32
//! clinfl serve       [--addr A] [--addr-file F] [--max-jobs N] [--scale N]
//!                    [--checkpoint-root D]
//! clinfl job submit  [--addr A] [--file F]     # config on stdin without --file
//! clinfl job list    [--addr A]
//! clinfl job abort   [--addr A] --id N
//! clinfl job metrics [--addr A] --id N [--follow]
//! ```
//!
//! `--checkpoint-dir D` persists per-round snapshots and a crash-safe run
//! checkpoint into `D`; `--resume D` restarts an interrupted federated run
//! from the checkpoint in `D` (same seed required); `--retain N` keeps at
//! most `N` per-round snapshot files on disk.
//!
//! `--wire-codec S` selects the negotiated weight-exchange codec (e.g.
//! `raw`, `delta`, `delta+int8`, `delta+topk0.05+int8`); `--wire-quant Q`
//! (`f32|f16|int8`) and `--wire-topk F` (fraction in `(0,1]`) override the
//! quantizer / sparsifier components of that codec string. See DESIGN.md
//! §3g for the wire-format spec.
//!
//! `--tree-depth D` (with `--tree-fanout F`, default 8) runs the
//! federation through a hierarchical aggregation tree: interior nodes
//! partial-FedAvg their shard of sites and forward one update upstream
//! (DESIGN.md §3h). Depth `<= 1` keeps the classic flat fleet.
//!
//! Scenario knobs (DESIGN.md §3k): `--dirichlet A` draws the site
//! partition from a symmetric Dirichlet(α) (lower α = more quantity
//! skew); `--sample-fraction F` trains a seeded `ceil(F·n)`-site subset
//! each round; `--dp-clip C` + `--dp-sigma S` enable DP-SGD (clip each
//! site's update to L2 norm `C`, add Gaussian noise `S·C`), with the
//! cumulative (ε, δ) at `--dp-delta D` (default 1e-5) printed at the
//! end; `--fedprox-mu M` adds the FedProx proximal term; and
//! `--personalize-epochs N` fine-tunes the final global model locally at
//! each site for `N` epochs after the federation.
//!
//! Every subcommand runs on the synthetic cohort/corpus at `1/scale` of
//! the paper's data volumes (see DESIGN.md for the substitution rationale).
//!
//! `clinfl serve` turns the process into a multi-tenant job host: a
//! dependency-free HTTP admin API (see `clinfl_flare::admin`) fronting a
//! `JobRuntime` that trains up to `--max-jobs` federations concurrently
//! over the shared worker pool. `--addr 127.0.0.1:0` picks an ephemeral
//! port; `--addr-file` writes the resolved address for scripts to
//! discover. The `clinfl job …` subcommands are the matching HTTP
//! client (README "Running as a service" shows a curl transcript).

use clinfl::drivers::{self, MlmScheme};
use clinfl::experiments;
use clinfl::{ModelSpec, PipelineConfig};
use clinfl_flare::admin::AdminServer;
use clinfl_flare::jobs::JobRuntime;
use clinfl_flare::EventLog;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;

struct Args {
    command: String,
    scale: usize,
    model: ModelSpec,
    scheme: MlmScheme,
    balanced: bool,
    echo: bool,
    checkpoint_dir: Option<std::path::PathBuf>,
    resume: bool,
    retain: Option<usize>,
    wire_codec: Option<String>,
    wire_quant: Option<String>,
    wire_topk: Option<f64>,
    tree_depth: Option<u32>,
    tree_fanout: Option<usize>,
    dirichlet: Option<f64>,
    sample_fraction: Option<f64>,
    dp_clip: Option<f32>,
    dp_sigma: Option<f32>,
    dp_delta: Option<f64>,
    fedprox_mu: Option<f32>,
    personalize_epochs: Option<u32>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: clinfl <centralized|standalone|federated|pretrain|table3|fig2> \
         [--scale N] [--model lstm|bert|bert-mini] [--scheme centralized|small|fl-imbalanced|fl-balanced] \
         [--balanced] [--dirichlet A] [--echo] [--checkpoint-dir D] [--resume D] [--retain N] \
         [--wire-codec S] [--wire-quant f32|f16|int8] [--wire-topk F] \
         [--tree-depth D] [--tree-fanout F] \
         [--sample-fraction F] [--dp-clip C] [--dp-sigma S] [--dp-delta D] \
         [--fedprox-mu M] [--personalize-epochs N]\n\
         \x20      clinfl serve [--addr A] [--addr-file F] [--max-jobs N] [--scale N] [--checkpoint-root D]\n\
         \x20      clinfl job <submit|list|abort|metrics> [--addr A] [--file F] [--id N] [--follow]"
    );
    ExitCode::from(2)
}

// ---------------------------------------------------------------------
// serve / job subcommands (multi-tenant admin API)
// ---------------------------------------------------------------------

/// One zero-dependency HTTP/1.1 exchange; returns `(status, body)`.
fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: clinfl\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Prints an HTTP reply body, returning success only for 2xx statuses.
fn report(result: std::io::Result<(u16, String)>) -> ExitCode {
    match result {
        Ok((status, body)) => {
            println!("{}", body.trim_end());
            if (200..300).contains(&status) {
                ExitCode::SUCCESS
            } else {
                eprintln!("server returned HTTP {status}");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("request failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_serve(mut argv: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = "127.0.0.1:8790".to_string();
    let mut addr_file: Option<std::path::PathBuf> = None;
    let mut max_jobs = 2usize;
    let mut scale = 16usize;
    let mut checkpoint_root: Option<std::path::PathBuf> = None;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--addr" => match argv.next() {
                Some(a) => addr = a,
                None => return usage(),
            },
            "--addr-file" => match argv.next() {
                Some(f) => addr_file = Some(f.into()),
                None => return usage(),
            },
            "--max-jobs" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(n) => max_jobs = n,
                None => return usage(),
            },
            "--scale" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(n) => scale = n,
                None => return usage(),
            },
            "--checkpoint-root" => match argv.next() {
                Some(d) => checkpoint_root = Some(d.into()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let cfg = PipelineConfig::scaled(scale);
    let runtime = JobRuntime::new(max_jobs);
    let factory = drivers::serve_job_factory(cfg, checkpoint_root);
    let server = match AdminServer::bind(&addr, runtime.clone(), factory) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {addr} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = server.local_addr();
    println!("clinfl admin API serving on http://{local} (max {max_jobs} concurrent jobs, scale {scale})");
    if let Some(path) = &addr_file {
        if let Err(e) = std::fs::write(path, local.to_string()) {
            eprintln!("writing --addr-file {} failed: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    // Serve until the process is killed; jobs run on their own threads.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_job(mut argv: impl Iterator<Item = String>) -> ExitCode {
    let Some(action) = argv.next() else {
        return usage();
    };
    let mut addr =
        std::env::var("CLINFL_ADMIN_ADDR").unwrap_or_else(|_| "127.0.0.1:8790".to_string());
    let mut file: Option<std::path::PathBuf> = None;
    let mut id: Option<u64> = None;
    let mut follow = false;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--addr" => match argv.next() {
                Some(a) => addr = a,
                None => return usage(),
            },
            "--file" => match argv.next() {
                Some(f) => file = Some(f.into()),
                None => return usage(),
            },
            "--id" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(n) => id = Some(n),
                None => return usage(),
            },
            "--follow" => follow = true,
            _ => return usage(),
        }
    }
    match action.as_str() {
        "submit" => {
            let config = match &file {
                Some(path) => match std::fs::read_to_string(path) {
                    Ok(text) => text,
                    Err(e) => {
                        eprintln!("reading {} failed: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    let mut text = String::new();
                    if std::io::stdin().read_to_string(&mut text).is_err() {
                        eprintln!("reading job config from stdin failed");
                        return ExitCode::FAILURE;
                    }
                    text
                }
            };
            report(http_request(&addr, "POST", "/jobs", &config))
        }
        "list" => report(http_request(&addr, "GET", "/jobs", "")),
        "abort" => {
            let Some(id) = id else { return usage() };
            report(http_request(
                &addr,
                "POST",
                &format!("/jobs/{id}/abort"),
                "",
            ))
        }
        "metrics" => {
            let Some(id) = id else { return usage() };
            if !follow {
                return report(http_request(
                    &addr,
                    "GET",
                    &format!("/jobs/{id}/metrics"),
                    "",
                ));
            }
            // Follow the NDJSON stream, printing each snapshot line as
            // it arrives (chunk framing lines are skipped).
            let mut stream = match TcpStream::connect(&addr) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("request failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if write!(
                stream,
                "GET /jobs/{id}/metrics/stream HTTP/1.1\r\nHost: clinfl\r\nConnection: close\r\n\r\n"
            )
            .is_err()
            {
                eprintln!("request failed");
                return ExitCode::FAILURE;
            }
            let reader = BufReader::new(stream);
            let mut saw_line = false;
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.starts_with('{') {
                    saw_line = true;
                    println!("{line}");
                }
            }
            if saw_line {
                ExitCode::SUCCESS
            } else {
                eprintln!("no metrics received (unknown job id?)");
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        return Err(usage());
    };
    let mut args = Args {
        command,
        scale: 16,
        model: ModelSpec::Lstm,
        scheme: MlmScheme::Centralized,
        balanced: false,
        echo: false,
        checkpoint_dir: None,
        resume: false,
        retain: None,
        wire_codec: None,
        wire_quant: None,
        wire_topk: None,
        tree_depth: None,
        tree_fanout: None,
        dirichlet: None,
        sample_fraction: None,
        dp_clip: None,
        dp_sigma: None,
        dp_delta: None,
        fedprox_mu: None,
        personalize_epochs: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--scale" => args.scale = argv.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?,
            "--model" => {
                args.model = match argv.next().as_deref() {
                    Some("lstm") => ModelSpec::Lstm,
                    Some("bert") => ModelSpec::Bert,
                    Some("bert-mini") | Some("bert_mini") => ModelSpec::BertMini,
                    _ => return Err(usage()),
                }
            }
            "--scheme" => {
                args.scheme = match argv.next().as_deref() {
                    Some("centralized") => MlmScheme::Centralized,
                    Some("small") => MlmScheme::SmallData,
                    Some("fl-imbalanced") => MlmScheme::FlImbalanced,
                    Some("fl-balanced") => MlmScheme::FlBalanced,
                    _ => return Err(usage()),
                }
            }
            "--balanced" => args.balanced = true,
            "--echo" => args.echo = true,
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(argv.next().ok_or_else(usage)?.into());
            }
            "--resume" => {
                args.checkpoint_dir = Some(argv.next().ok_or_else(usage)?.into());
                args.resume = true;
            }
            "--retain" => {
                args.retain = Some(argv.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            "--wire-codec" => args.wire_codec = Some(argv.next().ok_or_else(usage)?),
            "--wire-quant" => args.wire_quant = Some(argv.next().ok_or_else(usage)?),
            "--wire-topk" => {
                args.wire_topk = Some(argv.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            "--tree-depth" => {
                args.tree_depth = Some(argv.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            "--tree-fanout" => {
                args.tree_fanout =
                    Some(argv.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            "--dirichlet" => {
                args.dirichlet = Some(argv.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            "--sample-fraction" => {
                args.sample_fraction =
                    Some(argv.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            "--dp-clip" => {
                args.dp_clip = Some(argv.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            "--dp-sigma" => {
                args.dp_sigma = Some(argv.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            "--dp-delta" => {
                args.dp_delta = Some(argv.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            "--fedprox-mu" => {
                args.fedprox_mu = Some(argv.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            "--personalize-epochs" => {
                args.personalize_epochs =
                    Some(argv.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            _ => return Err(usage()),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    // The serve/job subcommands have their own flag sets; dispatch
    // before the training-pipeline parser sees the argv.
    {
        let mut argv = std::env::args().skip(1);
        match argv.next().as_deref() {
            Some("serve") => return cmd_serve(argv),
            Some("job") => return cmd_job(argv),
            _ => {}
        }
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let mut cfg = PipelineConfig::scaled(args.scale);
    cfg.runtime.checkpoint_dir = args.checkpoint_dir.clone();
    cfg.runtime.resume = args.resume;
    cfg.runtime.retain_checkpoints = args.retain;
    if let Some(c) = args.wire_codec {
        cfg.runtime.wire_codec = c;
    }
    cfg.runtime.wire_quant = args.wire_quant;
    cfg.runtime.wire_topk = args.wire_topk;
    if let Some(d) = args.tree_depth {
        cfg.runtime.tree_depth = d;
    }
    if let Some(f) = args.tree_fanout {
        cfg.runtime.tree_fanout = f;
    }
    if let Some(f) = args.sample_fraction {
        if f <= 0.0 || f.is_nan() {
            eprintln!("--sample-fraction must be positive, got {f}");
            return ExitCode::from(2);
        }
        cfg.runtime.client_sample_fraction = f;
    }
    cfg.runtime.dp_clip = args.dp_clip;
    if let Some(s) = args.dp_sigma {
        cfg.runtime.dp_sigma = s;
    }
    if let Some(d) = args.dp_delta {
        cfg.runtime.dp_delta = d;
    }
    cfg.runtime.fedprox_mu = args.fedprox_mu;
    if let Some(n) = args.personalize_epochs {
        cfg.runtime.personalize_epochs = n;
    }
    if let Err(e) = cfg.runtime.dp_params() {
        eprintln!("invalid DP config: {e}");
        return ExitCode::from(2);
    }
    if cfg.runtime.tree_depth >= 2 {
        println!(
            "aggregation tree: depth {} fan-out {}",
            cfg.runtime.tree_depth, cfg.runtime.tree_fanout
        );
    }
    let wire = match cfg.runtime.wire_spec() {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("invalid wire codec: {e}");
            return ExitCode::from(2);
        }
    };
    if !wire.is_raw() {
        println!("wire codec: {wire}");
    }
    println!(
        "clinfl: {} at scale {} ({} patients, seq {}, {} sites)",
        args.command, args.scale, cfg.cohort.n_patients, cfg.seq_len, cfg.n_clients
    );
    match args.command.as_str() {
        "centralized" => {
            let out = drivers::train_centralized(&cfg, args.model);
            for (i, (loss, acc)) in out.history.iter().enumerate() {
                println!(
                    "epoch {:>3}: train_loss={loss:.3} valid_acc={acc:.3}",
                    i + 1
                );
            }
            println!(
                "{} centralized top-1 accuracy: {:.1}%",
                args.model,
                100.0 * out.accuracy
            );
        }
        "standalone" => {
            let out = drivers::train_standalone(&cfg, args.model);
            for (i, acc) in out.per_site.iter().enumerate() {
                println!("site-{}: {:.1}%", i + 1, 100.0 * acc);
            }
            println!(
                "{} standalone mean accuracy: {:.1}%",
                args.model,
                100.0 * out.mean_accuracy
            );
        }
        "federated" => {
            let partitioner = if let Some(alpha) = args.dirichlet {
                if alpha <= 0.0 || alpha.is_nan() {
                    eprintln!("--dirichlet alpha must be positive, got {alpha}");
                    return ExitCode::from(2);
                }
                clinfl_data::SitePartitioner::Dirichlet {
                    n_sites: cfg.n_clients,
                    alpha,
                }
            } else if args.balanced {
                cfg.balanced_partitioner()
            } else {
                cfg.imbalanced_partitioner()
            };
            let log = if args.echo {
                EventLog::echoing()
            } else {
                EventLog::new()
            };
            match drivers::train_federated_with(&cfg, args.model, &partitioner, log) {
                Ok(out) => {
                    for (i, (loss, acc)) in out.history.iter().enumerate() {
                        println!(
                            "round {:>3}: mean_train_loss={loss:.3} global_valid_acc={acc:.3}",
                            i + 1
                        );
                    }
                    println!(
                        "{} federated top-1 accuracy: {:.1}%",
                        args.model,
                        100.0 * out.accuracy
                    );
                    if let Some((eps, delta)) = out.privacy {
                        println!("differential privacy: (ε = {eps:.3}, δ = {delta:.0e})");
                    }
                    if let Some(mean) = out.personalized_mean {
                        for (i, acc) in out.personalized_per_site.iter().enumerate() {
                            println!("personalized site-{}: {:.1}%", i + 1, 100.0 * acc);
                        }
                        println!("personalized mean accuracy: {:.1}%", 100.0 * mean);
                    }
                }
                Err(e) => {
                    eprintln!("federation failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "pretrain" => {
            let data = drivers::build_mlm_data(&cfg);
            println!(
                "corpus: {} train / {} valid, vocab {}",
                data.train.len(),
                data.valid.len(),
                data.vocab_size
            );
            match drivers::pretrain_mlm(&cfg, args.scheme, &data) {
                Ok(curve) => {
                    print!("{} MLM valid loss:", args.scheme);
                    for v in &curve {
                        print!(" {v:.3}");
                    }
                    println!();
                }
                Err(e) => {
                    eprintln!("pretraining failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "table3" => match experiments::run_table3(&cfg) {
            Ok(table) => println!("{table}"),
            Err(e) => {
                eprintln!("table3 failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        "fig2" => match experiments::run_fig2(&cfg) {
            Ok(fig) => println!("{fig}"),
            Err(e) => {
                eprintln!("fig2 failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
