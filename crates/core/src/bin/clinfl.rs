//! `clinfl` — command-line front end for the clinical federated-learning
//! pipeline.
//!
//! ```text
//! clinfl centralized --model lstm --scale 16
//! clinfl standalone  --model bert-mini --scale 16
//! clinfl federated   --model lstm --scale 16 [--balanced] [--echo]
//!                    [--checkpoint-dir D] [--resume D] [--retain N]
//!                    [--wire-codec S] [--wire-quant Q] [--wire-topk F]
//!                    [--tree-depth D] [--tree-fanout F]
//! clinfl pretrain    --scale 64 --scheme centralized
//! clinfl table3      --scale 10
//! clinfl fig2        --scale 32
//! ```
//!
//! `--checkpoint-dir D` persists per-round snapshots and a crash-safe run
//! checkpoint into `D`; `--resume D` restarts an interrupted federated run
//! from the checkpoint in `D` (same seed required); `--retain N` keeps at
//! most `N` per-round snapshot files on disk.
//!
//! `--wire-codec S` selects the negotiated weight-exchange codec (e.g.
//! `raw`, `delta`, `delta+int8`, `delta+topk0.05+int8`); `--wire-quant Q`
//! (`f32|f16|int8`) and `--wire-topk F` (fraction in `(0,1]`) override the
//! quantizer / sparsifier components of that codec string. See DESIGN.md
//! §3g for the wire-format spec.
//!
//! `--tree-depth D` (with `--tree-fanout F`, default 8) runs the
//! federation through a hierarchical aggregation tree: interior nodes
//! partial-FedAvg their shard of sites and forward one update upstream
//! (DESIGN.md §3h). Depth `<= 1` keeps the classic flat fleet.
//!
//! Every subcommand runs on the synthetic cohort/corpus at `1/scale` of
//! the paper's data volumes (see DESIGN.md for the substitution rationale).

use clinfl::drivers::{self, MlmScheme};
use clinfl::experiments;
use clinfl::{ModelSpec, PipelineConfig};
use clinfl_flare::EventLog;
use std::process::ExitCode;

struct Args {
    command: String,
    scale: usize,
    model: ModelSpec,
    scheme: MlmScheme,
    balanced: bool,
    echo: bool,
    checkpoint_dir: Option<std::path::PathBuf>,
    resume: bool,
    retain: Option<usize>,
    wire_codec: Option<String>,
    wire_quant: Option<String>,
    wire_topk: Option<f64>,
    tree_depth: Option<u32>,
    tree_fanout: Option<usize>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: clinfl <centralized|standalone|federated|pretrain|table3|fig2> \
         [--scale N] [--model lstm|bert|bert-mini] [--scheme centralized|small|fl-imbalanced|fl-balanced] \
         [--balanced] [--echo] [--checkpoint-dir D] [--resume D] [--retain N] \
         [--wire-codec S] [--wire-quant f32|f16|int8] [--wire-topk F] \
         [--tree-depth D] [--tree-fanout F]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        return Err(usage());
    };
    let mut args = Args {
        command,
        scale: 16,
        model: ModelSpec::Lstm,
        scheme: MlmScheme::Centralized,
        balanced: false,
        echo: false,
        checkpoint_dir: None,
        resume: false,
        retain: None,
        wire_codec: None,
        wire_quant: None,
        wire_topk: None,
        tree_depth: None,
        tree_fanout: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--scale" => args.scale = argv.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?,
            "--model" => {
                args.model = match argv.next().as_deref() {
                    Some("lstm") => ModelSpec::Lstm,
                    Some("bert") => ModelSpec::Bert,
                    Some("bert-mini") | Some("bert_mini") => ModelSpec::BertMini,
                    _ => return Err(usage()),
                }
            }
            "--scheme" => {
                args.scheme = match argv.next().as_deref() {
                    Some("centralized") => MlmScheme::Centralized,
                    Some("small") => MlmScheme::SmallData,
                    Some("fl-imbalanced") => MlmScheme::FlImbalanced,
                    Some("fl-balanced") => MlmScheme::FlBalanced,
                    _ => return Err(usage()),
                }
            }
            "--balanced" => args.balanced = true,
            "--echo" => args.echo = true,
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(argv.next().ok_or_else(usage)?.into());
            }
            "--resume" => {
                args.checkpoint_dir = Some(argv.next().ok_or_else(usage)?.into());
                args.resume = true;
            }
            "--retain" => {
                args.retain = Some(argv.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            "--wire-codec" => args.wire_codec = Some(argv.next().ok_or_else(usage)?),
            "--wire-quant" => args.wire_quant = Some(argv.next().ok_or_else(usage)?),
            "--wire-topk" => {
                args.wire_topk = Some(argv.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            "--tree-depth" => {
                args.tree_depth = Some(argv.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            "--tree-fanout" => {
                args.tree_fanout =
                    Some(argv.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?);
            }
            _ => return Err(usage()),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let mut cfg = PipelineConfig::scaled(args.scale);
    cfg.runtime.checkpoint_dir = args.checkpoint_dir.clone();
    cfg.runtime.resume = args.resume;
    cfg.runtime.retain_checkpoints = args.retain;
    if let Some(c) = args.wire_codec {
        cfg.runtime.wire_codec = c;
    }
    cfg.runtime.wire_quant = args.wire_quant;
    cfg.runtime.wire_topk = args.wire_topk;
    if let Some(d) = args.tree_depth {
        cfg.runtime.tree_depth = d;
    }
    if let Some(f) = args.tree_fanout {
        cfg.runtime.tree_fanout = f;
    }
    if cfg.runtime.tree_depth >= 2 {
        println!(
            "aggregation tree: depth {} fan-out {}",
            cfg.runtime.tree_depth, cfg.runtime.tree_fanout
        );
    }
    let wire = match cfg.runtime.wire_spec() {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("invalid wire codec: {e}");
            return ExitCode::from(2);
        }
    };
    if !wire.is_raw() {
        println!("wire codec: {wire}");
    }
    println!(
        "clinfl: {} at scale {} ({} patients, seq {}, {} sites)",
        args.command, args.scale, cfg.cohort.n_patients, cfg.seq_len, cfg.n_clients
    );
    match args.command.as_str() {
        "centralized" => {
            let out = drivers::train_centralized(&cfg, args.model);
            for (i, (loss, acc)) in out.history.iter().enumerate() {
                println!(
                    "epoch {:>3}: train_loss={loss:.3} valid_acc={acc:.3}",
                    i + 1
                );
            }
            println!(
                "{} centralized top-1 accuracy: {:.1}%",
                args.model,
                100.0 * out.accuracy
            );
        }
        "standalone" => {
            let out = drivers::train_standalone(&cfg, args.model);
            for (i, acc) in out.per_site.iter().enumerate() {
                println!("site-{}: {:.1}%", i + 1, 100.0 * acc);
            }
            println!(
                "{} standalone mean accuracy: {:.1}%",
                args.model,
                100.0 * out.mean_accuracy
            );
        }
        "federated" => {
            let partitioner = if args.balanced {
                cfg.balanced_partitioner()
            } else {
                cfg.imbalanced_partitioner()
            };
            let log = if args.echo {
                EventLog::echoing()
            } else {
                EventLog::new()
            };
            match drivers::train_federated_with(&cfg, args.model, &partitioner, log) {
                Ok(out) => {
                    for (i, (loss, acc)) in out.history.iter().enumerate() {
                        println!(
                            "round {:>3}: mean_train_loss={loss:.3} global_valid_acc={acc:.3}",
                            i + 1
                        );
                    }
                    println!(
                        "{} federated top-1 accuracy: {:.1}%",
                        args.model,
                        100.0 * out.accuracy
                    );
                }
                Err(e) => {
                    eprintln!("federation failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "pretrain" => {
            let data = drivers::build_mlm_data(&cfg);
            println!(
                "corpus: {} train / {} valid, vocab {}",
                data.train.len(),
                data.valid.len(),
                data.vocab_size
            );
            match drivers::pretrain_mlm(&cfg, args.scheme, &data) {
                Ok(curve) => {
                    print!("{} MLM valid loss:", args.scheme);
                    for v in &curve {
                        print!(" {v:.3}");
                    }
                    println!();
                }
                Err(e) => {
                    eprintln!("pretraining failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "table3" => match experiments::run_table3(&cfg) {
            Ok(table) => println!("{table}"),
            Err(e) => {
                eprintln!("table3 failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        "fig2" => match experiments::run_fig2(&cfg) {
            Ok(fig) => println!("{fig}"),
            Err(e) => {
                eprintln!("fig2 failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
