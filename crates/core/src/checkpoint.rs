//! Model checkpointing: save/load trained weights to disk using the
//! federated wire format, so a fine-tuned global model can be shipped to
//! sites or resumed later (the "obtaining optimal global models" output of
//! the paper's pipeline, Fig. 1).

use clinfl_flare::wire::{WireDecode, WireEncode};
use clinfl_flare::{FlareError, Weights};
use std::path::Path;

/// Saves weights to `path` in the framed wire format (`.cfw`).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save_weights(path: impl AsRef<Path>, weights: &Weights) -> Result<(), FlareError> {
    std::fs::write(path.as_ref(), weights.to_frame())?;
    Ok(())
}

/// Loads weights previously written by [`save_weights`].
///
/// # Errors
///
/// Propagates I/O failures and codec errors (truncated / corrupt file).
pub fn load_weights(path: impl AsRef<Path>) -> Result<Weights, FlareError> {
    let bytes = std::fs::read(path.as_ref())?;
    Weights::from_frame(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinfl_flare::WeightTensor;

    #[test]
    fn roundtrip_through_disk() {
        let mut w = Weights::new();
        w.insert(
            "enc.w".into(),
            WeightTensor::new(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]),
        );
        let path = std::env::temp_dir().join(format!("clinfl-ckpt-{}.cfw", std::process::id()));
        save_weights(&path, &w).unwrap();
        let back = load_weights(&path).unwrap();
        assert_eq!(back, w);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_file_rejected() {
        let path = std::env::temp_dir().join(format!("clinfl-bad-{}.cfw", std::process::id()));
        std::fs::write(&path, b"not a checkpoint").unwrap();
        assert!(load_weights(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_weights("/definitely/not/here.cfw"),
            Err(FlareError::Io(_))
        ));
    }
}
