//! Model checkpointing: save/load trained weights to disk using the
//! federated wire format, so a fine-tuned global model can be shipped to
//! sites or resumed later (the "obtaining optimal global models" output of
//! the paper's pipeline, Fig. 1).
//!
//! Writes go through `clinfl_flare::checkpoint`'s atomic writer (tmp
//! file then rename, CRC trailer), so a crash mid-save can never
//! truncate a previously good `.cfw`, and loads verify the trailer.
//! Files written by older builds (no trailer) still load.

use clinfl_flare::checkpoint::{load_weights_file, save_weights_file};
use clinfl_flare::{FlareError, Weights};
use std::path::Path;

pub use clinfl_flare::checkpoint::RunCheckpoint;

/// Saves weights to `path` in the framed wire format (`.cfw`),
/// atomically and with a CRC trailer.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save_weights(path: impl AsRef<Path>, weights: &Weights) -> Result<(), FlareError> {
    save_weights_file(path, weights)
}

/// Loads weights previously written by [`save_weights`], verifying the
/// CRC trailer when present.
///
/// # Errors
///
/// Propagates I/O failures, CRC mismatches, and codec errors (truncated /
/// corrupt file).
pub fn load_weights(path: impl AsRef<Path>) -> Result<Weights, FlareError> {
    load_weights_file(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinfl_flare::WeightTensor;

    #[test]
    fn roundtrip_through_disk() {
        let mut w = Weights::new();
        w.insert(
            "enc.w".into(),
            WeightTensor::new(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]),
        );
        let path = std::env::temp_dir().join(format!("clinfl-ckpt-{}.cfw", std::process::id()));
        save_weights(&path, &w).unwrap();
        let back = load_weights(&path).unwrap();
        assert_eq!(back, w);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_file_rejected() {
        let path = std::env::temp_dir().join(format!("clinfl-bad-{}.cfw", std::process::id()));
        std::fs::write(&path, b"not a checkpoint").unwrap();
        assert!(load_weights(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_under_crc_trailer_rejected() {
        let mut w = Weights::new();
        w.insert("p".into(), WeightTensor::new(vec![4], vec![1., 2., 3., 4.]));
        let path = std::env::temp_dir().join(format!("clinfl-flip-{}.cfw", std::process::id()));
        save_weights(&path, &w).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last_payload = bytes.len() - 9; // inside the body, before the trailer
        bytes[last_payload] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_weights(&path).unwrap_err();
        assert!(
            err.to_string().contains("CRC"),
            "expected a CRC error, got: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_weights("/definitely/not/here.cfw"),
            Err(FlareError::Io(_))
        ));
    }
}
