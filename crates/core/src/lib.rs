//! # clinfl
//!
//! The integrated pipeline of *"Multi-Site Clinical Federated Learning
//! using Recursive and Attentive Models and NVFlare"* (ICDCS 2023),
//! assembled from the workspace substrates:
//!
//! * [`clinfl_tensor`] — autograd engine (replaces PyTorch),
//! * [`clinfl_text`] — tokenizer + MLM masking,
//! * [`clinfl_data`] — synthetic clopidogrel/ADR cohort (replaces the
//!   proprietary EHR) and the paper's 8-site partitions,
//! * [`clinfl_models`] — LSTM, BERT, BERT-mini (paper Table II),
//! * [`clinfl_flare`] — the NVFlare-workalike federated runtime.
//!
//! Following the paper's Fig. 1 pipeline, this crate provides:
//!
//! * [`PipelineConfig`] — Table I parameters with a scale knob,
//! * [`Learner`] — local training/evaluation around any
//!   [`clinfl_models::SequenceClassifier`],
//! * [`ClinicalExecutor`] / [`MlmExecutor`] — the NVFlare executors
//!   (the `CiBertLearner` of the paper's Fig. 3),
//! * [`drivers`] — centralized / standalone / federated fine-tuning and
//!   the four MLM pretraining schemes,
//! * [`experiments`] — typed runners regenerating Table III and Fig. 2.
//!
//! ## Quickstart
//!
//! ```no_run
//! use clinfl::{drivers, ModelSpec, PipelineConfig};
//!
//! let cfg = PipelineConfig::fast_demo();
//! let outcome = drivers::train_federated(&cfg, ModelSpec::Lstm).unwrap();
//! println!("FL LSTM top-1 accuracy: {:.1}%", 100.0 * outcome.accuracy);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod checkpoint;
mod config;
pub mod drivers;
mod executor;
pub mod experiments;
mod learner;
pub mod metrics;
mod weights;

pub use clinfl_obs as obs;
pub use config::{ModelSpec, PipelineConfig, TrainHyper};
pub use executor::{ClinicalExecutor, MlmExecutor};
pub use learner::{EpochStats, Learner, MlmLearner};
pub use weights::{params_to_weights, weights_into_params, weights_to_params};
