//! Local training engines around the paper's models.

use crate::config::{ModelSpec, TrainHyper};
use crate::weights::{params_to_weights, weights_into_params, weights_to_params};
use clinfl_data::{Batch, ClassifyDataset};
use clinfl_flare::Weights;
use clinfl_models::{
    BertConfig, BertModel, LstmClassifier, LstmConfig, SequenceClassifier, TokenBatch,
};
use clinfl_tensor::{Adam, GradClip, Graph, LrSchedule, Optimizer};
use clinfl_text::{Encoded, MlmMasker, Vocab};

/// Summary of one local training epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochStats {
    /// Mean training loss over the epoch's batches.
    pub mean_loss: f64,
    /// Number of batches processed.
    pub batches: usize,
    /// Wall-clock seconds for the epoch (the paper's Fig. 3 reports
    /// "Training cost: 12.7 sec/local epoch").
    pub seconds: f64,
}

fn token_batch(b: &Batch) -> TokenBatch<'_> {
    TokenBatch {
        ids: &b.ids,
        mask: &b.mask,
        batch_size: b.batch_size,
        seq_len: b.seq_len,
    }
}

/// A classification learner: one of the paper's three models plus an Adam
/// optimizer and hyper-parameters, trainable locally and exchangeable with
/// the federated runtime via [`Weights`].
pub struct Learner {
    model: Box<dyn SequenceClassifier + Send>,
    hyper: TrainHyper,
    optimizer: Adam,
    /// Reused autograd tape: reset (not reallocated) per step so buffers
    /// recycle across iterations.
    graph: Graph,
    epoch_counter: u64,
    seed: u64,
    /// FedProx proximal coefficient μ and the reference (global) weights:
    /// when set, every step adds `μ (w - w_global)` to the gradients,
    /// penalizing local drift (Li et al., *Federated Optimization in
    /// Heterogeneous Networks*). Extension beyond the paper.
    prox: Option<(f32, Weights)>,
}

impl std::fmt::Debug for Learner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Learner")
            .field("hyper", &self.hyper)
            .finish_non_exhaustive()
    }
}

impl Learner {
    /// Builds the given model (Table II geometry) over a vocabulary.
    pub fn new(
        spec: ModelSpec,
        vocab_size: usize,
        seq_len: usize,
        hyper: TrainHyper,
        seed: u64,
    ) -> Self {
        let model: Box<dyn SequenceClassifier + Send> = match spec {
            ModelSpec::Bert => {
                Box::new(BertModel::new(&BertConfig::bert(vocab_size, seq_len), seed))
            }
            ModelSpec::BertMini => Box::new(BertModel::new(
                &BertConfig::bert_mini(vocab_size, seq_len),
                seed,
            )),
            ModelSpec::Lstm => Box::new(LstmClassifier::new(
                &LstmConfig::with_vocab(vocab_size),
                seed,
            )),
        };
        Learner {
            model,
            hyper,
            optimizer: Adam::with_lr(hyper.lr),
            graph: Graph::new(),
            epoch_counter: 0,
            seed,
            prox: None,
        }
    }

    /// Enables FedProx local training: gradients gain `mu (w - w_global)`
    /// where `w_global` is the weight set from the most recent
    /// [`Learner::load_weights`] call after this one. Pass `mu = 0` or call
    /// with `None`-like semantics via [`Learner::clear_prox`] to disable.
    pub fn set_prox(&mut self, mu: f32) {
        let anchor = self.export_weights();
        self.prox = Some((mu, anchor));
    }

    /// Disables the FedProx proximal term.
    pub fn clear_prox(&mut self) {
        self.prox = None;
    }

    /// The hyper-parameters in use.
    pub fn hyper(&self) -> &TrainHyper {
        &self.hyper
    }

    /// Current weights in federated wire form.
    pub fn export_weights(&self) -> Weights {
        params_to_weights(self.model.params())
    }

    /// Loads global weights (e.g. at the start of a federated round).
    /// When FedProx is enabled, the loaded weights become the new proximal
    /// anchor.
    pub fn load_weights(&mut self, weights: &Weights) {
        weights_to_params(weights, self.model.params_mut());
        if let Some((mu, anchor)) = &mut self.prox {
            let _ = mu;
            *anchor = weights.clone();
        }
    }

    /// Loads global weights by value, moving each tensor's buffer into the
    /// parameter store instead of copying (use when the wire payload is no
    /// longer needed). FedProx anchoring behaves as in
    /// [`Learner::load_weights`].
    pub fn load_weights_owned(&mut self, weights: Weights) {
        if let Some((_mu, anchor)) = &mut self.prox {
            *anchor = weights.clone();
        }
        weights_into_params(weights, self.model.params_mut());
    }

    /// Resets optimizer state (fresh Adam moments, as when a federated
    /// round restarts local training from new global weights).
    pub fn reset_optimizer(&mut self) {
        self.optimizer = Adam::with_lr(self.hyper.lr);
    }

    /// Runs one epoch of mini-batch training; returns loss statistics.
    pub fn train_epoch(&mut self, data: &ClassifyDataset) -> EpochStats {
        let start = std::time::Instant::now();
        self.epoch_counter += 1;
        let shuffle_seed = self
            .seed
            .wrapping_mul(0x100000001b3)
            .wrapping_add(self.epoch_counter);
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for batch in data.batches(self.hyper.batch_size, shuffle_seed) {
            let _step_span = clinfl_obs::span("train_step");
            self.graph.reset_with_seed(shuffle_seed ^ batches as u64);
            self.graph.set_training(true);
            let g = &mut self.graph;
            let loss = self
                .model
                .classification_loss(g, &token_batch(&batch), &batch.labels);
            total += g.value(loss).item() as f64;
            g.backward(loss);
            self.graph.grads_into(self.model.params_mut());
            self.apply_prox_gradient();
            if self.hyper.clip_norm > 0.0 {
                GradClip {
                    max_norm: self.hyper.clip_norm,
                }
                .apply(self.model.params_mut());
            }
            self.optimizer.step(self.model.params_mut());
            batches += 1;
        }
        EpochStats {
            mean_loss: if batches == 0 {
                0.0
            } else {
                total / batches as f64
            },
            batches,
            seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Adds the FedProx gradient `μ (w - w_anchor)` directly into the
    /// parameter gradients (equivalent to the μ/2‖w−w₀‖² loss term, without
    /// paying for it on the autograd tape).
    fn apply_prox_gradient(&mut self) {
        let Some((mu, anchor)) = &self.prox else {
            return;
        };
        let mu = *mu;
        if mu == 0.0 {
            return;
        }
        let params = self.model.params_mut();
        let entries: Vec<(clinfl_tensor::ParamId, String)> = params
            .iter()
            .map(|(id, name, _)| (id, name.to_string()))
            .collect();
        for (id, name) in entries {
            let Some(a) = anchor.get(&name) else { continue };
            let w = params.value(id).clone();
            let g = params.grad_mut(id);
            for ((gv, &wv), &av) in g.data_mut().iter_mut().zip(w.data()).zip(&a.data) {
                *gv += mu * (wv - av);
            }
        }
    }

    /// Full classification report (accuracy, precision/recall/F1,
    /// specificity, ROC-AUC) on a dataset — the clinically relevant view
    /// beyond the paper's Top-1 accuracy.
    pub fn evaluate_report(
        &mut self,
        data: &ClassifyDataset,
    ) -> crate::metrics::ClassificationReport {
        let mut scores = Vec::with_capacity(data.len());
        let mut labels = Vec::with_capacity(data.len());
        for batch in data.batches(self.hyper.batch_size, 0) {
            for row in self
                .model
                .predict_proba_with(&mut self.graph, &token_batch(&batch))
            {
                scores.push(row.get(1).copied().unwrap_or(0.0));
            }
            labels.extend_from_slice(&batch.labels);
        }
        crate::metrics::ClassificationReport::from_scores(&scores, &labels)
    }

    /// Top-1 accuracy on a dataset (evaluation mode).
    pub fn evaluate(&mut self, data: &ClassifyDataset) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for batch in data.batches(self.hyper.batch_size, 0) {
            let preds = self
                .model
                .predict_with(&mut self.graph, &token_batch(&batch));
            correct += preds
                .iter()
                .zip(&batch.labels)
                .filter(|(p, l)| **p as i32 == **l)
                .count();
            total += batch.labels.len();
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

/// An MLM pretraining learner around [`BertModel`] (the paper's §III-B
/// pretraining stage, Fig. 2).
pub struct MlmLearner {
    model: BertModel,
    vocab: Vocab,
    masker: MlmMasker,
    hyper: TrainHyper,
    optimizer: Adam,
    schedule: LrSchedule,
    /// Reused autograd tape: reset (not reallocated) per step so buffers
    /// recycle across iterations.
    graph: Graph,
    step_counter: u64,
    epoch_counter: u64,
    seed: u64,
}

impl std::fmt::Debug for MlmLearner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MlmLearner")
            .field("hyper", &self.hyper)
            .finish_non_exhaustive()
    }
}

impl MlmLearner {
    /// Builds a BERT MLM learner (use [`BertConfig::bert`] or
    /// [`BertConfig::bert_mini`] geometry via `config`).
    pub fn new(config: &BertConfig, vocab: Vocab, hyper: TrainHyper, seed: u64) -> Self {
        MlmLearner {
            model: BertModel::new(config, seed),
            vocab,
            masker: MlmMasker::default(),
            hyper,
            optimizer: Adam::with_lr(hyper.lr),
            // Standard transformer warmup: ramp the rate over the first
            // optimizer steps so the 12-layer stack does not destabilize.
            schedule: LrSchedule::LinearWarmup { warmup_steps: 64 },
            graph: Graph::new(),
            step_counter: 0,
            epoch_counter: 0,
            seed,
        }
    }

    /// Overrides the learning-rate schedule (default: 64-step linear
    /// warmup).
    pub fn set_schedule(&mut self, schedule: LrSchedule) {
        self.schedule = schedule;
    }

    /// Current weights in federated wire form.
    pub fn export_weights(&self) -> Weights {
        params_to_weights(self.model.params())
    }

    /// Loads global weights.
    pub fn load_weights(&mut self, weights: &Weights) {
        weights_to_params(weights, self.model.params_mut());
    }

    /// The underlying model (e.g. to transfer the pretrained backbone into
    /// a fine-tuning learner).
    pub fn model(&self) -> &BertModel {
        &self.model
    }

    fn masked_batch(
        &self,
        seqs: &[Encoded],
        idx: &[usize],
        seed: u64,
    ) -> (Vec<u32>, Vec<u8>, Vec<i32>) {
        let seq_len = seqs[idx[0]].ids.len();
        let mut ids = Vec::with_capacity(idx.len() * seq_len);
        let mut mask = Vec::with_capacity(idx.len() * seq_len);
        let mut labels = Vec::with_capacity(idx.len() * seq_len);
        for (k, &i) in idx.iter().enumerate() {
            let m = self
                .masker
                .mask(&seqs[i].ids, &self.vocab, seed.wrapping_add(k as u64));
            ids.extend_from_slice(&m.input_ids);
            mask.extend_from_slice(&seqs[i].attention_mask);
            labels.extend_from_slice(&m.labels);
        }
        (ids, mask, labels)
    }

    /// One epoch of MLM training with fresh dynamic masking; returns loss
    /// statistics.
    pub fn train_epoch(&mut self, seqs: &[Encoded]) -> EpochStats {
        let start = std::time::Instant::now();
        self.epoch_counter += 1;
        let mut order: Vec<usize> = (0..seqs.len()).collect();
        // Deterministic shuffle differing per epoch.
        let mut state = self.seed ^ self.epoch_counter.wrapping_mul(0x9E3779B97F4A7C15);
        for i in (1..order.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(self.hyper.batch_size) {
            let _step_span = clinfl_obs::span("train_step");
            let mask_seed = state.wrapping_add(batches as u64 * 7919);
            let (ids, mask, labels) = self.masked_batch(seqs, chunk, mask_seed);
            let seq_len = ids.len() / chunk.len();
            let batch = TokenBatch {
                ids: &ids,
                mask: &mask,
                batch_size: chunk.len(),
                seq_len,
            };
            self.graph.reset_with_seed(mask_seed);
            self.graph.set_training(true);
            let g = &mut self.graph;
            let loss = self.model.mlm_loss(g, &batch, &labels);
            total += g.value(loss).item() as f64;
            g.backward(loss);
            self.graph.grads_into(self.model.params_mut());
            if self.hyper.clip_norm > 0.0 {
                GradClip {
                    max_norm: self.hyper.clip_norm,
                }
                .apply(self.model.params_mut());
            }
            self.step_counter += 1;
            self.optimizer
                .set_learning_rate(self.schedule.lr_at(self.hyper.lr, self.step_counter));
            self.optimizer.step(self.model.params_mut());
            batches += 1;
        }
        EpochStats {
            mean_loss: if batches == 0 {
                0.0
            } else {
                total / batches as f64
            },
            batches,
            seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Mean MLM loss on held-out sequences (fixed masking seed, evaluation
    /// mode) — the quantity plotted in the paper's Fig. 2.
    pub fn eval_loss(&mut self, seqs: &[Encoded]) -> f64 {
        if seqs.is_empty() {
            return 0.0;
        }
        let idx: Vec<usize> = (0..seqs.len()).collect();
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in idx.chunks(self.hyper.batch_size) {
            const EVAL_MASK_SEED: u64 = 0xE7A1_5EED;
            let (ids, mask, labels) = self.masked_batch(seqs, chunk, EVAL_MASK_SEED);
            let seq_len = ids.len() / chunk.len();
            let batch = TokenBatch {
                ids: &ids,
                mask: &mask,
                batch_size: chunk.len(),
                seq_len,
            };
            self.graph.reset();
            self.graph.set_training(false);
            let g = &mut self.graph;
            let loss = self.model.mlm_loss(g, &batch, &labels);
            total += g.value(loss).item() as f64;
            batches += 1;
        }
        total / batches as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinfl_data::{generate_cohort, CodeSystem, CohortSpec};
    use clinfl_text::ClinicalTokenizer;

    fn small_data() -> (CodeSystem, ClassifyDataset) {
        let cs = CodeSystem::new();
        let cohort = generate_cohort(&cs, &CohortSpec::small(160, 3));
        let tok = ClinicalTokenizer::new(cs.vocab().clone(), 36);
        (cs, ClassifyDataset::from_cohort(&cohort, &tok))
    }

    #[test]
    fn lstm_learner_trains_and_improves_loss() {
        let (cs, data) = small_data();
        let mut hyper = TrainHyper::for_model(ModelSpec::Lstm);
        hyper.batch_size = 16;
        let mut learner = Learner::new(ModelSpec::Lstm, cs.vocab().len(), 36, hyper, 1);
        let first = learner.train_epoch(&data);
        let mut last = first;
        for _ in 0..4 {
            last = learner.train_epoch(&data);
        }
        assert!(first.batches == 10);
        assert!(
            last.mean_loss < first.mean_loss,
            "loss should fall: {} -> {}",
            first.mean_loss,
            last.mean_loss
        );
        let acc = learner.evaluate(&data);
        assert!(acc > 0.5, "training-set accuracy {acc}");
    }

    #[test]
    fn weights_roundtrip_through_wire_form() {
        let (cs, _) = small_data();
        let hyper = TrainHyper::for_model(ModelSpec::Lstm);
        let learner = Learner::new(ModelSpec::Lstm, cs.vocab().len(), 36, hyper, 5);
        let w = learner.export_weights();
        let mut other = Learner::new(ModelSpec::Lstm, cs.vocab().len(), 36, hyper, 99);
        assert_ne!(other.export_weights(), w, "different seeds differ");
        other.load_weights(&w);
        assert_eq!(other.export_weights(), w);
    }

    #[test]
    fn fedprox_keeps_weights_near_anchor() {
        let (cs, data) = small_data();
        let mut hyper = TrainHyper::for_model(ModelSpec::Lstm);
        hyper.batch_size = 16;
        // Plain local training vs heavily-proximal training from the same
        // start: the proximal run must stay closer to the anchor.
        let drift = |mu: Option<f32>| -> f32 {
            let mut l = Learner::new(ModelSpec::Lstm, cs.vocab().len(), 36, hyper, 11);
            if let Some(mu) = mu {
                l.set_prox(mu);
            }
            let anchor = l.export_weights();
            l.load_weights(&anchor);
            l.train_epoch(&data);
            let after = l.export_weights();
            anchor
                .iter()
                .map(|(name, t)| {
                    t.data
                        .iter()
                        .zip(&after[name].data)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f32>()
                })
                .sum::<f32>()
                .sqrt()
        };
        let free = drift(None);
        let proximal = drift(Some(10.0));
        assert!(
            proximal < free,
            "prox drift {proximal} should be below free drift {free}"
        );
    }

    #[test]
    fn evaluate_report_is_consistent_with_accuracy() {
        let (cs, data) = small_data();
        let hyper = TrainHyper::for_model(ModelSpec::Lstm);
        let mut learner = Learner::new(ModelSpec::Lstm, cs.vocab().len(), 36, hyper, 2);
        let report = learner.evaluate_report(&data);
        assert_eq!(report.confusion.total() as usize, data.len());
        assert!(report.auc >= 0.0 && report.auc <= 1.0);
    }

    #[test]
    fn evaluate_on_empty_dataset_is_zero() {
        let (cs, _) = small_data();
        let hyper = TrainHyper::for_model(ModelSpec::Lstm);
        let mut learner = Learner::new(ModelSpec::Lstm, cs.vocab().len(), 36, hyper, 1);
        let empty = ClassifyDataset::from_examples(vec![], 36);
        assert_eq!(learner.evaluate(&empty), 0.0);
    }
}
