//! Clinical classification metrics beyond Top-1 accuracy.
//!
//! The paper reports only Top-1 accuracy (Table III); a deployable
//! clinical system also needs sensitivity/specificity-style numbers, so
//! this module provides the standard binary-classification report computed
//! from model scores.

/// Confusion counts for a binary task (positive class = 1, the ADR /
/// treatment-failure outcome).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl Confusion {
    /// Tallies predictions against labels.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn from_predictions(preds: &[usize], labels: &[i32]) -> Self {
        assert_eq!(preds.len(), labels.len(), "prediction/label length");
        let mut c = Confusion::default();
        for (&p, &l) in preds.iter().zip(labels) {
            match (p == 1, l == 1) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Total examples tallied.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// `(tp + tn) / total`.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// Positive predictive value `tp / (tp + fp)`; 0 when undefined.
    pub fn precision(&self) -> f64 {
        let d = self.tp + self.fp;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Sensitivity `tp / (tp + fn)`; 0 when undefined.
    pub fn recall(&self) -> f64 {
        let d = self.tp + self.fn_;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Specificity `tn / (tn + fp)`; 0 when undefined.
    pub fn specificity(&self) -> f64 {
        let d = self.tn + self.fp;
        if d == 0 {
            0.0
        } else {
            self.tn as f64 / d as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Area under the ROC curve from positive-class scores, computed via the
/// Mann–Whitney U statistic (ties counted as half).
///
/// Returns 0.5 when either class is absent (no ranking information).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn roc_auc(scores: &[f32], labels: &[i32]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "score/label length");
    let mut pos: Vec<f32> = Vec::new();
    let mut neg: Vec<f32> = Vec::new();
    for (&s, &l) in scores.iter().zip(labels) {
        if l == 1 {
            pos.push(s);
        } else {
            neg.push(s);
        }
    }
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    let mut u = 0.0f64;
    for &p in &pos {
        for &n in &neg {
            u += if p > n {
                1.0
            } else if p == n {
                0.5
            } else {
                0.0
            };
        }
    }
    u / (pos.len() as f64 * neg.len() as f64)
}

/// Full binary-classification report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassificationReport {
    /// Confusion counts.
    pub confusion: Confusion,
    /// Area under the ROC curve.
    pub auc: f64,
}

impl ClassificationReport {
    /// Builds the report from positive-class scores and labels, thresholding
    /// scores at 0.5 for the confusion counts.
    pub fn from_scores(scores: &[f32], labels: &[i32]) -> Self {
        let preds: Vec<usize> = scores.iter().map(|&s| (s >= 0.5) as usize).collect();
        ClassificationReport {
            confusion: Confusion::from_predictions(&preds, labels),
            auc: roc_auc(scores, labels),
        }
    }
}

impl std::fmt::Display for ClassificationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = &self.confusion;
        write!(
            f,
            "acc={:.3} prec={:.3} rec={:.3} spec={:.3} f1={:.3} auc={:.3} (n={})",
            c.accuracy(),
            c.precision(),
            c.recall(),
            c.specificity(),
            c.f1(),
            self.auc,
            c.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let preds = [1, 1, 0, 0, 1];
        let labels = [1, 0, 0, 1, 1];
        let c = Confusion::from_predictions(&preds, &labels);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (2, 1, 1, 1));
        assert_eq!(c.total(), 5);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.specificity() - 0.5).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_confusions_are_zero_not_nan() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let labels = [0, 0, 1, 1];
        assert_eq!(roc_auc(&[0.1, 0.2, 0.8, 0.9], &labels), 1.0);
        assert_eq!(roc_auc(&[0.9, 0.8, 0.2, 0.1], &labels), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        assert_eq!(roc_auc(&[0.5, 0.5, 0.5, 0.5], &[0, 1, 0, 1]), 0.5);
        // Single-class degenerate case.
        assert_eq!(roc_auc(&[0.1, 0.9], &[1, 1]), 0.5);
    }

    #[test]
    fn report_thresholds_at_half() {
        let scores = [0.9f32, 0.4, 0.6, 0.1];
        let labels = [1, 1, 0, 0];
        let r = ClassificationReport::from_scores(&scores, &labels);
        assert_eq!(r.confusion.tp, 1);
        assert_eq!(r.confusion.fn_, 1);
        assert_eq!(r.confusion.fp, 1);
        assert_eq!(r.confusion.tn, 1);
        assert!((r.auc - 0.75).abs() < 1e-12);
        assert!(r.to_string().contains("auc=0.750"));
    }
}
