//! Zero-dependency observability: timing spans + a metrics registry.
//!
//! Metrics live in lock-sharded [`Registry`] scopes of named
//! [`Counter`]s, [`Gauge`]s and [`Histogram`]s. By default every crate
//! in the workspace records into the process-global scope via the free
//! functions ([`counter`], [`add_counter`], [`snapshot`], …); hosts
//! that run several tenants in one process (the flare job runtime)
//! hand each tenant its own [`Registry::new`] so same-named metrics
//! from concurrent runs never mix. Recording is a handful of relaxed
//! atomics, cheap enough to leave enabled in release builds; the
//! `CLINFL_OBS` env var (`0` / `off` / `false`) turns the whole layer
//! into near-no-ops.
//!
//! Hierarchical wall-clock spans (`run > round > site > train_step`)
//! live on a per-thread stack: entering returns a [`SpanGuard`], and the
//! guard's drop records the elapsed time into a histogram named after
//! the full path (`span.run>round`). [`snapshot`] freezes everything
//! into a [`MetricsSnapshot`] that serializes to JSON (and parses back)
//! and renders a human summary table.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod json;
mod snapshot;

pub use snapshot::{HistogramSnapshot, MetricsSnapshot};

use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enable knob
// ---------------------------------------------------------------------------

/// Whether observability recording is enabled.
///
/// Defaults to on; `CLINFL_OBS=0` (or `off` / `false`) disables it. The
/// env var is read once, on first use; [`set_enabled`] overrides it at
/// runtime (used by tests and the bench driver).
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Force the enable knob on or off for the rest of the process,
/// overriding `CLINFL_OBS`.
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

fn enabled_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let off = std::env::var("CLINFL_OBS")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                v == "0" || v == "off" || v == "false"
            })
            .unwrap_or(false);
        AtomicBool::new(!off)
    })
}

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// A monotonically increasing event count (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value, with a `set_max` helper for
/// high-water marks (relaxed atomics).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two magnitude buckets a [`Histogram`] keeps.
/// Bucket `i` counts values `v` with `i == 64 - v.leading_zeros()`
/// (bucket 0 holds only `v == 0`), so the full `u64` range is covered.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A lock-free histogram of `u64` samples: count / sum / min / max plus
/// log2 magnitude buckets. All updates are relaxed atomics, so
/// concurrent recording from the worker pool is lossless.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        let bucket = (64 - v.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Freezes the current state (empty histograms report `min == 0`).
    pub fn freeze(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u8, n))
                })
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Lock-sharded registry
// ---------------------------------------------------------------------------

const SHARDS: usize = 16;

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A scoped, lock-sharded collection of named metrics.
///
/// A `Registry` is a cheap cloneable handle (clones share storage). The
/// process owns one default instance — [`Registry::global`] — that every
/// free function ([`counter`], [`add_counter`], [`snapshot`], …) records
/// into, so code that does not care about scoping never sees this type.
/// Multi-tenant hosts (the job runtime) create one [`Registry::new`] per
/// job instead: two jobs recording the same metric name land in separate
/// scopes, and [`Registry::snapshot`] freezes exactly one job's metrics
/// with no cross-contamination.
#[derive(Clone)]
pub struct Registry {
    shards: Arc<[Mutex<HashMap<String, Metric>>; SHARDS]>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

fn global_registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

impl Registry {
    /// Creates an empty scoped registry, independent of the global one.
    pub fn new() -> Self {
        Registry {
            shards: Arc::new(std::array::from_fn(|_| Mutex::new(HashMap::new()))),
        }
    }

    /// A handle to the process-global default registry — the scope every
    /// free function in this crate records into.
    pub fn global() -> Registry {
        global_registry().clone()
    }

    /// Whether this handle and `other` share the same underlying storage.
    pub fn same_scope(&self, other: &Registry) -> bool {
        Arc::ptr_eq(&self.shards, &other.shards)
    }

    fn shard_for(&self, name: &str) -> &Mutex<HashMap<String, Metric>> {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Returns the counter registered under `name` in this scope,
    /// creating it on first use. Handles are `Arc`s — cache them on hot
    /// paths.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut shard = self.shard_for(name).lock().unwrap();
        match shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the gauge registered under `name` in this scope, creating
    /// it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut shard = self.shard_for(name).lock().unwrap();
        match shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the histogram registered under `name` in this scope,
    /// creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut shard = self.shard_for(name).lock().unwrap();
        match shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Current value of the counter named `name` in this scope, or 0 if
    /// it was never registered.
    pub fn counter_value(&self, name: &str) -> u64 {
        let shard = self.shard_for(name).lock().unwrap();
        match shard.get(name) {
            Some(Metric::Counter(c)) => c.get(),
            _ => 0,
        }
    }

    /// Adds `n` to the counter `name` in this scope if observability is
    /// enabled (one-liner for cold paths; hot paths should cache the
    /// handle).
    pub fn add_counter(&self, name: &str, n: u64) {
        if enabled() {
            self.counter(name).add(n);
        }
    }

    /// Records `v` into the histogram `name` in this scope if
    /// observability is enabled.
    pub fn record_histogram(&self, name: &str, v: u64) {
        if enabled() {
            self.histogram(name).record(v);
        }
    }

    /// Freezes every metric in this scope into a [`MetricsSnapshot`]
    /// with deterministic (sorted) ordering.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for shard in self.shards.iter() {
            let shard = shard.lock().unwrap();
            for (name, metric) in shard.iter() {
                match metric {
                    Metric::Counter(c) => {
                        snap.counters.insert(name.clone(), c.get());
                    }
                    Metric::Gauge(g) => {
                        snap.gauges.insert(name.clone(), g.get());
                    }
                    Metric::Histogram(h) => {
                        snap.histograms.insert(name.clone(), h.freeze());
                    }
                }
            }
        }
        snap
    }
}

/// Returns the counter registered under `name` in the global scope,
/// creating it on first use. Handles are `Arc`s — cache them on hot
/// paths.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Arc<Counter> {
    global_registry().counter(name)
}

/// Returns the gauge registered under `name` in the global scope,
/// creating it on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global_registry().gauge(name)
}

/// Returns the histogram registered under `name` in the global scope,
/// creating it on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global_registry().histogram(name)
}

/// Current value of the counter named `name` in the global scope, or 0
/// if it was never registered (convenience for tests and reports).
pub fn counter_value(name: &str) -> u64 {
    global_registry().counter_value(name)
}

/// Adds `n` to the counter `name` in the global scope if observability
/// is enabled (one-liner for cold paths; hot paths should cache the
/// handle).
pub fn add_counter(name: &str, n: u64) {
    global_registry().add_counter(name, n);
}

/// Records `v` into the histogram `name` in the global scope if
/// observability is enabled.
pub fn record_histogram(name: &str, v: u64) {
    global_registry().record_histogram(name, v);
}

/// CPU time consumed by the *calling thread*, in nanoseconds.
///
/// Unlike a wall clock, deltas of this value attribute work to one
/// service thread even when the box is oversubscribed: time spent
/// descheduled (other threads running on the core) does not count. The
/// scaling bench relies on this to measure root-reactor work per round
/// on a single-core CI runner where 1000+ site threads compete for the
/// CPU.
///
/// Linux/x86_64 issues a raw `clock_gettime(CLOCK_THREAD_CPUTIME_ID)`
/// syscall (the workspace is dependency-free by policy, so no `libc`);
/// other targets fall back to a process-wide monotonic wall clock, which
/// over-attributes under contention but keeps the API total.
// The one `unsafe` in the workspace: a read-only clock syscall with no
// pointers escaping. Kept to a single expression so the crate-level deny
// still guards everything else.
#[allow(unsafe_code)]
pub fn thread_time_ns() -> u64 {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        const SYS_CLOCK_GETTIME: i64 = 228;
        const CLOCK_THREAD_CPUTIME_ID: i64 = 3;
        let mut ts = [0i64; 2]; // struct timespec { tv_sec, tv_nsec }
        let ret: i64;
        unsafe {
            std::arch::asm!(
                "syscall",
                inout("rax") SYS_CLOCK_GETTIME => ret,
                in("rdi") CLOCK_THREAD_CPUTIME_ID,
                in("rsi") ts.as_mut_ptr(),
                out("rcx") _,
                out("r11") _,
                options(nostack)
            );
        }
        if ret == 0 {
            return (ts[0] as u64).saturating_mul(1_000_000_000) + ts[1] as u64;
        }
    }
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Freezes every metric registered in the global scope into a
/// [`MetricsSnapshot`] with deterministic (sorted) ordering.
pub fn snapshot() -> MetricsSnapshot {
    global_registry().snapshot()
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

thread_local! {
    static SPAN_STACK: RefCell<Vec<(String, Instant)>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one timing span; dropping it records the elapsed
/// nanoseconds into the histogram `span.<path>` where `<path>` is the
/// `>`-joined stack of enclosing span names on this thread.
#[must_use = "a span measures the scope that holds its guard"]
pub struct SpanGuard {
    active: bool,
}

/// Opens a timing span named `name` on the current thread. Returns a
/// no-op guard when observability is disabled.
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: false };
    }
    SPAN_STACK.with(|s| s.borrow_mut().push((name.to_string(), Instant::now())));
    SpanGuard { active: true }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path: String = stack
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>()
                .join(">");
            if let Some((_, start)) = stack.pop() {
                let elapsed = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                drop(stack);
                histogram(&format!("span.{path}")).record(elapsed);
            }
        });
    }
}

/// Depth of the current thread's span stack (0 outside any span).
pub fn span_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// The current thread's span path (`run>round`), or an empty string
/// outside any span. Attached to log entries as structured context.
pub fn current_span_path() -> String {
    SPAN_STACK.with(|s| {
        s.borrow()
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
            .join(">")
    })
}

// ---------------------------------------------------------------------------
// Kernel timer
// ---------------------------------------------------------------------------

/// Cached call-count + wall-time instrumentation for one hot kernel.
///
/// Declare as a `static`; the registry handles for `<name>.calls` and
/// `<name>.time_ns` are resolved once and reused, so a timed call costs
/// two `Instant::now()` reads and two relaxed atomic adds (one relaxed
/// load when observability is disabled).
pub struct KernelTimer {
    name: &'static str,
    handles: OnceLock<(Arc<Counter>, Arc<Counter>)>,
}

impl KernelTimer {
    /// Creates a timer for the kernel family `name` (e.g.
    /// `"tensor.matmul"`).
    pub const fn new(name: &'static str) -> Self {
        KernelTimer {
            name,
            handles: OnceLock::new(),
        }
    }

    fn handles(&self) -> &(Arc<Counter>, Arc<Counter>) {
        self.handles.get_or_init(|| {
            (
                counter(&format!("{}.calls", self.name)),
                counter(&format!("{}.time_ns", self.name)),
            )
        })
    }

    /// Runs `f`, recording one invocation and its wall-time.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        if !enabled() {
            return f();
        }
        let (calls, time_ns) = self.handles();
        let start = Instant::now();
        let out = f();
        calls.incr();
        time_ns.add(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        out
    }

    /// Starts timing; the returned guard records one invocation and the
    /// elapsed wall-time when dropped. Equivalent to [`KernelTimer::time`]
    /// for bodies with early returns.
    pub fn start(&self) -> KernelGuard<'_> {
        if !enabled() {
            return KernelGuard { armed: None };
        }
        let (calls, time_ns) = self.handles();
        KernelGuard {
            armed: Some((calls, time_ns, Instant::now())),
        }
    }
}

/// RAII guard from [`KernelTimer::start`]; records on drop.
#[must_use = "the guard records the scope that holds it"]
pub struct KernelGuard<'a> {
    armed: Option<(&'a Counter, &'a Counter, Instant)>,
}

impl Drop for KernelGuard<'_> {
    fn drop(&mut self) {
        if let Some((calls, time_ns, start)) = self.armed.take() {
            calls.incr();
            time_ns.add(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = counter("test.lib.counter");
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);
        assert_eq!(counter_value("test.lib.counter"), 4);
        assert_eq!(counter_value("test.lib.never_registered"), 0);

        let g = gauge("test.lib.gauge");
        g.set(7);
        g.set_max(5);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_buckets_and_freeze() {
        let h = histogram("test.lib.hist");
        for v in [0u64, 1, 1, 7, 1024] {
            h.record(v);
        }
        let s = h.freeze();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1033);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1024);
        // 0 -> bucket 0; 1 -> bucket 1 (x2); 7 -> bucket 3; 1024 -> bucket 11.
        assert_eq!(s.buckets, vec![(0, 1), (1, 2), (3, 1), (11, 1)]);
    }

    #[test]
    fn empty_histogram_min_is_zero() {
        let s = histogram("test.lib.hist_empty").freeze();
        assert_eq!((s.count, s.min, s.max), (0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        counter("test.lib.kindclash");
        let _ = gauge("test.lib.kindclash");
    }

    #[test]
    fn same_name_returns_same_metric() {
        counter("test.lib.shared").add(2);
        counter("test.lib.shared").add(3);
        assert_eq!(counter_value("test.lib.shared"), 5);
    }

    #[test]
    fn spans_nest_and_record() {
        assert_eq!(span_depth(), 0);
        {
            let _a = span("outer_t");
            assert_eq!(current_span_path(), "outer_t");
            {
                let _b = span("inner_t");
                assert_eq!(span_depth(), 2);
                assert_eq!(current_span_path(), "outer_t>inner_t");
            }
            assert_eq!(span_depth(), 1);
        }
        assert_eq!(span_depth(), 0);
        assert_eq!(current_span_path(), "");
        assert_eq!(histogram("span.outer_t").count(), 1);
        assert_eq!(histogram("span.outer_t>inner_t").count(), 1);
    }

    #[test]
    fn scoped_registries_are_isolated() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("test.scoped.hits").add(3);
        b.counter("test.scoped.hits").add(10);
        assert_eq!(a.counter_value("test.scoped.hits"), 3);
        assert_eq!(b.counter_value("test.scoped.hits"), 10);
        // Neither scope leaks into the global registry.
        assert_eq!(counter_value("test.scoped.hits"), 0);
        let snap = a.snapshot();
        assert_eq!(snap.counters.get("test.scoped.hits"), Some(&3));
        assert!(!a.same_scope(&b));
        assert!(a.same_scope(&a.clone()));
    }

    #[test]
    fn global_handle_shares_free_function_scope() {
        let g = Registry::global();
        g.counter("test.scoped.global").add(2);
        add_counter("test.scoped.global", 5);
        assert_eq!(counter_value("test.scoped.global"), 7);
        assert_eq!(g.counter_value("test.scoped.global"), 7);
        assert!(g.same_scope(&Registry::global()));
    }

    #[test]
    fn scoped_histograms_and_gauges() {
        let r = Registry::new();
        r.record_histogram("test.scoped.h", 8);
        r.gauge("test.scoped.g").set(4);
        let snap = r.snapshot();
        assert_eq!(snap.histograms["test.scoped.h"].count, 1);
        assert_eq!(snap.gauges["test.scoped.g"], 4);
        assert_eq!(histogram("test.scoped.h").count(), 0);
    }

    #[test]
    fn kernel_timer_counts() {
        static T: KernelTimer = KernelTimer::new("test.lib.kernel");
        let out = T.time(|| 21 * 2);
        assert_eq!(out, 42);
        T.time(|| ());
        assert_eq!(counter_value("test.lib.kernel.calls"), 2);
        {
            let _g = T.start();
        }
        assert_eq!(counter_value("test.lib.kernel.calls"), 3);
    }
}
