//! Frozen views of the metrics registry: JSON in/out, a human summary
//! table, and `target/obs/<run>.json` artifacts.

use crate::json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Frozen state of one [`crate::Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Sparse `(bucket_index, count)` pairs; bucket `i` holds samples
    /// `v` with `i == 64 - v.leading_zeros()`.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn to_value(&self) -> Value {
        Value::object(vec![
            ("count", Value::UInt(self.count)),
            ("sum", Value::UInt(self.sum)),
            ("min", Value::UInt(self.min)),
            ("max", Value::UInt(self.max)),
            (
                "buckets",
                Value::Array(
                    self.buckets
                        .iter()
                        .map(|&(i, n)| Value::Array(vec![Value::UInt(i as u64), Value::UInt(n)]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let field = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("histogram field {k:?} missing or not a u64"))
        };
        let buckets = v
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or("histogram field \"buckets\" missing")?
            .iter()
            .map(|pair| {
                let pair = pair.as_array().filter(|p| p.len() == 2);
                match pair {
                    Some([i, n]) => match (i.as_u64(), n.as_u64()) {
                        (Some(i), Some(n)) if i < crate::HISTOGRAM_BUCKETS as u64 => {
                            Ok((i as u8, n))
                        }
                        _ => Err("bad histogram bucket".to_string()),
                    },
                    _ => Err("bad histogram bucket".to_string()),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(HistogramSnapshot {
            count: field("count")?,
            sum: field("sum")?,
            min: field("min")?,
            max: field("max")?,
            buckets,
        })
    }
}

/// A frozen, deterministically ordered view of every registered metric.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name (includes `span.*` timings).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Sum of all counters whose name starts with `prefix` (convenient
    /// for aggregating per-site metrics like `flare.site.*.bytes_tx`).
    pub fn counter_sum(&self, prefix: &str, suffix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix) && k.ends_with(suffix))
            .map(|(_, v)| v)
            .sum()
    }

    /// The value of one counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Converts to a JSON value tree (sorted keys, canonical form).
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            (
                "counters",
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::UInt(v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Value::Object(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| {
                            let num = if v >= 0 {
                                Value::UInt(v as u64)
                            } else {
                                Value::Int(v)
                            };
                            (k.clone(), num)
                        })
                        .collect(),
                ),
            ),
            (
                "histograms",
                Value::Object(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_value()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Serializes to canonical JSON. Because the maps are sorted and
    /// the writer is canonical, equal snapshots always produce equal
    /// strings.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Parses a snapshot back from [`MetricsSnapshot::to_json`] output.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Value::parse(text)?;
        let mut snap = MetricsSnapshot::default();
        if let Some(Value::Object(pairs)) = v.get("counters") {
            for (k, val) in pairs {
                let val = val
                    .as_u64()
                    .ok_or_else(|| format!("counter {k:?} is not a u64"))?;
                snap.counters.insert(k.clone(), val);
            }
        }
        if let Some(Value::Object(pairs)) = v.get("gauges") {
            for (k, val) in pairs {
                let val = val
                    .as_i64()
                    .ok_or_else(|| format!("gauge {k:?} is not an i64"))?;
                snap.gauges.insert(k.clone(), val);
            }
        }
        if let Some(Value::Object(pairs)) = v.get("histograms") {
            for (k, val) in pairs {
                snap.histograms
                    .insert(k.clone(), HistogramSnapshot::from_value(val)?);
            }
        }
        Ok(snap)
    }

    /// Renders a human-readable summary table (counters, gauges, and
    /// histogram count/mean/max — span times shown in milliseconds).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<44} {:>16}", "COUNTER", "VALUE");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<44} {v:>16}");
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "\n{:<44} {:>16}", "GAUGE", "VALUE");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "{name:<44} {v:>16}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "\n{:<44} {:>8} {:>12} {:>12}",
                "HISTOGRAM", "COUNT", "MEAN(ms)", "MAX(ms)"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{name:<44} {:>8} {:>12.3} {:>12.3}",
                    h.count,
                    h.mean() / 1e6,
                    h.max as f64 / 1e6
                );
            }
        }
        out
    }

    /// Writes this snapshot to `<obs_dir>/<run>-<pid>-<seq>.json` and
    /// returns the path. The directory defaults to `target/obs/` at the
    /// workspace root; `CLINFL_OBS_DIR` overrides it. The pid/sequence
    /// suffix keeps concurrent runs (parallel test binaries) from
    /// clobbering each other.
    pub fn write_artifact(&self, run: &str) -> std::io::Result<PathBuf> {
        self.write_artifact_tagged(run, "")
    }

    /// Like [`MetricsSnapshot::write_artifact`], but prefixes the file
    /// name with a job/run `tag`: `<obs_dir>/<tag>-<run>-<pid>-<seq>.json`.
    /// Concurrent jobs sharing one `CLINFL_OBS_DIR` pass their unique job
    /// tag here so their snapshot files stay distinguishable (and cannot
    /// clobber each other even if the sequence counter were reset). Both
    /// components are sanitized to `[A-Za-z0-9._-]` — tags come from
    /// user-submitted job names.
    pub fn write_artifact_tagged(&self, run: &str, tag: &str) -> std::io::Result<PathBuf> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        fn sanitize(s: &str) -> String {
            s.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        }
        let dir = match std::env::var_os("CLINFL_OBS_DIR") {
            Some(d) => PathBuf::from(d),
            // crates/obs/../../target/obs == <workspace>/target/obs.
            None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/obs"),
        };
        std::fs::create_dir_all(&dir)?;
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let stem = if tag.is_empty() {
            sanitize(run)
        } else {
            format!("{}-{}", sanitize(tag), sanitize(run))
        };
        let path = dir.join(format!("{stem}-{}-{seq}.json", std::process::id()));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("a.calls".into(), 3);
        snap.counters.insert("b.bytes".into(), u64::MAX);
        snap.gauges.insert("g.peak".into(), -5);
        snap.gauges.insert("g.pos".into(), 7);
        snap.histograms.insert(
            "span.run".into(),
            HistogramSnapshot {
                count: 2,
                sum: 300,
                min: 100,
                max: 200,
                buckets: vec![(7, 1), (8, 1)],
            },
        );
        snap
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = sample();
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
        // Deterministic: serializing again yields the identical string.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn counter_helpers() {
        let snap = sample();
        assert_eq!(snap.counter("a.calls"), 3);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.counter_sum("a.", "calls"), 3);
        assert_eq!(snap.counter_sum("a.", "bytes"), 0);
    }

    #[test]
    fn render_table_mentions_every_metric() {
        let snap = sample();
        let table = snap.render_table();
        for name in ["a.calls", "b.bytes", "g.peak", "span.run"] {
            assert!(table.contains(name), "table missing {name}");
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(MetricsSnapshot::from_json("{").is_err());
        assert!(MetricsSnapshot::from_json(r#"{"counters":{"x":-1}}"#).is_err());
    }
}
