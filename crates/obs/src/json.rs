//! A minimal JSON value, writer, and parser.
//!
//! The workspace vendors its external dependencies as offline stubs, so
//! the obs layer carries its own ~200-line JSON implementation: enough
//! to serialize a [`crate::MetricsSnapshot`] / `BENCH_report.json`
//! deterministically and parse them back for round-trip tests and
//! schema validation. Objects preserve insertion order; serialization
//! is canonical (no whitespace choices), so equal values always render
//! to equal strings.

use std::fmt::Write as _;

/// A JSON value. Numbers are split into signed/unsigned integers and
/// floats so `u64` counters survive a round-trip exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters, byte counts, nanoseconds).
    UInt(u64),
    /// A negative integer (gauges can go below zero).
    Int(i64),
    /// A finite float; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs (insertion order kept).
    pub fn object(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) => u64::try_from(v).ok(),
            Value::Float(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(v) => i64::try_from(v).ok(),
            Value::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a float, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(v) => Some(v as f64),
            Value::Int(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to canonical compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Float(v) => {
                if v.is_finite() {
                    // `{:?}` keeps a trailing ".0" so floats stay floats
                    // across a round-trip.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Returns a message describing the first
    /// error on malformed input.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always a char boundary walk).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::UInt(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|e| format!("invalid number {text:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "42",
            "-7",
            "18446744073709551615",
        ] {
            let v = Value::parse(text).unwrap();
            assert_eq!(v.to_json(), text);
        }
        let v = Value::parse("1.5").unwrap();
        assert_eq!(v, Value::Float(1.5));
        assert_eq!(v.to_json(), "1.5");
    }

    #[test]
    fn round_trips_structures() {
        let text = r#"{"a":[1,2,{"b":"x\ny"}],"c":{},"d":[]}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.to_json(), text);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn parse_accepts_whitespace() {
        let v = Value::parse(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.to_json(), r#"{"k":[1,2]}"#);
    }

    #[test]
    fn rejects_malformed() {
        for text in ["", "{", "[1,", "{\"a\" 1}", "nul", "01a", "\"abc", "1 2"] {
            assert!(Value::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn u64_precision_survives() {
        let v = Value::UInt(u64::MAX);
        let back = Value::parse(&v.to_json()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }
}
