//! The client/server message protocol and its wire encodings.

use crate::codec::EncodedWeights;
use crate::dxo::{Dxo, DxoKind, WeightTensor, Weights};
use crate::wire::{WireDecode, WireEncode, WireReader};
use crate::FlareError;
use std::collections::BTreeMap;

/// Messages sent from a client to the server.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientMessage {
    /// Registration with the provisioned token (sent in the clear, before
    /// the encrypted session exists — mirrors NVFlare's join flow in
    /// Fig. 3: "New client site-1@… joined. Sent token: …").
    Register {
        /// Site name from the provision package.
        site: String,
        /// Registration token from the provision package.
        token: String,
        /// Client's ephemeral Diffie–Hellman public value.
        dh_public: u64,
    },
    /// A local training result for a round.
    Submit {
        /// Round the update belongs to.
        round: u32,
        /// The update payload.
        dxo: Dxo,
    },
    /// Result of validating the broadcast global model locally.
    ValidateReport {
        /// Round validated.
        round: u32,
        /// Metric value (top-1 accuracy).
        metric: f64,
    },
    /// Graceful disconnect.
    Bye {
        /// Site name.
        site: String,
    },
    /// Keepalive sent while a client is idle (e.g. waiting out a recv
    /// retry); refreshes the server's liveness table for the site.
    Heartbeat {
        /// Site name.
        site: String,
    },
    /// Wire-codec negotiation: the client proposes codec specs in
    /// preference order (see [`crate::codec::CodecSpec::parse`] for the
    /// string grammar). Servers predating the codec layer ignore this
    /// message, which the client treats as "negotiate raw".
    CodecPropose {
        /// Site name.
        site: String,
        /// Proposed codec spec strings, most preferred first.
        specs: Vec<String>,
    },
    /// A local training result encoded with the negotiated wire codec
    /// (the compressed counterpart of [`ClientMessage::Submit`]).
    SubmitEnc {
        /// Round the update belongs to.
        round: u32,
        /// Most recent downlink payload id this client reconstructed
        /// (the server's delta base for future downlinks), or
        /// [`crate::codec::NO_BASE`].
        ack: u32,
        /// Training-set size for weighted FedAvg.
        n_examples: u64,
        /// Scalar metrics (train loss etc.).
        metrics: BTreeMap<String, f64>,
        /// The encoded weight payload.
        enc: EncodedWeights,
    },
    /// Validation report that also carries the client's downlink ack
    /// (the compressed counterpart of [`ClientMessage::ValidateReport`]).
    ValidateReportEnc {
        /// Round validated.
        round: u32,
        /// Metric value (top-1 accuracy).
        metric: f64,
        /// Most recent downlink payload id this client reconstructed,
        /// or [`crate::codec::NO_BASE`].
        ack: u32,
    },
    /// A pre-aggregated update from an interior tree-aggregator node: one
    /// weighted partial FedAvg over the node's shard of sites, plus the
    /// per-leaf bookkeeping the root needs for quorum and round summaries
    /// (see [`crate::relay::AggregatorNode`]).
    SubmitShard {
        /// Round the shard belongs to.
        round: u32,
        /// Most recent downlink payload id this node reconstructed, or
        /// [`crate::codec::NO_BASE`].
        ack: u32,
        /// Combined effective example count of the shard (the upstream
        /// FedAvg weight).
        n_examples: u64,
        /// Leaf sites whose updates are folded into this shard, with
        /// their training metrics.
        sites: Vec<(String, std::collections::BTreeMap<String, f64>)>,
        /// Leaf sites this node expected but did not hear from.
        dropped: Vec<String>,
        /// The partial-aggregate weights, raw or codec-encoded.
        payload: ShardPayload,
    },
    /// Per-leaf validation metrics relayed by an interior tree node
    /// (counterpart of [`ClientMessage::ValidateReport`] for a shard).
    ValidateShard {
        /// Round validated.
        round: u32,
        /// Most recent downlink payload id this node reconstructed, or
        /// [`crate::codec::NO_BASE`].
        ack: u32,
        /// `(leaf site, metric)` reports gathered below this node.
        reports: Vec<(String, f64)>,
    },
    /// Announces which leaf sites live below this client (sent by
    /// interior tree nodes right after registration, before any codec
    /// negotiation). A server that never receives one treats the client
    /// as a single leaf.
    AnnounceLeaves {
        /// Leaf site names below this client, sorted.
        sites: Vec<String>,
    },
}

/// The weight payload of a [`ClientMessage::SubmitShard`].
#[derive(Clone, Debug, PartialEq)]
pub enum ShardPayload {
    /// Plain full-precision weights.
    Raw(Weights),
    /// Weights encoded with the codec this node negotiated upstream.
    Encoded(EncodedWeights),
}

impl WireEncode for ShardPayload {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ShardPayload::Raw(w) => {
                0u8.encode(out);
                w.encode(out);
            }
            ShardPayload::Encoded(enc) => {
                1u8.encode(out);
                enc.encode(out);
            }
        }
    }
}

impl WireDecode for ShardPayload {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        match u8::decode(r)? {
            0 => Ok(ShardPayload::Raw(BTreeMap::decode(r)?)),
            1 => Ok(ShardPayload::Encoded(EncodedWeights::decode(r)?)),
            b => Err(FlareError::Codec(format!("invalid ShardPayload tag {b}"))),
        }
    }
}

// The wire layer has no generic tuple impls; shard site lists are encoded
// element-wise.
fn encode_pairs<A: WireEncode, B: WireEncode>(pairs: &[(A, B)], out: &mut Vec<u8>) {
    pairs.len().encode(out);
    for (a, b) in pairs {
        a.encode(out);
        b.encode(out);
    }
}

fn decode_pairs<A: WireDecode, B: WireDecode>(
    r: &mut WireReader<'_>,
) -> Result<Vec<(A, B)>, FlareError> {
    let n = usize::decode(r)?;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push((A::decode(r)?, B::decode(r)?));
    }
    Ok(out)
}

/// Messages sent from the server to a client.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerMessage {
    /// Reply to [`ClientMessage::Register`].
    RegisterAck {
        /// Whether the token was accepted.
        accepted: bool,
        /// Session identifier (the "Token: …" line of Fig. 3).
        session: String,
        /// Server's ephemeral Diffie–Hellman public value.
        dh_public: u64,
    },
    /// A task assignment.
    Task(TaskAssignment),
    /// Reply to [`ClientMessage::CodecPropose`]: the chosen spec (or
    /// `None` when no proposal parsed) plus the codec families this
    /// server supports, for client-side diagnostics.
    CodecAck {
        /// Accepted codec spec string, canonical form; `None` = raw.
        chosen: Option<String>,
        /// Codec families the server understands (see
        /// [`crate::codec::SUPPORTED_CODECS`]).
        supported: Vec<String>,
    },
}

/// The unit of work the ScatterAndGather controller assigns.
#[derive(Clone, Debug, PartialEq)]
pub enum TaskAssignment {
    /// Train locally starting from `weights`.
    Train {
        /// Current round (0-based).
        round: u32,
        /// Total rounds `E`.
        total_rounds: u32,
        /// Global model weights.
        weights: Weights,
    },
    /// Validate `weights` locally and report the metric.
    Validate {
        /// Round being validated.
        round: u32,
        /// Global model weights.
        weights: Weights,
    },
    /// Workflow finished; disconnect.
    Finish,
    /// Train task whose weights arrive via the negotiated wire codec
    /// (the compressed counterpart of [`TaskAssignment::Train`]).
    TrainEnc {
        /// Current round (0-based).
        round: u32,
        /// Total rounds `E`.
        total_rounds: u32,
        /// Encoded global model payload.
        enc: EncodedWeights,
    },
    /// Validate task with codec-encoded weights (the compressed
    /// counterpart of [`TaskAssignment::Validate`]).
    ValidateEnc {
        /// Round being validated.
        round: u32,
        /// Encoded global model payload.
        enc: EncodedWeights,
    },
}

// ---------------------------------------------------------------------
// Wire encodings
// ---------------------------------------------------------------------

impl WireEncode for WeightTensor {
    fn encode(&self, out: &mut Vec<u8>) {
        self.dims.encode(out);
        self.data.encode(out);
    }
}

impl WireDecode for WeightTensor {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        let dims: Vec<usize> = Vec::decode(r)?;
        let data: Vec<f32> = Vec::decode(r)?;
        let expect: usize = dims.iter().product();
        if expect != data.len() {
            return Err(FlareError::Codec(format!(
                "weight tensor dims {dims:?} disagree with {} data values",
                data.len()
            )));
        }
        Ok(WeightTensor { dims, data })
    }
}

impl WireEncode for DxoKind {
    fn encode(&self, out: &mut Vec<u8>) {
        let b: u8 = match self {
            DxoKind::Weights => 0,
            DxoKind::WeightDiff => 1,
            DxoKind::Metrics => 2,
        };
        b.encode(out);
    }
}

impl WireDecode for DxoKind {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        match u8::decode(r)? {
            0 => Ok(DxoKind::Weights),
            1 => Ok(DxoKind::WeightDiff),
            2 => Ok(DxoKind::Metrics),
            b => Err(FlareError::Codec(format!("invalid DxoKind byte {b}"))),
        }
    }
}

impl WireEncode for Dxo {
    fn encode(&self, out: &mut Vec<u8>) {
        self.kind.encode(out);
        self.weights.encode(out);
        self.metrics.encode(out);
        self.n_examples.encode(out);
    }
}

impl WireDecode for Dxo {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        Ok(Dxo {
            kind: DxoKind::decode(r)?,
            weights: BTreeMap::decode(r)?,
            metrics: BTreeMap::decode(r)?,
            n_examples: u64::decode(r)?,
        })
    }
}

impl WireEncode for ClientMessage {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ClientMessage::Register {
                site,
                token,
                dh_public,
            } => {
                0u8.encode(out);
                site.encode(out);
                token.encode(out);
                dh_public.encode(out);
            }
            ClientMessage::Submit { round, dxo } => {
                1u8.encode(out);
                round.encode(out);
                dxo.encode(out);
            }
            ClientMessage::ValidateReport { round, metric } => {
                2u8.encode(out);
                round.encode(out);
                metric.encode(out);
            }
            ClientMessage::Bye { site } => {
                3u8.encode(out);
                site.encode(out);
            }
            ClientMessage::Heartbeat { site } => {
                4u8.encode(out);
                site.encode(out);
            }
            ClientMessage::CodecPropose { site, specs } => {
                5u8.encode(out);
                site.encode(out);
                specs.encode(out);
            }
            ClientMessage::SubmitEnc {
                round,
                ack,
                n_examples,
                metrics,
                enc,
            } => {
                6u8.encode(out);
                round.encode(out);
                ack.encode(out);
                n_examples.encode(out);
                metrics.encode(out);
                enc.encode(out);
            }
            ClientMessage::ValidateReportEnc { round, metric, ack } => {
                7u8.encode(out);
                round.encode(out);
                metric.encode(out);
                ack.encode(out);
            }
            ClientMessage::SubmitShard {
                round,
                ack,
                n_examples,
                sites,
                dropped,
                payload,
            } => {
                8u8.encode(out);
                round.encode(out);
                ack.encode(out);
                n_examples.encode(out);
                encode_pairs(sites, out);
                dropped.encode(out);
                payload.encode(out);
            }
            ClientMessage::ValidateShard {
                round,
                ack,
                reports,
            } => {
                9u8.encode(out);
                round.encode(out);
                ack.encode(out);
                encode_pairs(reports, out);
            }
            ClientMessage::AnnounceLeaves { sites } => {
                10u8.encode(out);
                sites.encode(out);
            }
        }
    }
}

impl WireDecode for ClientMessage {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        match u8::decode(r)? {
            0 => Ok(ClientMessage::Register {
                site: String::decode(r)?,
                token: String::decode(r)?,
                dh_public: u64::decode(r)?,
            }),
            1 => Ok(ClientMessage::Submit {
                round: u32::decode(r)?,
                dxo: Dxo::decode(r)?,
            }),
            2 => Ok(ClientMessage::ValidateReport {
                round: u32::decode(r)?,
                metric: f64::decode(r)?,
            }),
            3 => Ok(ClientMessage::Bye {
                site: String::decode(r)?,
            }),
            4 => Ok(ClientMessage::Heartbeat {
                site: String::decode(r)?,
            }),
            5 => Ok(ClientMessage::CodecPropose {
                site: String::decode(r)?,
                specs: Vec::decode(r)?,
            }),
            6 => Ok(ClientMessage::SubmitEnc {
                round: u32::decode(r)?,
                ack: u32::decode(r)?,
                n_examples: u64::decode(r)?,
                metrics: BTreeMap::decode(r)?,
                enc: EncodedWeights::decode(r)?,
            }),
            7 => Ok(ClientMessage::ValidateReportEnc {
                round: u32::decode(r)?,
                metric: f64::decode(r)?,
                ack: u32::decode(r)?,
            }),
            8 => Ok(ClientMessage::SubmitShard {
                round: u32::decode(r)?,
                ack: u32::decode(r)?,
                n_examples: u64::decode(r)?,
                sites: decode_pairs(r)?,
                dropped: Vec::decode(r)?,
                payload: ShardPayload::decode(r)?,
            }),
            9 => Ok(ClientMessage::ValidateShard {
                round: u32::decode(r)?,
                ack: u32::decode(r)?,
                reports: decode_pairs(r)?,
            }),
            10 => Ok(ClientMessage::AnnounceLeaves {
                sites: Vec::decode(r)?,
            }),
            b => Err(FlareError::Codec(format!("invalid ClientMessage tag {b}"))),
        }
    }
}

impl WireEncode for TaskAssignment {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TaskAssignment::Train {
                round,
                total_rounds,
                weights,
            } => {
                0u8.encode(out);
                round.encode(out);
                total_rounds.encode(out);
                weights.encode(out);
            }
            TaskAssignment::Validate { round, weights } => {
                1u8.encode(out);
                round.encode(out);
                weights.encode(out);
            }
            TaskAssignment::Finish => 2u8.encode(out),
            TaskAssignment::TrainEnc {
                round,
                total_rounds,
                enc,
            } => {
                3u8.encode(out);
                round.encode(out);
                total_rounds.encode(out);
                enc.encode(out);
            }
            TaskAssignment::ValidateEnc { round, enc } => {
                4u8.encode(out);
                round.encode(out);
                enc.encode(out);
            }
        }
    }
}

impl WireDecode for TaskAssignment {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        match u8::decode(r)? {
            0 => Ok(TaskAssignment::Train {
                round: u32::decode(r)?,
                total_rounds: u32::decode(r)?,
                weights: BTreeMap::decode(r)?,
            }),
            1 => Ok(TaskAssignment::Validate {
                round: u32::decode(r)?,
                weights: BTreeMap::decode(r)?,
            }),
            2 => Ok(TaskAssignment::Finish),
            3 => Ok(TaskAssignment::TrainEnc {
                round: u32::decode(r)?,
                total_rounds: u32::decode(r)?,
                enc: EncodedWeights::decode(r)?,
            }),
            4 => Ok(TaskAssignment::ValidateEnc {
                round: u32::decode(r)?,
                enc: EncodedWeights::decode(r)?,
            }),
            b => Err(FlareError::Codec(format!("invalid TaskAssignment tag {b}"))),
        }
    }
}

impl WireEncode for ServerMessage {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServerMessage::RegisterAck {
                accepted,
                session,
                dh_public,
            } => {
                0u8.encode(out);
                accepted.encode(out);
                session.encode(out);
                dh_public.encode(out);
            }
            ServerMessage::Task(t) => {
                1u8.encode(out);
                t.encode(out);
            }
            ServerMessage::CodecAck { chosen, supported } => {
                2u8.encode(out);
                chosen.encode(out);
                supported.encode(out);
            }
        }
    }
}

impl WireDecode for ServerMessage {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, FlareError> {
        match u8::decode(r)? {
            0 => Ok(ServerMessage::RegisterAck {
                accepted: bool::decode(r)?,
                session: String::decode(r)?,
                dh_public: u64::decode(r)?,
            }),
            1 => Ok(ServerMessage::Task(TaskAssignment::decode(r)?)),
            2 => Ok(ServerMessage::CodecAck {
                chosen: Option::decode(r)?,
                supported: Vec::decode(r)?,
            }),
            b => Err(FlareError::Codec(format!("invalid ServerMessage tag {b}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights() -> Weights {
        let mut w = Weights::new();
        w.insert(
            "layer.w".into(),
            WeightTensor::new(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]),
        );
        w.insert("layer.b".into(), WeightTensor::new(vec![3], vec![0.; 3]));
        w
    }

    fn roundtrip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(v, T::from_frame(&v.to_frame()).expect("decode"));
    }

    #[test]
    fn client_messages_roundtrip() {
        roundtrip(ClientMessage::Register {
            site: "site-1".into(),
            token: "2c15ddc6".into(),
            dh_public: 123456789,
        });
        let mut metrics = BTreeMap::new();
        metrics.insert("train_loss".to_string(), 0.919);
        metrics.insert("valid_acc".to_string(), 0.496);
        roundtrip(ClientMessage::Submit {
            round: 3,
            dxo: Dxo {
                kind: DxoKind::Weights,
                weights: weights(),
                metrics,
                n_examples: 866,
            },
        });
        roundtrip(ClientMessage::ValidateReport {
            round: 9,
            metric: 0.875,
        });
        roundtrip(ClientMessage::Bye {
            site: "site-8".into(),
        });
        roundtrip(ClientMessage::Heartbeat {
            site: "site-4".into(),
        });
    }

    #[test]
    fn codec_messages_roundtrip() {
        use crate::codec::{encode_weights, CodecSpec, NO_BASE};
        roundtrip(ClientMessage::CodecPropose {
            site: "site-1".into(),
            specs: vec!["delta+int8".into(), "delta".into()],
        });
        let spec = CodecSpec::parse("delta+int8").unwrap();
        let enc = encode_weights(&weights(), 1, None, &spec, None).unwrap();
        let mut metrics = BTreeMap::new();
        metrics.insert("train_loss".to_string(), 0.42);
        roundtrip(ClientMessage::SubmitEnc {
            round: 2,
            ack: 3,
            n_examples: 866,
            metrics,
            enc: enc.clone(),
        });
        roundtrip(ClientMessage::ValidateReportEnc {
            round: 2,
            metric: 0.5,
            ack: NO_BASE,
        });
        roundtrip(ServerMessage::CodecAck {
            chosen: Some("delta+int8".into()),
            supported: vec!["raw".into(), "delta".into()],
        });
        roundtrip(ServerMessage::Task(TaskAssignment::TrainEnc {
            round: 0,
            total_rounds: 2,
            enc: enc.clone(),
        }));
        roundtrip(ServerMessage::Task(TaskAssignment::ValidateEnc {
            round: 0,
            enc,
        }));
    }

    #[test]
    fn server_messages_roundtrip() {
        roundtrip(ServerMessage::RegisterAck {
            accepted: true,
            session: "64245db0".into(),
            dh_public: 42,
        });
        roundtrip(ServerMessage::Task(TaskAssignment::Train {
            round: 0,
            total_rounds: 10,
            weights: weights(),
        }));
        roundtrip(ServerMessage::Task(TaskAssignment::Validate {
            round: 1,
            weights: weights(),
        }));
        roundtrip(ServerMessage::Task(TaskAssignment::Finish));
    }

    #[test]
    fn tensor_dims_mismatch_rejected() {
        let mut out = crate::wire::FRAME_MAGIC.to_vec();
        vec![2usize, 3].encode(&mut out);
        vec![1.0f32; 5].encode(&mut out); // should be 6
        assert!(WeightTensor::from_frame(&out).is_err());
    }

    #[test]
    fn unknown_tags_rejected() {
        let mut out = crate::wire::FRAME_MAGIC.to_vec();
        99u8.encode(&mut out);
        assert!(ClientMessage::from_frame(&out).is_err());
        assert!(ServerMessage::from_frame(&out).is_err());
        assert!(TaskAssignment::from_frame(&out).is_err());
        assert!(DxoKind::from_frame(&out).is_err());
        assert!(ShardPayload::from_frame(&out).is_err());
    }

    #[test]
    fn shard_messages_roundtrip() {
        use crate::codec::{encode_weights, CodecSpec, NO_BASE};
        let mut metrics = BTreeMap::new();
        metrics.insert("train_loss".to_string(), 0.25);
        roundtrip(ClientMessage::SubmitShard {
            round: 4,
            ack: NO_BASE,
            n_examples: 64,
            sites: vec![
                ("site-1".to_string(), metrics.clone()),
                ("site-2".to_string(), BTreeMap::new()),
            ],
            dropped: vec!["site-3".to_string()],
            payload: ShardPayload::Raw(weights()),
        });
        let spec = CodecSpec::parse("delta+int8").unwrap();
        let enc = encode_weights(&weights(), 1, None, &spec, None).unwrap();
        roundtrip(ClientMessage::SubmitShard {
            round: 5,
            ack: 7,
            n_examples: 128,
            sites: vec![("site-4".to_string(), metrics)],
            dropped: vec![],
            payload: ShardPayload::Encoded(enc),
        });
        roundtrip(ClientMessage::ValidateShard {
            round: 4,
            ack: NO_BASE,
            reports: vec![("site-1".to_string(), 0.5), ("site-2".to_string(), 0.75)],
        });
        roundtrip(ClientMessage::AnnounceLeaves {
            sites: vec!["site-1".to_string(), "site-2".to_string()],
        });
    }
}
