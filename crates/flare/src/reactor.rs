//! The server's event loop building blocks: a readiness queue, mailbox
//! frame queues, and a versioned condition signal.
//!
//! The pre-reactor server spawned one handler thread per client session
//! and polled shared state with 5 ms sleeps; neither survives past a few
//! hundred sites. This module provides the mio-style primitives (built on
//! `std::sync` only — external deps are vendored and no epoll binding is
//! available offline) that replace both:
//!
//! - [`ReadyQueue`] — the reactor's readiness list. Each session owns a
//!   token; whenever its mailbox gains a frame (or closes) the token is
//!   enqueued exactly once. A single reactor thread blocks on
//!   [`ReadyQueue::pop`] and drains ready sessions, so server-side cost
//!   is one thread regardless of fleet size.
//! - [`FrameQueue`] — a session's mailbox: an in-process frame channel
//!   whose producer side can notify a `(ReadyQueue, token)` pair. The
//!   [`QueueTx`]/[`QueueRx`] wrappers adapt it to the
//!   [`crate::transport::FrameTx`]/[`crate::transport::FrameRx`] traits so
//!   a client can hold the far end as an ordinary [`crate::transport::Connection`].
//! - [`Signal`] — a versioned condvar replacing the `sleep(5ms)` polls in
//!   `wait_for_clients` and the codec settle window: state changes bump
//!   the version, waiters block until the version moves or a deadline
//!   passes.

use crate::transport::{FrameRx, FrameTx};
use crate::FlareError;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// ReadyQueue
// ---------------------------------------------------------------------

struct ReadyState {
    queue: VecDeque<usize>,
    /// Dedup bitmap indexed by token: a token already queued is not
    /// queued again, so a chatty session cannot starve the queue.
    queued: Vec<bool>,
    closed: bool,
}

/// The reactor's readiness list; see the module docs.
pub struct ReadyQueue {
    state: Mutex<ReadyState>,
    cv: Condvar,
}

impl Default for ReadyQueue {
    fn default() -> Self {
        ReadyQueue {
            state: Mutex::new(ReadyState {
                queue: VecDeque::new(),
                queued: Vec::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }
}

impl ReadyQueue {
    /// Marks `token` ready. Idempotent while the token is still queued;
    /// a no-op after [`ReadyQueue::close`].
    pub fn notify(&self, token: usize) {
        let mut st = self.state.lock().expect("ready queue poisoned");
        if st.closed {
            return;
        }
        if token >= st.queued.len() {
            st.queued.resize(token + 1, false);
        }
        if !st.queued[token] {
            st.queued[token] = true;
            st.queue.push_back(token);
            self.cv.notify_one();
        }
    }

    /// Blocks until a token is ready (returning it) or the queue closes
    /// (returning `None`). Closing discards queued tokens: the reactor is
    /// shutting down and will not process further traffic.
    pub fn pop(&self) -> Option<usize> {
        let mut st = self.state.lock().expect("ready queue poisoned");
        loop {
            if st.closed {
                return None;
            }
            if let Some(token) = st.queue.pop_front() {
                st.queued[token] = false;
                return Some(token);
            }
            st = self.cv.wait(st).expect("ready queue poisoned");
        }
    }

    /// Closes the queue, waking every waiter with `None`. Idempotent.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("ready queue poisoned");
        st.closed = true;
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------
// FrameQueue
// ---------------------------------------------------------------------

struct FqState {
    frames: VecDeque<Vec<u8>>,
    closed: bool,
}

/// A session mailbox: an in-process frame channel with an optional
/// readiness notifier on the producer side; see the module docs.
pub struct FrameQueue {
    state: Mutex<FqState>,
    cv: Condvar,
    /// Notified (with the token) on every push and on close, so the
    /// reactor learns about new frames and about the peer hanging up.
    notify: Option<(Arc<ReadyQueue>, usize)>,
}

impl FrameQueue {
    /// A queue without a readiness notifier (consumer blocks in
    /// [`FrameQueue::pop_wait`]).
    pub fn new() -> Arc<Self> {
        Self::with_notifier(None)
    }

    /// A queue that marks `token` ready on `ready` after every push and
    /// on close.
    pub fn notifying(ready: Arc<ReadyQueue>, token: usize) -> Arc<Self> {
        Self::with_notifier(Some((ready, token)))
    }

    fn with_notifier(notify: Option<(Arc<ReadyQueue>, usize)>) -> Arc<Self> {
        Arc::new(FrameQueue {
            state: Mutex::new(FqState {
                frames: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            notify,
        })
    }

    /// Enqueues one frame.
    ///
    /// # Errors
    ///
    /// [`FlareError::Transport`] if the queue is closed (peer gone).
    pub fn push(&self, frame: Vec<u8>) -> Result<(), FlareError> {
        {
            let mut st = self.state.lock().expect("frame queue poisoned");
            if st.closed {
                return Err(FlareError::Transport("in-proc peer disconnected".into()));
            }
            st.frames.push_back(frame);
            self.cv.notify_one();
        }
        if let Some((ready, token)) = &self.notify {
            ready.notify(*token);
        }
        Ok(())
    }

    /// Closes the queue (idempotent): pushes start failing, blocked
    /// consumers wake, and the notifier fires once more so the reactor
    /// observes the closure. Frames already queued still deliver.
    pub fn close(&self) {
        {
            let mut st = self.state.lock().expect("frame queue poisoned");
            if st.closed {
                return;
            }
            st.closed = true;
            self.cv.notify_all();
        }
        if let Some((ready, token)) = &self.notify {
            ready.notify(*token);
        }
    }

    /// Non-blocking pop: `Ok(Some)` with the next frame, `Ok(None)` when
    /// the queue is empty but open.
    ///
    /// # Errors
    ///
    /// [`FlareError::Transport`] once the queue is closed *and* drained —
    /// buffered frames still deliver after a close.
    pub fn try_pop(&self) -> Result<Option<Vec<u8>>, FlareError> {
        let mut st = self.state.lock().expect("frame queue poisoned");
        match st.frames.pop_front() {
            Some(f) => Ok(Some(f)),
            None if st.closed => Err(FlareError::Transport("in-proc peer disconnected".into())),
            None => Ok(None),
        }
    }

    /// Blocking pop with a deadline.
    ///
    /// # Errors
    ///
    /// [`FlareError::Timeout`] if the deadline passes,
    /// [`FlareError::Transport`] once closed and drained.
    pub fn pop_wait(&self, timeout: Duration) -> Result<Vec<u8>, FlareError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().expect("frame queue poisoned");
        loop {
            if let Some(f) = st.frames.pop_front() {
                return Ok(f);
            }
            if st.closed {
                return Err(FlareError::Transport("in-proc peer disconnected".into()));
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(FlareError::Timeout);
            }
            let (guard, _timed_out) = self
                .cv
                .wait_timeout(st, left)
                .expect("frame queue poisoned");
            st = guard;
        }
    }
}

/// [`FrameTx`] adapter over a [`FrameQueue`]; dropping it closes the
/// queue, so the consumer sees a disconnect instead of hanging.
pub struct QueueTx(pub Arc<FrameQueue>);

impl FrameTx for QueueTx {
    fn send(&mut self, frame: &[u8]) -> Result<(), FlareError> {
        self.0.push(frame.to_vec())
    }
}

impl Drop for QueueTx {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// [`FrameRx`] adapter over a [`FrameQueue`]; dropping it closes the
/// queue, so the producer's sends start failing instead of accumulating.
pub struct QueueRx(pub Arc<FrameQueue>);

impl FrameRx for QueueRx {
    fn recv(&mut self, timeout: Duration) -> Result<Vec<u8>, FlareError> {
        self.0.pop_wait(timeout)
    }
}

impl Drop for QueueRx {
    fn drop(&mut self) {
        self.0.close();
    }
}

// ---------------------------------------------------------------------
// Signal
// ---------------------------------------------------------------------

/// A versioned condvar: writers [`Signal::bump`] after changing shared
/// state; readers snapshot [`Signal::version`], re-check their predicate,
/// and [`Signal::wait_past`] the snapshot. A bump between the snapshot
/// and the wait returns immediately, so no wakeup can be lost — the
/// pattern that replaces the server's 5 ms sleep-polls.
pub struct Signal {
    ver: Mutex<u64>,
    cv: Condvar,
}

impl Default for Signal {
    fn default() -> Self {
        Signal {
            ver: Mutex::new(0),
            cv: Condvar::new(),
        }
    }
}

impl Signal {
    /// Current version.
    pub fn version(&self) -> u64 {
        *self.ver.lock().expect("signal poisoned")
    }

    /// Announces a state change to all waiters.
    pub fn bump(&self) {
        let mut v = self.ver.lock().expect("signal poisoned");
        *v = v.wrapping_add(1);
        self.cv.notify_all();
    }

    /// Blocks until the version moves past `since` or `deadline` passes.
    /// Returns `true` if the version changed.
    pub fn wait_past(&self, since: u64, deadline: Instant) -> bool {
        let mut v = self.ver.lock().expect("signal poisoned");
        loop {
            if *v != since {
                return true;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let (guard, _) = self.cv.wait_timeout(v, left).expect("signal poisoned");
            v = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn ready_queue_dedups_until_popped() {
        let rq = ReadyQueue::default();
        rq.notify(3);
        rq.notify(3);
        rq.notify(1);
        assert_eq!(rq.pop(), Some(3));
        assert_eq!(rq.pop(), Some(1));
        rq.notify(3); // re-arm after pop
        assert_eq!(rq.pop(), Some(3));
    }

    #[test]
    fn ready_queue_close_wakes_poppers() {
        let rq = Arc::new(ReadyQueue::default());
        let rq2 = Arc::clone(&rq);
        let h = std::thread::spawn(move || rq2.pop());
        std::thread::sleep(Duration::from_millis(20));
        rq.close();
        assert_eq!(h.join().unwrap(), None);
        rq.notify(0); // no-op after close
        assert_eq!(rq.pop(), None);
    }

    #[test]
    fn frame_queue_push_notifies_ready_token() {
        let rq = Arc::new(ReadyQueue::default());
        let q = FrameQueue::notifying(Arc::clone(&rq), 7);
        q.push(b"a".to_vec()).unwrap();
        assert_eq!(rq.pop(), Some(7));
        assert_eq!(q.try_pop().unwrap(), Some(b"a".to_vec()));
        assert_eq!(q.try_pop().unwrap(), None);
    }

    #[test]
    fn frame_queue_close_notifies_and_drains() {
        let rq = Arc::new(ReadyQueue::default());
        let q = FrameQueue::notifying(Arc::clone(&rq), 2);
        q.push(b"last".to_vec()).unwrap();
        q.close();
        // Buffered frame still delivers; then the closure surfaces.
        assert_eq!(q.try_pop().unwrap(), Some(b"last".to_vec()));
        assert!(matches!(q.try_pop(), Err(FlareError::Transport(_))));
        assert!(q.push(b"x".to_vec()).is_err());
        assert_eq!(rq.pop(), Some(2));
    }

    #[test]
    fn pop_wait_times_out_then_delivers() {
        let q = FrameQueue::new();
        assert!(matches!(
            q.pop_wait(Duration::from_millis(10)),
            Err(FlareError::Timeout)
        ));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.push(b"late".to_vec()).unwrap();
        });
        assert_eq!(q.pop_wait(Duration::from_secs(2)).unwrap(), b"late");
        h.join().unwrap();
    }

    #[test]
    fn queue_tx_drop_disconnects_consumer() {
        let q = FrameQueue::new();
        let tx = QueueTx(Arc::clone(&q));
        drop(tx);
        assert!(matches!(
            q.pop_wait(Duration::from_millis(10)),
            Err(FlareError::Transport(_))
        ));
    }

    #[test]
    fn queue_rx_drop_fails_producer() {
        let q = FrameQueue::new();
        let rx = QueueRx(Arc::clone(&q));
        drop(rx);
        assert!(q.push(b"x".to_vec()).is_err());
    }

    #[test]
    fn signal_wait_sees_bump_between_snapshot_and_wait() {
        let s = Arc::new(Signal::default());
        let v = s.version();
        s.bump(); // races the wait in real code; here it precedes it
        assert!(s.wait_past(v, Instant::now() + Duration::from_millis(1)));
        let v = s.version();
        assert!(!s.wait_past(v, Instant::now() + Duration::from_millis(10)));
    }

    #[test]
    fn signal_wakes_concurrent_waiters() {
        let s = Arc::new(Signal::default());
        let woken = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                let woken = Arc::clone(&woken);
                let v = s.version();
                std::thread::spawn(move || {
                    if s.wait_past(v, Instant::now() + Duration::from_secs(5)) {
                        woken.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        s.bump();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(woken.load(Ordering::SeqCst), 4);
    }
}
