//! Declarative job configuration (NVFlare's `job.json`/`config_fed_server`
//! equivalent).
//!
//! NVFlare deployments describe a run — workflow, rounds, aggregator,
//! filters — in a static config shipped to the server. This module gives
//! `clinfl-flare` the same operational surface: a typed [`JobConfig`]
//! parsed from a simple `key = value` text format (no external
//! serialization crates are available offline), from which the runtime
//! objects are constructed.
//!
//! ```text
//! # adr-finetune.job
//! name        = adr-finetune
//! rounds      = 10
//! min_clients = 8
//! timeout_s   = 600
//! validate    = true
//! aggregator  = weighted_fedavg
//! ```

use crate::aggregator::{Aggregator, CoordinateMedian, MaskedSum, TrimmedMean, WeightedFedAvg};
use crate::controller::SagConfig;
use crate::FlareError;
use std::time::Duration;

/// Aggregation rule selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregatorKind {
    /// Example-count-weighted FedAvg (default).
    WeightedFedAvg,
    /// Coordinate-wise median.
    CoordinateMedian,
    /// Trimmed mean, dropping one value per end.
    TrimmedMean,
    /// Masked sum for secure aggregation.
    MaskedSum,
}

impl AggregatorKind {
    /// Instantiates the aggregator.
    pub fn build(self) -> Box<dyn Aggregator> {
        match self {
            AggregatorKind::WeightedFedAvg => Box::new(WeightedFedAvg),
            AggregatorKind::CoordinateMedian => Box::new(CoordinateMedian),
            AggregatorKind::TrimmedMean => Box::new(TrimmedMean { trim: 1 }),
            AggregatorKind::MaskedSum => Box::new(MaskedSum),
        }
    }

    fn parse(s: &str) -> Result<Self, FlareError> {
        match s {
            "weighted_fedavg" | "fedavg" => Ok(AggregatorKind::WeightedFedAvg),
            "coordinate_median" | "median" => Ok(AggregatorKind::CoordinateMedian),
            "trimmed_mean" => Ok(AggregatorKind::TrimmedMean),
            "masked_sum" | "secure_sum" => Ok(AggregatorKind::MaskedSum),
            other => Err(FlareError::Codec(format!(
                "unknown aggregator {other:?} (expected weighted_fedavg, coordinate_median, trimmed_mean, masked_sum)"
            ))),
        }
    }
}

/// A parsed federated job description.
#[derive(Clone, Debug, PartialEq)]
pub struct JobConfig {
    /// Job name (for logs and result files).
    pub name: String,
    /// ScatterAndGather rounds.
    pub rounds: u32,
    /// Minimum client updates per round.
    pub min_clients: usize,
    /// Per-round gather deadline.
    pub round_timeout: Duration,
    /// Whether to validate the global model each round.
    pub validate_global: bool,
    /// Aggregation rule.
    pub aggregator: AggregatorKind,
    /// Number of client sites to provision for the job. Hosts without a
    /// fixed fleet (the job runtime's serve mode) honor this; the
    /// simulator drives its own `n_clients` instead.
    pub clients: usize,
    /// Free-form model selector, interpreted by the host that launches
    /// the job (`clinfl serve` maps `lstm` / `bert` / `bert-mini`).
    /// `None` leaves the host's default.
    pub model: Option<String>,
    /// Run seed override; `None` leaves the host's default seed.
    pub seed: Option<u64>,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            name: "job".to_string(),
            rounds: 10,
            min_clients: 1,
            round_timeout: Duration::from_secs(600),
            validate_global: true,
            aggregator: AggregatorKind::WeightedFedAvg,
            clients: 8,
            model: None,
            seed: None,
        }
    }
}

impl JobConfig {
    /// Parses the `key = value` job format. Unknown keys are rejected
    /// (config typos must fail loudly, not silently fall back to
    /// defaults); blank lines and `#` comments are ignored.
    ///
    /// ```
    /// use clinfl_flare::job::JobConfig;
    /// let job = JobConfig::parse("rounds = 5\nmin_clients = 8\n")?;
    /// assert_eq!(job.sag_config().rounds, 5);
    /// # Ok::<(), clinfl_flare::FlareError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`FlareError::Codec`] with a line-numbered message on any
    /// malformed, unknown, or duplicated entry (a duplicate key would
    /// silently shadow the earlier value — in a config that gates a
    /// multi-hour run, that must fail loudly instead).
    pub fn parse(text: &str) -> Result<Self, FlareError> {
        let mut cfg = JobConfig::default();
        let mut seen: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(FlareError::Codec(format!(
                    "line {}: expected `key = value`, got {line:?}",
                    lineno + 1
                )));
            };
            let (key, value) = (key.trim(), value.trim());
            if let Some(first) = seen.insert(key.to_string(), lineno + 1) {
                return Err(FlareError::Codec(format!(
                    "line {}: duplicate job key {key:?} (first set on line {first})",
                    lineno + 1
                )));
            }
            let bad = |what: &str| {
                FlareError::Codec(format!("line {}: invalid {what}: {value:?}", lineno + 1))
            };
            match key {
                "name" => cfg.name = value.to_string(),
                "rounds" => cfg.rounds = value.parse().map_err(|_| bad("rounds"))?,
                "min_clients" => cfg.min_clients = value.parse().map_err(|_| bad("min_clients"))?,
                "timeout_s" => {
                    cfg.round_timeout =
                        Duration::from_secs(value.parse().map_err(|_| bad("timeout_s"))?)
                }
                "validate" => {
                    cfg.validate_global = match value {
                        "true" | "yes" | "1" => true,
                        "false" | "no" | "0" => false,
                        _ => return Err(bad("validate")),
                    }
                }
                "aggregator" => cfg.aggregator = AggregatorKind::parse(value)?,
                "clients" => cfg.clients = value.parse().map_err(|_| bad("clients"))?,
                "model" => cfg.model = Some(value.to_string()),
                "seed" => cfg.seed = Some(value.parse().map_err(|_| bad("seed"))?),
                other => {
                    return Err(FlareError::Codec(format!(
                        "line {}: unknown job key {other:?}",
                        lineno + 1
                    )))
                }
            }
        }
        if cfg.rounds == 0 {
            return Err(FlareError::Codec("rounds must be at least 1".into()));
        }
        if cfg.clients == 0 {
            return Err(FlareError::Codec("clients must be at least 1".into()));
        }
        Ok(cfg)
    }

    /// The ScatterAndGather settings this job describes.
    pub fn sag_config(&self) -> SagConfig {
        SagConfig {
            rounds: self.rounds,
            min_clients: self.min_clients,
            round_timeout: self.round_timeout,
            validate_global: self.validate_global,
            ..SagConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_job() {
        let cfg = JobConfig::parse(
            "# ADR fine-tune job\n\
             name = adr-finetune\n\
             rounds = 10\n\
             min_clients = 8\n\
             timeout_s = 120\n\
             validate = true\n\
             aggregator = weighted_fedavg\n",
        )
        .unwrap();
        assert_eq!(cfg.name, "adr-finetune");
        assert_eq!(cfg.rounds, 10);
        assert_eq!(cfg.min_clients, 8);
        assert_eq!(cfg.round_timeout, Duration::from_secs(120));
        assert!(cfg.validate_global);
        assert_eq!(cfg.aggregator, AggregatorKind::WeightedFedAvg);
        let sag = cfg.sag_config();
        assert_eq!(sag.rounds, 10);
        assert_eq!(sag.min_clients, 8);
    }

    #[test]
    fn defaults_fill_missing_keys() {
        let cfg = JobConfig::parse("rounds = 3\n").unwrap();
        assert_eq!(cfg.rounds, 3);
        assert_eq!(cfg.min_clients, 1);
        assert!(cfg.validate_global);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let cfg = JobConfig::parse("\n# only comments\n\n").unwrap();
        assert_eq!(cfg, JobConfig::default());
    }

    #[test]
    fn unknown_key_rejected_with_line_number() {
        let err = JobConfig::parse("rounds = 2\nbogus = 7\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn malformed_values_rejected() {
        assert!(JobConfig::parse("rounds = many").is_err());
        assert!(JobConfig::parse("validate = maybe").is_err());
        assert!(JobConfig::parse("not a kv line").is_err());
        assert!(JobConfig::parse("rounds = 0").is_err());
        assert!(JobConfig::parse("clients = 0").is_err());
        assert!(JobConfig::parse("seed = minus-one").is_err());
    }

    #[test]
    fn duplicate_key_rejected_with_both_line_numbers() {
        let err = JobConfig::parse(
            "name = a\n\
             rounds = 2\n\
             # comment between\n\
             rounds = 5\n",
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 4"), "{msg}");
        assert!(msg.contains("duplicate"), "{msg}");
        assert!(msg.contains("rounds"), "{msg}");
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn serve_mode_keys_parse() {
        let cfg = JobConfig::parse("clients = 4\nmodel = lstm\nseed = 99\n").unwrap();
        assert_eq!(cfg.clients, 4);
        assert_eq!(cfg.model.as_deref(), Some("lstm"));
        assert_eq!(cfg.seed, Some(99));
        // Absent keys stay None / default.
        let cfg = JobConfig::parse("rounds = 1\n").unwrap();
        assert_eq!(cfg.clients, 8);
        assert_eq!(cfg.model, None);
        assert_eq!(cfg.seed, None);
    }

    #[test]
    fn aggregator_aliases() {
        for (alias, kind) in [
            ("fedavg", AggregatorKind::WeightedFedAvg),
            ("median", AggregatorKind::CoordinateMedian),
            ("trimmed_mean", AggregatorKind::TrimmedMean),
            ("secure_sum", AggregatorKind::MaskedSum),
        ] {
            let cfg = JobConfig::parse(&format!("aggregator = {alias}")).unwrap();
            assert_eq!(cfg.aggregator, kind);
        }
        assert!(JobConfig::parse("aggregator = quantum").is_err());
    }

    #[test]
    fn build_produces_named_aggregators() {
        assert_eq!(
            AggregatorKind::WeightedFedAvg.build().name(),
            "WeightedFedAvg"
        );
        assert_eq!(AggregatorKind::MaskedSum.build().name(), "MaskedSum");
    }
}
