//! Deterministic fault injection for the transport layer.
//!
//! NVFlare's own positioning paper ("Federated Learning from Simulation to
//! Real-World") calls out client dropouts and flaky links as the gap
//! between simulator runs and production deployments. This module closes
//! that gap for the `clinfl` runtime: a [`FaultPlan`] wraps a
//! [`Connection`] so every frame consults a seeded decision function
//! before it moves — frames can be **dropped**, **delayed**, or
//! **truncated**, and whole clients can be **crashed** mid-round.
//!
//! Decisions depend only on `(seed, site, direction, frame sequence
//! number)`, never on wall-clock time or thread scheduling, so two runs
//! with the same plan inject byte-identical fault sequences. That is what
//! lets the chaos tests (and CI) assert fault events reproduce run-to-run.
//!
//! Frame `0` of each direction is exempt: it carries the plaintext
//! registration handshake, and a federation that cannot even join is not
//! an interesting chaos scenario.

use crate::log::EventLog;
use crate::transport::{Connection, FrameRx, FrameTx};
use crate::FlareError;
use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

/// What happens to one unlucky frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The frame is silently discarded (lost packet).
    Drop,
    /// The frame is held back for the plan's delay before delivery.
    Delay,
    /// The frame is cut to half its length (corrupted link); the secure
    /// channel's MAC check rejects it at the receiver.
    Truncate,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Truncate => "truncate",
        })
    }
}

/// A seeded fault profile. Rates are per-mille (`200` = 20% of frames).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed for the per-frame decision hash.
    pub seed: u64,
    /// Fraction of frames silently dropped, in per-mille.
    pub drop_permille: u16,
    /// Fraction of frames truncated in transit, in per-mille.
    pub truncate_permille: u16,
    /// Fraction of frames delayed, in per-mille.
    pub delay_permille: u16,
    /// How long a delayed frame is held back.
    pub delay: Duration,
    /// Mid-round client crashes: 0-based site index → round at which that
    /// client stops responding (no goodbye).
    pub crash_at: BTreeMap<usize, u32>,
}

impl FaultConfig {
    /// A plan that injects nothing (the default everywhere).
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            drop_permille: 0,
            truncate_permille: 0,
            delay_permille: 0,
            delay: Duration::ZERO,
            crash_at: BTreeMap::new(),
        }
    }

    /// A light profile: 5% drops, 2% truncations, 10% small delays.
    pub fn mild(seed: u64) -> Self {
        FaultConfig {
            seed,
            drop_permille: 50,
            truncate_permille: 20,
            delay_permille: 100,
            delay: Duration::from_millis(5),
            crash_at: BTreeMap::new(),
        }
    }

    /// The chaos profile the CI gate runs: ≥20% of frames lost (20%
    /// dropped outright plus 6% truncated), 15% delayed, and two
    /// mid-round client crashes (site index 5 at round 1, index 6 at
    /// round 2).
    pub fn aggressive(seed: u64) -> Self {
        let mut crash_at = BTreeMap::new();
        crash_at.insert(5, 1);
        crash_at.insert(6, 2);
        FaultConfig {
            seed,
            drop_permille: 200,
            truncate_permille: 60,
            delay_permille: 150,
            delay: Duration::from_millis(10),
            crash_at,
        }
    }

    /// Looks up a named profile (`none`, `mild`, `aggressive`).
    pub fn profile(name: &str, seed: u64) -> Option<Self> {
        match name {
            "none" | "" => Some(FaultConfig::none()),
            "mild" => Some(FaultConfig::mild(seed)),
            "aggressive" => Some(FaultConfig::aggressive(seed)),
            _ => None,
        }
    }

    /// Reads the `CLINFL_FAULTS` environment variable (`none`, `mild`,
    /// `aggressive`) into a profile; unset or unknown values mean no
    /// faults.
    pub fn from_env(seed: u64) -> Self {
        std::env::var("CLINFL_FAULTS")
            .ok()
            .and_then(|v| FaultConfig::profile(v.trim(), seed))
            .unwrap_or_else(FaultConfig::none)
    }

    /// True when the plan can actually do something.
    pub fn is_active(&self) -> bool {
        self.drop_permille > 0
            || self.truncate_permille > 0
            || self.delay_permille > 0
            || !self.crash_at.is_empty()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A live fault plan: the config plus the [`EventLog`] every injected
/// fault is recorded in (component `FaultInjector`), so chaos runs stay
/// auditable.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    log: EventLog,
}

impl FaultPlan {
    /// Creates a plan over a shared log.
    pub fn new(config: FaultConfig, log: EventLog) -> Self {
        FaultPlan { config, log }
    }

    /// The underlying profile.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The round at which the site with this 0-based index crashes, if
    /// the plan schedules one.
    pub fn crash_round(&self, site_index: usize) -> Option<u32> {
        self.config.crash_at.get(&site_index).copied()
    }

    /// The schedule-independent verdict for frame `seq` of `site`'s
    /// `dir` lane (`c2s` or `s2c`). Frame 0 (registration) is exempt.
    pub fn decide(&self, site: &str, dir: &str, seq: u64) -> Option<FaultKind> {
        if seq == 0 || !self.config.is_active() {
            return None;
        }
        let mut h = self.config.seed ^ 0x9E37_79B9_7F4A_7C15;
        for b in site.bytes().chain(dir.bytes()) {
            h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
        h ^= seq.wrapping_mul(0xD1B5_4A32_D192_ED03);
        let roll = (splitmix64(h) % 1000) as u16;
        let c = &self.config;
        if roll < c.drop_permille {
            Some(FaultKind::Drop)
        } else if roll < c.drop_permille + c.truncate_permille {
            Some(FaultKind::Truncate)
        } else if roll < c.drop_permille + c.truncate_permille + c.delay_permille {
            Some(FaultKind::Delay)
        } else {
            None
        }
    }

    /// Wraps both halves of a connection with fault-injecting shims. A
    /// plan that is not [`FaultConfig::is_active`] returns the connection
    /// untouched.
    pub fn wrap(&self, site: &str, conn: Connection) -> Connection {
        if !self.config.is_active() {
            return conn;
        }
        Connection {
            tx: Box::new(FaultyTx {
                inner: conn.tx,
                lane: Lane::new(self.clone(), site, "c2s"),
            }),
            rx: Box::new(FaultyRx {
                inner: conn.rx,
                lane: Lane::new(self.clone(), site, "s2c"),
            }),
        }
    }
}

/// One direction of one wrapped connection: counts frames and records
/// every injected fault.
struct Lane {
    plan: FaultPlan,
    site: String,
    dir: &'static str,
    seq: u64,
}

impl Lane {
    fn new(plan: FaultPlan, site: &str, dir: &'static str) -> Self {
        Lane {
            plan,
            site: site.to_string(),
            dir,
            seq: 0,
        }
    }

    /// Advances the frame counter and returns the verdict for this frame,
    /// logging any injection.
    fn next(&mut self, frame_len: usize) -> Option<FaultKind> {
        let seq = self.seq;
        self.seq += 1;
        let fault = self.plan.decide(&self.site, self.dir, seq);
        if let Some(kind) = fault {
            self.plan.log.warn(
                "FaultInjector",
                format!(
                    "{} {}#{seq}: injected {kind} ({frame_len}B frame)",
                    self.site, self.dir
                ),
            );
            // Mirror every injection log line as an obs counter so log
            // and metrics views of a chaos run always agree.
            clinfl_obs::add_counter(&format!("flare.faults.{kind}"), 1);
        }
        fault
    }
}

struct FaultyTx {
    inner: Box<dyn FrameTx>,
    lane: Lane,
}

impl FrameTx for FaultyTx {
    fn send(&mut self, frame: &[u8]) -> Result<(), FlareError> {
        match self.lane.next(frame.len()) {
            Some(FaultKind::Drop) => Ok(()), // lost in transit; sender can't tell
            Some(FaultKind::Truncate) => self.inner.send(&frame[..frame.len() / 2]),
            Some(FaultKind::Delay) => {
                std::thread::sleep(self.lane.plan.config.delay);
                self.inner.send(frame)
            }
            None => self.inner.send(frame),
        }
    }
}

struct FaultyRx {
    inner: Box<dyn FrameRx>,
    lane: Lane,
}

impl FrameRx for FaultyRx {
    fn recv(&mut self, timeout: Duration) -> Result<Vec<u8>, FlareError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let frame = self.inner.recv(remaining)?;
            match self.lane.next(frame.len()) {
                Some(FaultKind::Drop) => continue, // lost; keep waiting
                Some(FaultKind::Truncate) => return Ok(frame[..frame.len() / 2].to_vec()),
                Some(FaultKind::Delay) => {
                    std::thread::sleep(self.lane.plan.config.delay);
                    return Ok(frame);
                }
                None => return Ok(frame),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::in_proc_pair;

    fn plan(config: FaultConfig) -> FaultPlan {
        FaultPlan::new(config, EventLog::new())
    }

    #[test]
    fn decisions_are_deterministic_and_exempt_registration() {
        let p = plan(FaultConfig::aggressive(7));
        for seq in 0..200 {
            assert_eq!(
                p.decide("site-3", "c2s", seq),
                p.decide("site-3", "c2s", seq)
            );
        }
        assert_eq!(p.decide("site-1", "c2s", 0), None);
        assert_eq!(p.decide("site-1", "s2c", 0), None);
    }

    #[test]
    fn aggressive_rates_land_near_nominal() {
        let p = plan(FaultConfig::aggressive(42));
        let mut drops = 0;
        let n = 10_000;
        for seq in 1..=n {
            if matches!(
                p.decide("site-2", "s2c", seq),
                Some(FaultKind::Drop | FaultKind::Truncate)
            ) {
                drops += 1;
            }
        }
        let rate = f64::from(drops) / f64::from(n as u32);
        // Nominal loss rate is 26% (20% drop + 6% truncate).
        assert!((0.2..0.32).contains(&rate), "loss rate {rate}");
    }

    #[test]
    fn lanes_differ_by_site_and_direction() {
        let p = plan(FaultConfig::aggressive(42));
        let verdicts =
            |site: &str, dir: &str| (1..500).map(|s| p.decide(site, dir, s)).collect::<Vec<_>>();
        assert_ne!(verdicts("site-1", "c2s"), verdicts("site-2", "c2s"));
        assert_ne!(verdicts("site-1", "c2s"), verdicts("site-1", "s2c"));
    }

    #[test]
    fn inactive_plan_is_passthrough() {
        let p = plan(FaultConfig::none());
        let (a, mut b) = in_proc_pair();
        let mut a = p.wrap("site-1", a);
        a.tx.send(b"one").unwrap();
        a.tx.send(b"two").unwrap();
        assert_eq!(b.rx.recv(Duration::from_millis(200)).unwrap(), b"one");
        assert_eq!(b.rx.recv(Duration::from_millis(200)).unwrap(), b"two");
    }

    #[test]
    fn always_drop_loses_everything_after_registration() {
        let cfg = FaultConfig {
            drop_permille: 1000,
            ..FaultConfig::mild(1)
        };
        let log = EventLog::new();
        let p = FaultPlan::new(cfg, log.clone());
        let (a, mut b) = in_proc_pair();
        let mut a = p.wrap("site-1", a);
        a.tx.send(b"register").unwrap(); // frame 0 is exempt
        a.tx.send(b"payload").unwrap(); // dropped
        assert_eq!(b.rx.recv(Duration::from_millis(100)).unwrap(), b"register");
        assert!(matches!(
            b.rx.recv(Duration::from_millis(50)),
            Err(FlareError::Timeout)
        ));
        assert!(log.contains("injected drop"));
    }

    #[test]
    fn truncated_frames_arrive_halved() {
        let cfg = FaultConfig {
            drop_permille: 0,
            truncate_permille: 1000,
            delay_permille: 0,
            ..FaultConfig::mild(1)
        };
        let p = plan(cfg);
        let (a, mut b) = in_proc_pair();
        let mut a = p.wrap("site-1", a);
        a.tx.send(b"register").unwrap();
        a.tx.send(&[9u8; 64]).unwrap();
        b.rx.recv(Duration::from_millis(100)).unwrap();
        assert_eq!(b.rx.recv(Duration::from_millis(100)).unwrap().len(), 32);
    }

    #[test]
    fn rx_drop_keeps_waiting_within_deadline() {
        let cfg = FaultConfig {
            drop_permille: 1000,
            ..FaultConfig::mild(1)
        };
        let p = plan(cfg);
        let (mut a, b) = in_proc_pair();
        let mut b = p.wrap("site-1", b);
        a.tx.send(b"first").unwrap(); // rx frame 0: exempt
        a.tx.send(b"second").unwrap(); // rx frame 1: dropped on receive
        assert_eq!(b.rx.recv(Duration::from_millis(100)).unwrap(), b"first");
        let start = Instant::now();
        assert!(matches!(
            b.rx.recv(Duration::from_millis(80)),
            Err(FlareError::Timeout)
        ));
        assert!(start.elapsed() >= Duration::from_millis(70));
    }

    #[test]
    fn profiles_resolve_by_name() {
        assert_eq!(FaultConfig::profile("none", 1), Some(FaultConfig::none()));
        assert_eq!(FaultConfig::profile("mild", 2), Some(FaultConfig::mild(2)));
        assert_eq!(
            FaultConfig::profile("aggressive", 3),
            Some(FaultConfig::aggressive(3))
        );
        assert_eq!(FaultConfig::profile("chaotic-evil", 1), None);
        assert!(!FaultConfig::none().is_active());
        assert!(FaultConfig::aggressive(1).is_active());
        assert_eq!(FaultConfig::aggressive(1).crash_at.len(), 2);
    }

    #[test]
    fn crash_rounds_surface_through_plan() {
        let p = plan(FaultConfig::aggressive(1));
        assert_eq!(p.crash_round(5), Some(1));
        assert_eq!(p.crash_round(6), Some(2));
        assert_eq!(p.crash_round(0), None);
    }
}
