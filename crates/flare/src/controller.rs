//! The ScatterAndGather workflow controller (NVFlare's SAG, shown in the
//! paper's Fig. 3 round loop).

use crate::aggregator::Aggregator;
use crate::checkpoint::RunCheckpoint;
use crate::dxo::{Dxo, Weights};
use crate::log::EventLog;
use crate::messages::TaskAssignment;
use crate::persistor::Persistor;
use crate::FlareError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server-side view of the client fleet, implemented by
/// [`crate::server::FlServer`] and by mocks in tests.
pub trait ClientGateway {
    /// Names of currently registered, alive clients.
    fn client_sites(&self) -> Vec<String>;

    /// Sends a task to every alive client; returns the delivered count.
    fn broadcast(&mut self, task: &TaskAssignment) -> usize;

    /// Collects `Submit` updates for `round` until `expected` arrive or
    /// `timeout` elapses.
    fn collect_submissions(
        &mut self,
        round: u32,
        expected: usize,
        timeout: Duration,
    ) -> Vec<(String, Dxo)>;

    /// Collects `ValidateReport` metrics for `round`.
    fn collect_validations(
        &mut self,
        round: u32,
        expected: usize,
        timeout: Duration,
    ) -> Vec<(String, f64)>;

    /// Like [`ClientGateway::collect_submissions`], but abandons the
    /// gather — returning `None` — once `cancel` reports `true`. The
    /// default checks only on entry (mocks stay trivially correct);
    /// [`crate::server::FlServer`] re-polls between wait slices so a job
    /// abort interrupts a round mid-gather instead of waiting out the
    /// full timeout.
    fn collect_submissions_cancellable(
        &mut self,
        round: u32,
        expected: usize,
        timeout: Duration,
        cancel: &mut dyn FnMut() -> bool,
    ) -> Option<Vec<(String, Dxo)>> {
        if cancel() {
            return None;
        }
        Some(self.collect_submissions(round, expected, timeout))
    }

    /// Cancellable twin of [`ClientGateway::collect_validations`]; see
    /// [`ClientGateway::collect_submissions_cancellable`].
    fn collect_validations_cancellable(
        &mut self,
        round: u32,
        expected: usize,
        timeout: Duration,
        cancel: &mut dyn FnMut() -> bool,
    ) -> Option<Vec<(String, f64)>> {
        if cancel() {
            return None;
        }
        Some(self.collect_validations(round, expected, timeout))
    }

    /// All leaf sites reachable through the registered clients. For a
    /// flat fleet this is [`ClientGateway::client_sites`]; a tree gateway
    /// expands interior aggregator nodes into the leaves they announced.
    fn leaf_sites(&self) -> Vec<String> {
        self.client_sites()
    }

    /// Leaf-granular bookkeeping for `round` gathered from interior
    /// aggregator shards, or `None` when every update came straight from
    /// a leaf (flat topology).
    fn round_manifest(&self, round: u32) -> Option<RoundManifest> {
        let _ = round;
        None
    }

    /// Sends a task to the named subset of sites, returning the delivered
    /// count. The default falls back to [`ClientGateway::broadcast`]
    /// (mocks stay correct because the controller filters collected
    /// updates to the sampled set anyway); [`crate::server::FlServer`]
    /// overrides this with a slot-targeted send so unsampled sites never
    /// even receive the round's weights.
    fn send_to(&mut self, sites: &[String], task: &TaskAssignment) -> usize {
        let _ = sites;
        self.broadcast(task)
    }
}

/// The deterministic per-round client sample: a Fisher–Yates shuffle of
/// the sorted site list driven by a splitmix64 stream keyed on
/// `(run_seed, round)`, keeping the first `ceil(fraction · n)` names
/// (clamped to `[1, n]`) and re-sorting them so aggregation order stays
/// name-stable. A pure function of its arguments — the same run seed
/// replays the same participant schedule, which is what lets sampling
/// compose with crash-resume.
pub fn sample_sites(run_seed: u64, round: u32, fraction: f64, sites: &[String]) -> Vec<String> {
    let n = sites.len();
    if n == 0 || fraction >= 1.0 {
        return sites.to_vec();
    }
    let k = ((fraction.max(0.0) * n as f64).ceil() as usize).clamp(1, n);
    let mut order: Vec<usize> = (0..n).collect();
    let mut state =
        run_seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_5A3B_1E55_0113;
    for i in (1..n).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut chosen: Vec<String> = order[..k].iter().map(|&i| sites[i].clone()).collect();
    chosen.sort();
    chosen
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-leaf bookkeeping for one shard of a tree round: which leaf sites
/// an interior aggregator folded into its partial update (with their
/// training metrics), and which of its leaves it expected but lost.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardMeta {
    /// `(leaf site, training metrics)` pairs folded into the shard.
    pub sites: Vec<(String, BTreeMap<String, f64>)>,
    /// Leaf sites the shard's aggregator expected but did not hear from.
    pub dropped: Vec<String>,
}

/// The leaf-granular view of a tree round, keyed by the direct child
/// (interior node or leaf) that delivered each shard.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoundManifest {
    /// Shard bookkeeping per direct child, in child-name order.
    pub shards: BTreeMap<String, ShardMeta>,
}

impl RoundManifest {
    /// Every leaf contributor across all shards with its metrics, sorted
    /// by leaf name.
    pub fn leaf_contributors(&self) -> Vec<(String, BTreeMap<String, f64>)> {
        let mut out: Vec<(String, BTreeMap<String, f64>)> = self
            .shards
            .values()
            .flat_map(|s| s.sites.iter().cloned())
            .collect();
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        out
    }
}

/// Configuration of the ScatterAndGather workflow.
#[derive(Clone, Debug, PartialEq)]
pub struct SagConfig {
    /// Number of communication rounds `E`.
    pub rounds: u32,
    /// Minimum client updates needed to aggregate a round.
    pub min_clients: usize,
    /// Deadline for gathering one round's updates.
    pub round_timeout: Duration,
    /// Whether to run a client-side validation pass on each new global
    /// model (the paper validates the aggregated model every round).
    pub validate_global: bool,
    /// Once `min_clients` submissions have arrived, close the round this
    /// long after the last accepted submission instead of waiting out the
    /// full `round_timeout`. `None` waits for every expected client.
    pub quorum_grace: Option<Duration>,
    /// Restart from this checkpoint instead of round 0: the controller
    /// restores the global weights, completed round summaries, and
    /// best-metric state, then continues at `next_round`. The `initial`
    /// weights passed to [`ScatterAndGather::run`] are ignored.
    pub resume_from: Option<RunCheckpoint>,
    /// Fraction of leaf sites trained per round (FedAvg client sampling).
    /// Each round a deterministic subset of `ceil(fraction · n)` sites —
    /// a pure function of `(run_seed, round)`, see [`sample_sites`] — is
    /// scattered to and gathered from; quorum, drop bookkeeping, and
    /// round summaries are computed against the sampled set. Validation
    /// still broadcasts to the whole fleet. `>= 1.0` (the default)
    /// disables sampling entirely and takes the exact legacy code path.
    pub client_sample_fraction: f64,
}

impl Default for SagConfig {
    fn default() -> Self {
        SagConfig {
            rounds: 10,
            min_clients: 1,
            round_timeout: Duration::from_secs(600),
            validate_global: true,
            quorum_grace: None,
            resume_from: None,
            client_sample_fraction: 1.0,
        }
    }
}

/// Outcome of one round.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundSummary {
    /// Round index (0-based).
    pub round: u32,
    /// Sites whose updates were aggregated.
    pub contributors: Vec<String>,
    /// Per-site training metrics reported with the updates.
    pub client_metrics: BTreeMap<String, BTreeMap<String, f64>>,
    /// Mean validation metric of the aggregated global model (if
    /// `validate_global`).
    pub global_metric: Option<f64>,
    /// Sites that were expected at the start of the round but missed it
    /// (crashed, stalled past the deadline, or lost their update frame).
    pub dropped: Vec<String>,
}

/// Result of a completed workflow.
#[derive(Clone, Debug)]
pub struct WorkflowResult {
    /// The final aggregated global model.
    pub final_weights: Weights,
    /// Per-round summaries.
    pub rounds: Vec<RoundSummary>,
}

impl WorkflowResult {
    /// The last round's global validation metric, if any.
    pub fn final_metric(&self) -> Option<f64> {
        self.rounds.iter().rev().find_map(|r| r.global_metric)
    }

    /// The best global validation metric across rounds, if any.
    pub fn best_metric(&self) -> Option<f64> {
        self.rounds
            .iter()
            .filter_map(|r| r.global_metric)
            .fold(None, |acc, m| Some(acc.map_or(m, |a: f64| a.max(m))))
    }
}

/// The ScatterAndGather controller: for each round, scatter the global
/// model, gather client updates, aggregate, persist, optionally validate.
#[derive(Debug)]
pub struct ScatterAndGather {
    config: SagConfig,
    log: EventLog,
    status: crate::admin::RunStatus,
    run_seed: u64,
    tree_depth: u32,
    tree_fanout: u32,
    obs: clinfl_obs::Registry,
    abort: Option<Arc<AtomicBool>>,
}

impl ScatterAndGather {
    /// Creates the controller.
    pub fn new(config: SagConfig, log: EventLog) -> Self {
        ScatterAndGather {
            config,
            log,
            status: crate::admin::RunStatus::new(),
            run_seed: 0,
            tree_depth: 0,
            tree_fanout: 0,
            obs: clinfl_obs::Registry::global(),
            abort: None,
        }
    }

    /// Records the aggregation-tree topology stamped into every
    /// [`RunCheckpoint`], so a resumed run can stand the same tree back
    /// up. `(0, 0)` means a flat (depth-1) fleet.
    pub fn with_topology(mut self, depth: u32, fanout: u32) -> Self {
        self.tree_depth = depth;
        self.tree_fanout = fanout;
        self
    }

    /// Attaches a shared [`crate::admin::RunStatus`] for admin-console
    /// observation of the run.
    pub fn with_status(mut self, status: crate::admin::RunStatus) -> Self {
        self.status = status;
        self
    }

    /// Records the run seed stamped into every [`RunCheckpoint`], so a
    /// resume under a different seed (and thus a different fault/data
    /// schedule) can be refused.
    pub fn with_run_seed(mut self, seed: u64) -> Self {
        self.run_seed = seed;
        self
    }

    /// Scopes the controller's metrics (`flare.round.*`,
    /// `flare.checkpoint.*`) to `obs` instead of the process-global
    /// registry, so concurrent jobs keep separate counts.
    pub fn with_registry(mut self, obs: clinfl_obs::Registry) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches an abort flag. Once set, the run stops at the next
    /// check — round start, mid-gather (via the cancellable collects),
    /// or before validation — broadcasts `Finish`, marks the status
    /// [`crate::admin::RunPhase::Aborted`], and returns
    /// [`FlareError::Aborted`].
    pub fn with_abort(mut self, abort: Arc<AtomicBool>) -> Self {
        self.abort = Some(abort);
        self
    }

    /// The live status handle.
    pub fn status(&self) -> &crate::admin::RunStatus {
        &self.status
    }

    fn abort_requested(&self) -> bool {
        self.abort
            .as_ref()
            .map(|a| a.load(Ordering::Relaxed))
            .unwrap_or(false)
    }

    /// Winds the run down after an operator abort: tells clients to
    /// finish so their threads exit promptly, then surfaces the abort.
    fn finish_aborted(&self, gateway: &mut dyn ClientGateway, tag: &str, round: u32) -> FlareError {
        gateway.broadcast(&TaskAssignment::Finish);
        self.status.set_phase(crate::admin::RunPhase::Aborted);
        self.obs.add_counter("flare.run.aborted", 1);
        self.log
            .warn(tag, format!("Run aborted by operator at round {round}."));
        FlareError::Aborted
    }

    /// Runs the full workflow to completion.
    ///
    /// # Errors
    ///
    /// [`FlareError::NotEnoughClients`] if any round gathers fewer than
    /// `min_clients` updates before the timeout.
    pub fn run(
        &self,
        gateway: &mut dyn ClientGateway,
        aggregator: &dyn Aggregator,
        persistor: &mut dyn Persistor,
        initial: Weights,
    ) -> Result<WorkflowResult, FlareError> {
        let tag = "ScatterAndGather";
        let mut global = initial;
        let mut rounds = Vec::with_capacity(self.config.rounds as usize);
        let mut best_metric: Option<f64> = None;
        let mut best_round: Option<u32> = None;
        let mut start_round = 0u32;
        if let Some(ckpt) = &self.config.resume_from {
            global = ckpt.global.clone();
            rounds = ckpt.rounds.clone();
            best_metric = ckpt.best_metric;
            best_round = ckpt.best_round;
            start_round = ckpt.next_round;
            self.log.info(
                tag,
                format!(
                    "Resuming at round {start_round} of {} from checkpoint (run seed {}).",
                    self.config.rounds, ckpt.seed
                ),
            );
            self.obs.add_counter("flare.checkpoint.resumed", 1);
        }
        for site in gateway.client_sites() {
            self.status.set_client(&site, true);
        }
        for round in start_round..self.config.rounds {
            if self.abort_requested() {
                return Err(self.finish_aborted(gateway, tag, round));
            }
            let _round_span = clinfl_obs::span("round");
            let round_started = std::time::Instant::now();
            self.status.set_phase(crate::admin::RunPhase::Training {
                round,
                total: self.config.rounds,
            });
            self.log.info(tag, format!("Round {round} started."));
            let mut expected_sites = gateway.leaf_sites();
            expected_sites.sort();
            // Per-round client sampling: restrict this round's scatter and
            // gather to a deterministic subset. `sampling = false` keeps
            // the exact legacy path (bit-identical runs).
            let sampling = self.config.client_sample_fraction < 1.0;
            if sampling {
                let all = expected_sites.len();
                expected_sites = sample_sites(
                    self.run_seed,
                    round,
                    self.config.client_sample_fraction,
                    &expected_sites,
                );
                self.log.info(
                    tag,
                    format!(
                        "Sampled {}/{all} site(s) for round {round}: {:?}",
                        expected_sites.len(),
                        expected_sites
                    ),
                );
                self.obs
                    .add_counter("flare.round.sampled", expected_sites.len() as u64);
            }
            let expected = expected_sites.len();
            let train = TaskAssignment::Train {
                round,
                total_rounds: self.config.rounds,
                weights: global.clone(),
            };
            let sent = if sampling {
                gateway.send_to(&expected_sites, &train)
            } else {
                gateway.broadcast(&train)
            };
            self.log
                .info(tag, format!("Scattered global model to {sent} client(s)."));
            let abort = self.abort.clone();
            let mut cancel = move || {
                abort
                    .as_ref()
                    .map(|a| a.load(Ordering::Relaxed))
                    .unwrap_or(false)
            };
            let Some(mut updates) = gateway.collect_submissions_cancellable(
                round,
                expected,
                self.config.round_timeout,
                &mut cancel,
            ) else {
                return Err(self.finish_aborted(gateway, tag, round));
            };
            // Sites train concurrently and submit in arrival order; sort by
            // site name so aggregation order (and the floating-point result)
            // is independent of the thread schedule.
            updates.sort_by(|(a, _), (b, _)| a.cmp(b));
            // Under sampling, drop any update from an unsampled site: a
            // gateway whose `send_to` falls back to broadcast (mocks, old
            // implementations) still has every client training, and their
            // updates must not leak into the aggregate.
            if sampling {
                updates.retain(|(s, _)| expected_sites.binary_search(s).is_ok());
            }
            // Leaf-granular view: with a tree gateway each update is an
            // interior shard covering several leaves; the manifest expands
            // it so quorum, drop bookkeeping, and round summaries stay
            // expressed in leaf sites exactly as in a flat run.
            let mut leaf_updates: Vec<(String, BTreeMap<String, f64>)> =
                match gateway.round_manifest(round) {
                    Some(manifest) => manifest.leaf_contributors(),
                    None => updates
                        .iter()
                        .map(|(s, d)| (s.clone(), d.metrics.clone()))
                        .collect(),
                };
            if sampling {
                leaf_updates.retain(|(s, _)| expected_sites.binary_search(s).is_ok());
            }
            for (site, _) in &leaf_updates {
                self.log
                    .info(tag, format!("Contribution from {site} received."));
            }
            let dropped: Vec<String> = expected_sites
                .iter()
                .filter(|site| !leaf_updates.iter().any(|(s, _)| s == *site))
                .cloned()
                .collect();
            for site in &dropped {
                self.log
                    .warn(tag, format!("{site} missed round {round}; marked dropped."));
            }
            if !dropped.is_empty() && leaf_updates.len() >= self.config.min_clients {
                self.log.info(
                    tag,
                    format!(
                        "Quorum met at round {round}: {}/{expected} update(s) (min_clients {}).",
                        leaf_updates.len(),
                        self.config.min_clients
                    ),
                );
            }
            self.status
                .set_phase(crate::admin::RunPhase::Aggregating { round });
            if leaf_updates.len() < self.config.min_clients {
                self.status.set_phase(crate::admin::RunPhase::Aborted);
                self.log.warn(
                    tag,
                    format!(
                        "Round {round} aborted: {} update(s) < min_clients {}",
                        leaf_updates.len(),
                        self.config.min_clients
                    ),
                );
                return Err(FlareError::NotEnoughClients {
                    got: leaf_updates.len(),
                    needed: self.config.min_clients,
                });
            }
            self.log.info(
                tag,
                format!(
                    "aggregating {} update(s) at round {round} [{}]",
                    leaf_updates.len(),
                    aggregator.name()
                ),
            );
            global = aggregator.aggregate(&updates, &global)?;
            self.log.info(tag, "End aggregation.");

            let global_metric = if self.config.validate_global {
                if self.abort_requested() {
                    return Err(self.finish_aborted(gateway, tag, round));
                }
                let expected = gateway.leaf_sites().len();
                gateway.broadcast(&TaskAssignment::Validate {
                    round,
                    weights: global.clone(),
                });
                let Some(mut reports) = gateway.collect_validations_cancellable(
                    round,
                    expected,
                    self.config.round_timeout,
                    &mut cancel,
                ) else {
                    return Err(self.finish_aborted(gateway, tag, round));
                };
                reports.sort_by(|(a, _), (b, _)| a.cmp(b));
                if reports.is_empty() {
                    None
                } else {
                    let mean = reports.iter().map(|(_, m)| m).sum::<f64>() / reports.len() as f64;
                    self.status.set_metric(mean);
                    self.log.info(
                        tag,
                        format!(
                            "Global model valid_acc={mean:.3} over {} site(s)",
                            reports.len()
                        ),
                    );
                    Some(mean)
                }
            } else {
                None
            };

            self.log.info(tag, "Start persist model on server.");
            persistor.save(round, &global, global_metric);
            self.log.info(tag, "End persist model on server.");
            self.log.info(tag, format!("Round {round} finished."));

            self.obs.record_histogram(
                "flare.round.time_ns",
                round_started.elapsed().as_nanos() as u64,
            );
            self.obs.add_counter("flare.round.count", 1);
            self.obs
                .add_counter("flare.round.dropped", dropped.len() as u64);
            rounds.push(RoundSummary {
                round,
                contributors: leaf_updates.iter().map(|(s, _)| s.clone()).collect(),
                client_metrics: leaf_updates.iter().cloned().collect(),
                global_metric,
                dropped,
            });
            if let Some(m) = global_metric {
                if best_metric.map(|b| m > b).unwrap_or(true) {
                    best_metric = Some(m);
                    best_round = Some(round);
                }
            }
            persistor.save_checkpoint(&RunCheckpoint {
                seed: self.run_seed,
                next_round: round + 1,
                total_rounds: self.config.rounds,
                global: global.clone(),
                rounds: rounds.clone(),
                best_metric,
                best_round,
                tree_depth: self.tree_depth,
                tree_fanout: self.tree_fanout,
            });
            self.obs.add_counter("flare.checkpoint.saved", 1);
        }
        gateway.broadcast(&TaskAssignment::Finish);
        self.status.set_phase(crate::admin::RunPhase::Finished);
        self.log.info(tag, "Workflow finished; Finish broadcast.");
        Ok(WorkflowResult {
            final_weights: global,
            rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::WeightedFedAvg;
    use crate::dxo::WeightTensor;
    use crate::persistor::InMemoryPersistor;

    /// A mock fleet: every client adds its `delta` to the global weights.
    struct MockGateway {
        deltas: Vec<f32>,
        /// Clients that stop responding from a given round on.
        dead_from: Vec<Option<u32>>,
        current_global: Weights,
        pending_round: Option<u32>,
    }

    impl MockGateway {
        fn new(deltas: Vec<f32>) -> Self {
            let n = deltas.len();
            MockGateway {
                deltas,
                dead_from: vec![None; n],
                current_global: Weights::new(),
                pending_round: None,
            }
        }
    }

    impl ClientGateway for MockGateway {
        fn client_sites(&self) -> Vec<String> {
            (0..self.deltas.len())
                .map(|i| format!("site-{}", i + 1))
                .collect()
        }

        fn broadcast(&mut self, task: &TaskAssignment) -> usize {
            if let TaskAssignment::Train { round, weights, .. } = task {
                self.current_global = weights.clone();
                self.pending_round = Some(*round);
            }
            self.deltas.len()
        }

        fn collect_submissions(
            &mut self,
            round: u32,
            _expected: usize,
            _timeout: Duration,
        ) -> Vec<(String, Dxo)> {
            assert_eq!(self.pending_round, Some(round));
            self.deltas
                .iter()
                .enumerate()
                .filter(|(i, _)| self.dead_from[*i].map(|d| round < d).unwrap_or(true))
                .map(|(i, &d)| {
                    let mut w = self.current_global.clone();
                    for t in w.values_mut() {
                        for v in t.data.iter_mut() {
                            *v += d;
                        }
                    }
                    (format!("site-{}", i + 1), Dxo::from_weights(w, 10))
                })
                .collect()
        }

        fn collect_validations(
            &mut self,
            _round: u32,
            expected: usize,
            _timeout: Duration,
        ) -> Vec<(String, f64)> {
            (0..expected)
                .map(|i| (format!("site-{}", i + 1), 0.5))
                .collect()
        }
    }

    fn initial() -> Weights {
        let mut w = Weights::new();
        w.insert("p".into(), WeightTensor::new(vec![2], vec![0.0, 0.0]));
        w
    }

    #[test]
    fn full_run_aggregates_each_round() {
        let mut gw = MockGateway::new(vec![1.0, 3.0]);
        let sag = ScatterAndGather::new(
            SagConfig {
                rounds: 4,
                min_clients: 2,
                validate_global: true,
                ..SagConfig::default()
            },
            EventLog::new(),
        );
        let mut pers = InMemoryPersistor::new();
        let res = sag
            .run(&mut gw, &WeightedFedAvg, &mut pers, initial())
            .unwrap();
        // Each round adds mean(1,3) = 2 to every weight.
        assert_eq!(res.final_weights["p"].data, vec![8.0, 8.0]);
        assert_eq!(res.rounds.len(), 4);
        assert_eq!(res.final_metric(), Some(0.5));
        assert!(pers.latest().is_some());
    }

    #[test]
    fn tolerates_dropout_above_min_clients() {
        let mut gw = MockGateway::new(vec![1.0, 1.0, 1.0]);
        gw.dead_from[2] = Some(1); // site-3 dies after round 0
        let sag = ScatterAndGather::new(
            SagConfig {
                rounds: 3,
                min_clients: 2,
                validate_global: false,
                ..SagConfig::default()
            },
            EventLog::new(),
        );
        let res = sag
            .run(
                &mut gw,
                &WeightedFedAvg,
                &mut InMemoryPersistor::new(),
                initial(),
            )
            .unwrap();
        assert_eq!(res.rounds[0].contributors.len(), 3);
        assert_eq!(res.rounds[1].contributors.len(), 2);
        assert_eq!(res.rounds[2].contributors.len(), 2);
        assert!(res.rounds[0].dropped.is_empty());
        assert_eq!(res.rounds[1].dropped, vec!["site-3".to_string()]);
        assert_eq!(res.rounds[2].dropped, vec!["site-3".to_string()]);
    }

    #[test]
    fn aborts_below_min_clients() {
        let mut gw = MockGateway::new(vec![1.0, 1.0]);
        gw.dead_from = vec![Some(1), Some(1)];
        let sag = ScatterAndGather::new(
            SagConfig {
                rounds: 3,
                min_clients: 1,
                validate_global: false,
                ..SagConfig::default()
            },
            EventLog::new(),
        );
        let err = sag
            .run(
                &mut gw,
                &WeightedFedAvg,
                &mut InMemoryPersistor::new(),
                initial(),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            FlareError::NotEnoughClients { got: 0, needed: 1 }
        ));
    }

    #[test]
    fn log_mirrors_fig3_phrases() {
        let log = EventLog::new();
        let mut gw = MockGateway::new(vec![1.0]);
        let sag = ScatterAndGather::new(
            SagConfig {
                rounds: 1,
                min_clients: 1,
                validate_global: false,
                ..SagConfig::default()
            },
            log.clone(),
        );
        sag.run(
            &mut gw,
            &WeightedFedAvg,
            &mut InMemoryPersistor::new(),
            initial(),
        )
        .unwrap();
        for phrase in [
            "Round 0 started.",
            "aggregating 1 update(s) at round 0",
            "End aggregation.",
            "Start persist model on server.",
            "End persist model on server.",
            "Round 0 finished.",
        ] {
            assert!(log.contains(phrase), "missing log phrase {phrase:?}");
        }
    }

    #[test]
    fn status_reflects_run_lifecycle() {
        use crate::admin::{AdminCommand, RunPhase, RunStatus};
        let status = RunStatus::new();
        let mut gw = MockGateway::new(vec![1.0, 2.0]);
        let sag = ScatterAndGather::new(
            SagConfig {
                rounds: 2,
                min_clients: 1,
                validate_global: true,
                ..SagConfig::default()
            },
            EventLog::new(),
        )
        .with_status(status.clone());
        sag.run(
            &mut gw,
            &WeightedFedAvg,
            &mut InMemoryPersistor::new(),
            initial(),
        )
        .unwrap();
        assert_eq!(status.phase(), RunPhase::Finished);
        assert_eq!(status.clients().len(), 2);
        assert_eq!(status.last_metric(), Some(0.5));
        assert!(status
            .execute(AdminCommand::CheckStatus)
            .contains("finished"));
    }

    #[test]
    fn resume_continues_at_next_round_bit_identically() {
        let cfg = |rounds| SagConfig {
            rounds,
            min_clients: 2,
            validate_global: true,
            ..SagConfig::default()
        };
        // Reference: an uninterrupted 4-round run.
        let mut gw = MockGateway::new(vec![1.0, 3.0]);
        let full = ScatterAndGather::new(cfg(4), EventLog::new())
            .run(
                &mut gw,
                &WeightedFedAvg,
                &mut InMemoryPersistor::new(),
                initial(),
            )
            .unwrap();

        // Interrupted: run two rounds, "crash", resume from the checkpoint.
        let mut gw = MockGateway::new(vec![1.0, 3.0]);
        let mut pers = InMemoryPersistor::new();
        ScatterAndGather::new(cfg(2), EventLog::new())
            .with_run_seed(42)
            .run(&mut gw, &WeightedFedAvg, &mut pers, initial())
            .unwrap();
        let ckpt = pers.load_checkpoint().unwrap();
        assert_eq!(ckpt.next_round, 2);
        assert_eq!(ckpt.seed, 42);
        assert_eq!(ckpt.rounds.len(), 2);

        let mut gw = MockGateway::new(vec![1.0, 3.0]);
        let log = EventLog::new();
        let resumed = ScatterAndGather::new(
            SagConfig {
                resume_from: Some(ckpt),
                ..cfg(4)
            },
            log.clone(),
        )
        .run(&mut gw, &WeightedFedAvg, &mut pers, Weights::new())
        .unwrap();
        assert!(log.contains("Resuming at round 2"));
        assert_eq!(resumed.final_weights, full.final_weights);
        assert_eq!(resumed.rounds.len(), 4);
        assert_eq!(
            resumed.rounds.iter().map(|r| r.round).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // The resumed run's final checkpoint covers all four rounds.
        let final_ckpt = pers.load_checkpoint().unwrap();
        assert_eq!(final_ckpt.next_round, 4);
        assert_eq!(final_ckpt.rounds.len(), 4);
        assert_eq!(final_ckpt.best_metric, Some(0.5));
    }

    #[test]
    fn sample_sites_is_deterministic_and_bounded() {
        let sites: Vec<String> = (1..=8).map(|i| format!("site-{i}")).collect();
        let a = sample_sites(42, 3, 0.5, &sites);
        let b = sample_sites(42, 3, 0.5, &sites);
        assert_eq!(a, b, "same (seed, round, fraction) must agree");
        assert_eq!(a.len(), 4);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted: {a:?}");
        assert!(a.iter().all(|s| sites.contains(s)));
        // Different rounds pick different subsets (with 70 possible
        // 4-of-8 subsets, 5 identical consecutive draws would be a bug).
        let distinct: std::collections::BTreeSet<Vec<String>> =
            (0..5).map(|r| sample_sites(42, r, 0.5, &sites)).collect();
        assert!(distinct.len() > 1, "sampling never varied across rounds");
        // Fraction >= 1 and tiny fractions clamp sanely.
        assert_eq!(sample_sites(42, 0, 1.0, &sites), sites);
        assert_eq!(sample_sites(42, 0, 0.01, &sites).len(), 1);
    }

    #[test]
    fn sampling_restricts_contributors_to_the_sampled_set() {
        // MockGateway broadcasts (default send_to) and every client
        // submits; the controller must keep only the sampled subset.
        let mut gw = MockGateway::new(vec![1.0, 2.0, 3.0, 4.0]);
        let sag = ScatterAndGather::new(
            SagConfig {
                rounds: 4,
                min_clients: 1,
                validate_global: false,
                client_sample_fraction: 0.5,
                ..SagConfig::default()
            },
            EventLog::new(),
        )
        .with_run_seed(7);
        let res = sag
            .run(
                &mut gw,
                &WeightedFedAvg,
                &mut InMemoryPersistor::new(),
                initial(),
            )
            .unwrap();
        let all: Vec<String> = (1..=4).map(|i| format!("site-{i}")).collect();
        for r in &res.rounds {
            assert_eq!(
                r.contributors.len(),
                2,
                "round {}: {:?}",
                r.round,
                r.contributors
            );
            assert_eq!(
                r.contributors,
                sample_sites(7, r.round, 0.5, &all),
                "contributors must equal the deterministic sample"
            );
            assert!(r.dropped.is_empty(), "healthy sampled sites never drop");
        }
    }

    #[test]
    fn fraction_one_matches_unsampled_run_bitwise() {
        let run = |fraction: f64| {
            let mut gw = MockGateway::new(vec![1.0, 3.0, 5.0]);
            ScatterAndGather::new(
                SagConfig {
                    rounds: 3,
                    min_clients: 3,
                    validate_global: true,
                    client_sample_fraction: fraction,
                    ..SagConfig::default()
                },
                EventLog::new(),
            )
            .run(
                &mut gw,
                &WeightedFedAvg,
                &mut InMemoryPersistor::new(),
                initial(),
            )
            .unwrap()
        };
        let flat = run(1.0);
        let above = run(2.0); // any >= 1.0 is "off"
        assert_eq!(flat.final_weights, above.final_weights);
        assert_eq!(flat.rounds, above.rounds);
    }

    #[test]
    fn sampled_run_resumes_bit_identically() {
        let cfg = |rounds| SagConfig {
            rounds,
            min_clients: 1,
            validate_global: true,
            client_sample_fraction: 0.5,
            ..SagConfig::default()
        };
        // Reference: uninterrupted 4-round sampled run.
        let mut gw = MockGateway::new(vec![1.0, 3.0, 5.0, 7.0]);
        let full = ScatterAndGather::new(cfg(4), EventLog::new())
            .with_run_seed(42)
            .run(
                &mut gw,
                &WeightedFedAvg,
                &mut InMemoryPersistor::new(),
                initial(),
            )
            .unwrap();
        // Interrupted at round 2, resumed under the same run seed: the
        // sample schedule is a pure function of (seed, round), so the
        // resumed rounds pick the same subsets.
        let mut gw = MockGateway::new(vec![1.0, 3.0, 5.0, 7.0]);
        let mut pers = InMemoryPersistor::new();
        ScatterAndGather::new(cfg(2), EventLog::new())
            .with_run_seed(42)
            .run(&mut gw, &WeightedFedAvg, &mut pers, initial())
            .unwrap();
        let ckpt = pers.load_checkpoint().unwrap();
        let mut gw = MockGateway::new(vec![1.0, 3.0, 5.0, 7.0]);
        let resumed = ScatterAndGather::new(
            SagConfig {
                resume_from: Some(ckpt),
                ..cfg(4)
            },
            EventLog::new(),
        )
        .with_run_seed(42)
        .run(&mut gw, &WeightedFedAvg, &mut pers, Weights::new())
        .unwrap();
        assert_eq!(resumed.final_weights, full.final_weights);
        assert_eq!(resumed.rounds, full.rounds);
    }

    #[test]
    fn best_metric_tracks_max() {
        let r = |round, m| RoundSummary {
            round,
            contributors: vec![],
            client_metrics: BTreeMap::new(),
            global_metric: m,
            dropped: vec![],
        };
        let res = WorkflowResult {
            final_weights: Weights::new(),
            rounds: vec![
                r(0, Some(0.4)),
                r(1, Some(0.9)),
                r(2, Some(0.7)),
                r(3, None),
            ],
        };
        assert_eq!(res.best_metric(), Some(0.9));
        assert_eq!(res.final_metric(), Some(0.7));
    }
}
