//! Provisioning: turning a project description into server and site
//! startup packages (the paper's "NVFlare provision" stage, Fig. 1).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Declarative description of a federated project.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Project {
    /// Project name (NVFlare's `simulator_server` in the paper's Fig. 3).
    pub name: String,
    /// Site names, e.g. `site-1 … site-8`.
    pub sites: Vec<String>,
    /// Seed for token/key generation — provisioning is deterministic so
    /// tests and paired deployments can reproduce it.
    pub seed: u64,
}

impl Project {
    /// A project with `n` sites named `site-1 … site-n` (the paper uses
    /// eight).
    pub fn with_n_sites(name: impl Into<String>, n: usize, seed: u64) -> Self {
        Project {
            name: name.into(),
            sites: (1..=n).map(|i| format!("site-{i}")).collect(),
            seed,
        }
    }

    /// Expands the project into startup packages.
    ///
    /// # Panics
    ///
    /// Panics if the project has no sites or duplicate site names.
    pub fn provision(&self) -> Provisioned {
        assert!(!self.sites.is_empty(), "project needs at least one site");
        let mut names = self.sites.clone();
        names.sort();
        names.dedup();
        assert_eq!(
            names.len(),
            self.sites.len(),
            "duplicate site names in project"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sites = self
            .sites
            .iter()
            .map(|s| SitePackage {
                site_name: s.clone(),
                token: generate_token(&mut rng),
            })
            .collect::<Vec<_>>();
        let server = ServerConfig {
            project: self.name.clone(),
            expected_tokens: sites
                .iter()
                .map(|p| (p.site_name.clone(), p.token.clone()))
                .collect(),
        };
        Provisioned { server, sites }
    }
}

/// UUID-like token, e.g. `2c15ddc6-d8d3-4a98-8243-d850f27ac052` — the
/// format shown in the paper's Fig. 3 registration log.
fn generate_token(rng: &mut StdRng) -> String {
    let b: Vec<u8> = (0..16).map(|_| rng.random::<u8>()).collect();
    format!(
        "{:02x}{:02x}{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}{:02x}{:02x}{:02x}{:02x}",
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7], b[8], b[9], b[10], b[11], b[12], b[13],
        b[14], b[15]
    )
}

/// The startup material for one site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SitePackage {
    /// The site this package belongs to.
    pub site_name: String,
    /// Registration token presented to the server.
    pub token: String,
}

/// The server's provisioned state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Project name.
    pub project: String,
    /// `(site, token)` pairs the server will accept.
    pub expected_tokens: Vec<(String, String)>,
}

impl ServerConfig {
    /// Checks a registration attempt, returning `true` when `(site, token)`
    /// matches the provision.
    pub fn verify(&self, site: &str, token: &str) -> bool {
        self.expected_tokens
            .iter()
            .any(|(s, t)| s == site && t == token)
    }
}

/// Output of [`Project::provision`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provisioned {
    /// Server startup config.
    pub server: ServerConfig,
    /// Per-site packages (distributed out-of-band in a real deployment).
    pub sites: Vec<SitePackage>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_site_project() {
        let p = Project::with_n_sites("simulator_server", 8, 1);
        assert_eq!(p.sites.len(), 8);
        assert_eq!(p.sites[0], "site-1");
        assert_eq!(p.sites[7], "site-8");
    }

    #[test]
    fn tokens_unique_and_uuid_shaped() {
        let prov = Project::with_n_sites("p", 8, 2).provision();
        let mut tokens: Vec<&str> = prov.sites.iter().map(|s| s.token.as_str()).collect();
        for t in &tokens {
            assert_eq!(t.len(), 36);
            assert_eq!(t.matches('-').count(), 4);
        }
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), 8, "tokens must be unique");
    }

    #[test]
    fn provisioning_deterministic_in_seed() {
        let a = Project::with_n_sites("p", 4, 9).provision();
        let b = Project::with_n_sites("p", 4, 9).provision();
        assert_eq!(a, b);
        let c = Project::with_n_sites("p", 4, 10).provision();
        assert_ne!(a, c);
    }

    #[test]
    fn verify_accepts_only_matching_pairs() {
        let prov = Project::with_n_sites("p", 2, 3).provision();
        let s0 = &prov.sites[0];
        let s1 = &prov.sites[1];
        assert!(prov.server.verify(&s0.site_name, &s0.token));
        assert!(!prov.server.verify(&s0.site_name, &s1.token));
        assert!(!prov.server.verify("site-99", &s0.token));
        assert!(!prov.server.verify(&s0.site_name, "bogus"));
    }

    #[test]
    #[should_panic(expected = "duplicate site names")]
    fn duplicate_sites_panic() {
        Project {
            name: "p".into(),
            sites: vec!["a".into(), "a".into()],
            seed: 0,
        }
        .provision();
    }
}
