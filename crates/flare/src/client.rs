//! The federated client: registration, encrypted session, task loop.

use crate::dxo::DxoKind;
use crate::executor::{Executor, TaskContext};
use crate::filters::FilterChain;
use crate::log::EventLog;
use crate::messages::{ClientMessage, ServerMessage, TaskAssignment};
use crate::provision::SitePackage;
use crate::security::{DhKeyPair, SecureChannel};
use crate::transport::Connection;
use crate::wire::{WireDecode, WireEncode};
use crate::FlareError;
use std::time::Duration;

/// Failure-injection knobs for testing runtime resilience.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClientBehavior {
    /// Crash (stop responding, no goodbye) when asked to train this round.
    pub drop_at_round: Option<u32>,
    /// Sleep this long before every training task (straggler simulation).
    pub straggle: Option<Duration>,
}

/// A connected, registered federated client (paper Fig. 3's
/// `FederatedClient`).
pub struct FlClient {
    site: String,
    conn: Connection,
    seal: SecureChannel,
    open: SecureChannel,
    session: String,
    log: EventLog,
    filters: FilterChain,
    recv_timeout: Duration,
}

impl std::fmt::Debug for FlClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlClient")
            .field("site", &self.site)
            .field("session", &self.session)
            .finish_non_exhaustive()
    }
}

impl FlClient {
    /// Registers with the server over `conn` using the provisioned
    /// `package`, performing the token check and key agreement.
    ///
    /// # Errors
    ///
    /// [`FlareError::InvalidToken`] if the server rejects the registration,
    /// transport/codec errors otherwise.
    pub fn register(
        mut conn: Connection,
        package: &SitePackage,
        dh_secret: u64,
        log: EventLog,
    ) -> Result<Self, FlareError> {
        let keys = DhKeyPair::from_secret(dh_secret);
        let register = ClientMessage::Register {
            site: package.site_name.clone(),
            token: package.token.clone(),
            dh_public: keys.public,
        };
        conn.tx.send(&register.to_frame())?;
        let frame = conn.rx.recv(Duration::from_secs(30))?;
        let msg = ServerMessage::from_frame(&frame)?;
        let ServerMessage::RegisterAck {
            accepted,
            session,
            dh_public,
        } = msg
        else {
            return Err(FlareError::Codec("expected RegisterAck".into()));
        };
        if !accepted {
            return Err(FlareError::InvalidToken {
                site: package.site_name.clone(),
            });
        }
        let key = keys.shared_key(dh_public);
        log.info(
            "FederatedClient",
            format!(
                "Successfully registered client:{} for project simulator_server. Token:{session}",
                package.site_name
            ),
        );
        Ok(FlClient {
            site: package.site_name.clone(),
            conn,
            seal: SecureChannel::new(key, 0),
            open: SecureChannel::new(key, 1 << 32),
            session,
            log,
            filters: FilterChain::new(),
            recv_timeout: Duration::from_secs(3600),
        })
    }

    /// The site name.
    pub fn site(&self) -> &str {
        &self.site
    }

    /// The server-issued session token.
    pub fn session(&self) -> &str {
        &self.session
    }

    /// Installs an outgoing filter chain (DP noise, pruning, secure-agg
    /// masks).
    pub fn set_filters(&mut self, filters: FilterChain) {
        self.filters = filters;
    }

    /// Overrides how long the client waits for the next task.
    pub fn set_recv_timeout(&mut self, timeout: Duration) {
        self.recv_timeout = timeout;
    }

    fn send(&mut self, msg: &ClientMessage) -> Result<(), FlareError> {
        let sealed = self.seal.seal(&msg.to_frame());
        self.conn.tx.send(&sealed)
    }

    /// Runs the task loop with the given executor until the server sends
    /// `Finish` (or a failure-injection behavior triggers).
    ///
    /// Returns the number of training rounds completed.
    ///
    /// # Errors
    ///
    /// Transport or codec failures; executor panics propagate.
    pub fn run(
        &mut self,
        executor: &mut dyn Executor,
        behavior: ClientBehavior,
    ) -> Result<u32, FlareError> {
        let mut trained = 0u32;
        loop {
            let frame = self.conn.rx.recv(self.recv_timeout)?;
            let plain = self.open.open(&frame)?;
            let msg = ServerMessage::from_frame(&plain)?;
            let ServerMessage::Task(task) = msg else {
                continue;
            };
            match task {
                TaskAssignment::Train {
                    round,
                    total_rounds,
                    weights,
                } => {
                    if behavior.drop_at_round == Some(round) {
                        self.log.warn(
                            "FederatedClient",
                            format!("{} simulating crash at round {round}", self.site),
                        );
                        return Ok(trained);
                    }
                    if let Some(d) = behavior.straggle {
                        std::thread::sleep(d);
                    }
                    let ctx = TaskContext {
                        site: self.site.clone(),
                        round,
                        total_rounds,
                    };
                    // At most CLINFL_THREADS sites compute at once; with a
                    // budget of 1 the round schedule is strictly sequential.
                    let permit = clinfl_tensor::pool::compute_permit();
                    let mut dxo = executor.train(&weights, &ctx);
                    drop(permit);
                    dxo = self.filters.apply(dxo, &weights, round);
                    debug_assert!(matches!(dxo.kind, DxoKind::Weights | DxoKind::WeightDiff));
                    self.send(&ClientMessage::Submit { round, dxo })?;
                    trained += 1;
                }
                TaskAssignment::Validate { round, weights } => {
                    let ctx = TaskContext {
                        site: self.site.clone(),
                        round,
                        total_rounds: 0,
                    };
                    let permit = clinfl_tensor::pool::compute_permit();
                    let metric = executor.validate(&weights, &ctx);
                    drop(permit);
                    self.send(&ClientMessage::ValidateReport { round, metric })?;
                }
                TaskAssignment::Finish => {
                    let site = self.site.clone();
                    self.send(&ClientMessage::Bye { site })?;
                    return Ok(trained);
                }
            }
        }
    }
}
