//! The federated client: registration, encrypted session, task loop.
//!
//! The task loop is fault-tolerant (PR 2): receives run under a bounded
//! retry budget with per-message timeouts and exponential backoff,
//! corrupt frames are rejected and skipped instead of killing the
//! session, and sends retry transient transport failures. Heartbeats are
//! emitted while the client waits out a retry so the server's liveness
//! table can tell "slow" from "gone".

use crate::codec::{
    decode_weights, wire_count, CodecSpec, EncodedWeights, PayloadCache, UplinkEncoder, NO_BASE,
};
use crate::dxo::{Dxo, DxoKind, Weights};
use crate::executor::{Executor, TaskContext};
use crate::filters::FilterChain;
use crate::log::EventLog;
use crate::messages::{ClientMessage, ServerMessage, ShardPayload, TaskAssignment};
use crate::provision::SitePackage;
use crate::security::{DhKeyPair, SecureChannel};
use crate::transport::Connection;
use crate::wire::{WireDecode, WireEncode};
use crate::FlareError;
use clinfl_obs::{Counter, Registry};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One obs counter kept in two views: the per-site series
/// (`flare.site.<site>.<what>`) and the fleet-wide aggregate
/// (`flare.client.<what>`). Handles are resolved once at registration so
/// the hot send/recv paths never touch the registry.
struct CounterPair {
    site: Arc<Counter>,
    all: Arc<Counter>,
}

impl CounterPair {
    fn scoped(obs: &Registry, ns: &str, site: &str, what: &str) -> Self {
        CounterPair {
            site: obs.counter(&format!("flare.site.{site}.{what}")),
            all: obs.counter(&format!("{ns}.{what}")),
        }
    }

    fn add(&self, n: u64) {
        if clinfl_obs::enabled() {
            self.site.add(n);
            self.all.add(n);
        }
    }
}

/// Per-client transport telemetry (bytes on the wire, retries, timeouts,
/// heartbeats), mirrored into per-site and aggregate counters.
struct ClientObs {
    bytes_tx: CounterPair,
    bytes_rx: CounterPair,
    retries: CounterPair,
    timeouts: CounterPair,
    heartbeats: CounterPair,
    send_errors: CounterPair,
}

impl ClientObs {
    fn new(site: &str) -> Self {
        Self::scoped(&Registry::global(), "flare.client", site)
    }

    fn scoped(obs: &Registry, ns: &str, site: &str) -> Self {
        ClientObs {
            bytes_tx: CounterPair::scoped(obs, ns, site, "bytes_tx"),
            bytes_rx: CounterPair::scoped(obs, ns, site, "bytes_rx"),
            retries: CounterPair::scoped(obs, ns, site, "retries"),
            timeouts: CounterPair::scoped(obs, ns, site, "timeouts"),
            heartbeats: CounterPair::scoped(obs, ns, site, "heartbeats"),
            send_errors: CounterPair::scoped(obs, ns, site, "send_errors"),
        }
    }
}

/// Failure-injection knobs for testing runtime resilience.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClientBehavior {
    /// Crash (stop responding, no goodbye) when asked to train this round
    /// or any later one.
    pub drop_at_round: Option<u32>,
    /// Sleep this long before every training task (straggler simulation).
    pub straggle: Option<Duration>,
}

/// Bounded-retry knobs for the client's send/recv paths.
///
/// A logical receive waits up to `message_timeout` per attempt, for at
/// most `max_attempts` attempts, sleeping an exponentially doubling
/// backoff (starting at `backoff`) between attempts. The defaults keep
/// the historical behavior: up to an hour of total patience, which a
/// slow serial training round needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per logical send/recv before giving up.
    pub max_attempts: u32,
    /// Base backoff between attempts; doubles each retry.
    pub backoff: Duration,
    /// Deadline for a single receive attempt.
    pub message_timeout: Duration,
    /// Whether to send a keepalive [`ClientMessage::Heartbeat`] after a
    /// receive attempt times out.
    pub heartbeat: bool,
    /// How many copies of each `Submit`/`ValidateReport` to send. A
    /// sender cannot detect a silently dropped frame, so on lossy links
    /// redundant copies are the only recovery; the server dedups by site,
    /// making extras harmless. `1` (the default) sends no extras.
    pub submit_copies: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            backoff: Duration::from_millis(50),
            message_timeout: Duration::from_secs(600),
            heartbeat: true,
            submit_copies: 1,
        }
    }
}

/// A connected, registered federated client (paper Fig. 3's
/// `FederatedClient`).
pub struct FlClient {
    site: String,
    conn: Connection,
    seal: SecureChannel,
    open: SecureChannel,
    session: String,
    log: EventLog,
    filters: FilterChain,
    retry: RetryPolicy,
    obs: ClientObs,
    /// Codec this client *wants* (negotiated at the start of [`Self::run`]).
    wire: CodecSpec,
    /// Codec actually negotiated with the server; `None` = raw.
    active: Option<CodecSpec>,
    /// Reconstructions of recent downlink payloads (delta bases).
    cache: PayloadCache,
    /// Uplink encoder (error-feedback state) once negotiated.
    uplink: Option<UplinkEncoder>,
    /// Server messages that raced in during codec negotiation.
    pending: VecDeque<ServerMessage>,
    /// Whether this site has already logged a best-effort send failure
    /// (the counter keeps ticking; the warning fires once per site).
    send_error_warned: bool,
}

impl std::fmt::Debug for FlClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlClient")
            .field("site", &self.site)
            .field("session", &self.session)
            .finish_non_exhaustive()
    }
}

impl FlClient {
    /// Registers with the server over `conn` using the provisioned
    /// `package`, performing the token check and key agreement.
    ///
    /// # Errors
    ///
    /// [`FlareError::InvalidToken`] if the server rejects the registration,
    /// transport/codec errors otherwise.
    pub fn register(
        mut conn: Connection,
        package: &SitePackage,
        dh_secret: u64,
        log: EventLog,
    ) -> Result<Self, FlareError> {
        let keys = DhKeyPair::from_secret(dh_secret);
        let register = ClientMessage::Register {
            site: package.site_name.clone(),
            token: package.token.clone(),
            dh_public: keys.public,
        };
        conn.tx.send(&register.to_frame())?;
        let frame = conn.rx.recv(Duration::from_secs(30))?;
        let msg = ServerMessage::from_frame(&frame)?;
        let ServerMessage::RegisterAck {
            accepted,
            session,
            dh_public,
        } = msg
        else {
            return Err(FlareError::Codec("expected RegisterAck".into()));
        };
        if !accepted {
            return Err(FlareError::InvalidToken {
                site: package.site_name.clone(),
            });
        }
        let key = keys.shared_key(dh_public);
        log.info(
            "FederatedClient",
            format!(
                "Successfully registered client:{} for project simulator_server. Token:{session}",
                package.site_name
            ),
        );
        Ok(FlClient {
            obs: ClientObs::new(&package.site_name),
            site: package.site_name.clone(),
            conn,
            seal: SecureChannel::new(key, 0),
            open: SecureChannel::new(key, 1 << 32),
            session,
            log,
            filters: FilterChain::new(),
            retry: RetryPolicy::default(),
            wire: CodecSpec::raw(),
            active: None,
            cache: PayloadCache::default(),
            uplink: None,
            pending: VecDeque::new(),
            send_error_warned: false,
        })
    }

    /// The site name.
    pub fn site(&self) -> &str {
        &self.site
    }

    /// The server-issued session token.
    pub fn session(&self) -> &str {
        &self.session
    }

    /// Installs an outgoing filter chain (DP noise, pruning, secure-agg
    /// masks).
    pub fn set_filters(&mut self, filters: FilterChain) {
        self.filters = filters;
    }

    /// Overrides the send/recv retry policy.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Overrides how long one receive attempt waits for the next task
    /// (kept for backwards compatibility; see [`RetryPolicy`]).
    pub fn set_recv_timeout(&mut self, timeout: Duration) {
        self.retry.message_timeout = timeout;
    }

    /// Re-homes the fleet-wide counter aggregate under `ns` (the per-site
    /// series keeps its `flare.site.<site>.*` names). Interior tree nodes
    /// use this so relay uplink traffic (`flare.tree.uplink.*`) never
    /// inflates the leaf totals the scaling bench reads from
    /// `flare.client.*`.
    pub fn set_metric_namespace(&mut self, ns: &str) {
        self.obs = ClientObs::scoped(&Registry::global(), ns, &self.site);
    }

    /// Records this client's counters into `obs` instead of the global
    /// registry (keeping the default `flare.client` namespace). The job
    /// runtime scopes each job's clients this way: two concurrent jobs
    /// can then both run a `site-1` without their `flare.site.site-1.*`
    /// series mixing. Call right after [`FlClient::register`], before
    /// traffic, or early counts stay in the global scope.
    pub fn set_registry(&mut self, obs: Registry) {
        self.obs = ClientObs::scoped(&obs, "flare.client", &self.site);
    }

    /// Requests a wire codec for weight exchange (see [`crate::codec`]).
    /// The spec is proposed to the server at the start of [`Self::run`];
    /// if the server never acknowledges (an old peer), the client falls
    /// back to the raw format.
    pub fn set_wire_codec(&mut self, spec: CodecSpec) {
        self.wire = spec;
    }

    /// The codec negotiated with the server, if any (`None` before
    /// [`Self::run`] or after a raw fallback).
    pub fn active_codec(&self) -> Option<&CodecSpec> {
        self.active.as_ref()
    }

    fn send_once(&mut self, msg: &ClientMessage) -> Result<(), FlareError> {
        let sealed = self.seal.seal(&msg.to_frame());
        let res = self.conn.tx.send(&sealed);
        if res.is_ok() {
            self.obs.bytes_tx.add(sealed.len() as u64);
        }
        res
    }

    /// Accounts for a best-effort send that failed: the paths that
    /// deliberately tolerate failure (duplicate submits, heartbeats, codec
    /// announce, goodbye) used to drop the error on the floor, leaving a
    /// persistently broken link invisible. Every failure now ticks
    /// `flare.client.send_errors` (plus the per-site series) and the first
    /// one per site logs a warning.
    fn note_send_error(&mut self, op: &str, err: &FlareError) {
        self.obs.send_errors.add(1);
        if !self.send_error_warned {
            self.send_error_warned = true;
            self.log.warn(
                "FederatedClient",
                format!(
                    "{}: best-effort {op} send failed ({err}); counting further \
                     failures in flare.client.send_errors",
                    self.site
                ),
            );
        }
    }

    /// Sends with bounded retries and exponential backoff. Only transport
    /// failures are retried; each attempt reseals the frame (the secure
    /// channel accepts any fresh nonce, so a duplicate delivery is
    /// harmless — the server dedups submissions by site).
    fn send_with_retry(&mut self, msg: &ClientMessage, op: &str) -> Result<(), FlareError> {
        let mut backoff = self.retry.backoff;
        let mut last = String::new();
        for attempt in 1..=self.retry.max_attempts.max(1) {
            match self.send_once(msg) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    last = e.to_string();
                    if attempt < self.retry.max_attempts {
                        self.obs.retries.add(1);
                        self.log.warn(
                            "FederatedClient",
                            format!(
                                "{}: {op} failed ({last}); retry {attempt}/{} after {backoff:?}",
                                self.site,
                                self.retry.max_attempts - 1
                            ),
                        );
                        std::thread::sleep(backoff);
                        backoff = backoff.saturating_mul(2);
                    }
                }
            }
        }
        Err(FlareError::RetriesExhausted {
            op: op.to_string(),
            attempts: self.retry.max_attempts.max(1),
            last,
        })
    }

    /// [`Self::send_with_retry`] plus `submit_copies - 1` best-effort
    /// duplicates (the server dedups by site, so extras are harmless).
    fn send_redundant(&mut self, msg: &ClientMessage, op: &str) -> Result<(), FlareError> {
        self.send_with_retry(msg, op)?;
        for _ in 1..self.retry.submit_copies.max(1) {
            if let Err(e) = self.send_once(msg) {
                self.note_send_error("duplicate-submit", &e);
            }
        }
        Ok(())
    }

    /// Sends a keepalive so the server's liveness table sees this site as
    /// alive even when no task traffic flows.
    ///
    /// # Errors
    ///
    /// Transport failures from the underlying send.
    pub fn heartbeat(&mut self) -> Result<(), FlareError> {
        let site = self.site.clone();
        let res = self.send_once(&ClientMessage::Heartbeat { site });
        if res.is_ok() {
            self.obs.heartbeats.add(1);
        }
        res
    }

    /// Receives the next frame under the retry policy: each attempt waits
    /// `message_timeout`; on timeout a heartbeat is sent (if enabled) and
    /// the attempt is retried after backoff, up to `max_attempts`.
    fn recv_with_retry(&mut self) -> Result<Vec<u8>, FlareError> {
        let mut backoff = self.retry.backoff;
        for attempt in 1..=self.retry.max_attempts.max(1) {
            match self.conn.rx.recv(self.retry.message_timeout) {
                Ok(frame) => {
                    self.obs.bytes_rx.add(frame.len() as u64);
                    return Ok(frame);
                }
                Err(FlareError::Timeout) if attempt < self.retry.max_attempts => {
                    self.obs.timeouts.add(1);
                    self.obs.retries.add(1);
                    self.log.warn(
                        "FederatedClient",
                        format!(
                            "{}: no task within {:?}; retry {attempt}/{}",
                            self.site,
                            self.retry.message_timeout,
                            self.retry.max_attempts - 1
                        ),
                    );
                    if self.retry.heartbeat {
                        if let Err(e) = self.heartbeat() {
                            self.note_send_error("heartbeat", &e);
                        }
                    }
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                Err(e) => {
                    if matches!(e, FlareError::Timeout) {
                        self.obs.timeouts.add(1);
                    }
                    return Err(e);
                }
            }
        }
        Err(FlareError::RetriesExhausted {
            op: "recv task".to_string(),
            attempts: self.retry.max_attempts.max(1),
            last: FlareError::Timeout.to_string(),
        })
    }

    /// Tells the server this client stays on the raw format, without
    /// waiting for an acknowledgement (the outcome is raw either way).
    /// The announcement lets the server's pre-round settle close as soon
    /// as every client has declared a codec instead of waiting out its
    /// grace window; a lost or ignored frame merely costs that wait.
    fn announce_raw(&mut self) {
        let propose = ClientMessage::CodecPropose {
            site: self.site.clone(),
            specs: vec![CodecSpec::raw().to_string()],
        };
        if let Err(e) = self.send_with_retry(&propose, "codec announce") {
            self.note_send_error("codec-announce", &e);
        }
    }

    /// Proposes `self.wire` to the server and waits (bounded) for the
    /// [`ServerMessage::CodecAck`]. Task frames that race in while we
    /// wait are buffered in `self.pending` and handled by the main loop.
    /// A server that never acknowledges — an old peer, or repeated frame
    /// loss — leaves the client on the raw format.
    fn negotiate(&mut self) {
        const ATTEMPTS: u32 = 10;
        const WAIT_PER_ATTEMPT: Duration = Duration::from_millis(300);
        let propose = ClientMessage::CodecPropose {
            site: self.site.clone(),
            specs: vec![self.wire.to_string()],
        };
        let mut chosen: Option<String> = None;
        'attempts: for _ in 0..ATTEMPTS {
            if self.send_with_retry(&propose, "codec propose").is_err() {
                break;
            }
            let deadline = Instant::now() + WAIT_PER_ATTEMPT;
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break; // re-propose (the frame may have been dropped)
                }
                match self.conn.rx.recv(left) {
                    Ok(frame) => {
                        self.obs.bytes_rx.add(frame.len() as u64);
                        let Ok(plain) = self.open.open(&frame) else {
                            continue;
                        };
                        let Ok(msg) = ServerMessage::from_frame(&plain) else {
                            continue;
                        };
                        match msg {
                            ServerMessage::CodecAck { chosen: c, .. } => {
                                chosen = c;
                                break 'attempts;
                            }
                            other => self.pending.push_back(other),
                        }
                    }
                    Err(FlareError::Timeout) => break,
                    Err(_) => break 'attempts,
                }
            }
        }
        match chosen.and_then(|s| CodecSpec::parse(&s).ok()) {
            Some(sp) if !sp.is_raw() => {
                self.log.info(
                    "FederatedClient",
                    format!("{}: negotiated wire codec {sp}", self.site),
                );
                wire_count("flare.wire.codec.negotiated", 1);
                self.uplink = Some(UplinkEncoder::new(sp.clone()));
                self.active = Some(sp);
            }
            _ => {
                self.log.warn(
                    "FederatedClient",
                    format!(
                        "{}: wire codec {} not negotiated; using raw format",
                        self.site, self.wire
                    ),
                );
                wire_count("flare.wire.codec.fallback_raw", 1);
                self.wire = CodecSpec::raw();
            }
        }
    }

    /// Decodes a codec downlink payload against the cached base and
    /// stores the reconstruction for future deltas. `None` means the
    /// frame was unusable (missing base / corrupt); the caller skips the
    /// task and waits for the server's next (self-contained) frame.
    fn decode_downlink(&mut self, enc: &EncodedWeights) -> Option<Weights> {
        let base = if enc.base_id == NO_BASE {
            None
        } else {
            match self.cache.get(enc.base_id) {
                Some(b) => Some(b.clone()),
                None => {
                    wire_count("flare.wire.codec.base_misses", 1);
                    self.log.warn(
                        "FederatedClient",
                        format!(
                            "{}: downlink payload {} needs base {} not in cache; skipping",
                            self.site, enc.payload_id, enc.base_id
                        ),
                    );
                    return None;
                }
            }
        };
        match decode_weights(enc, base.as_ref()) {
            Ok(w) => {
                self.cache.insert(enc.payload_id, w.clone());
                Some(w)
            }
            Err(e) => {
                wire_count("flare.wire.codec.decode_errors", 1);
                self.log.warn(
                    "FederatedClient",
                    format!("{}: undecodable downlink payload: {e}", self.site),
                );
                None
            }
        }
    }

    /// Builds the uplink submission: codec-encoded when a codec is
    /// active and the payload is plain weights, raw otherwise (e.g.
    /// `WeightDiff` produced by a filter chain).
    fn encode_submit(&mut self, round: u32, dxo: Dxo) -> ClientMessage {
        if matches!(dxo.kind, DxoKind::Weights) {
            if let Some(uplink) = self.uplink.as_mut() {
                let ack = self.cache.latest_id();
                let base = ack.and_then(|id| self.cache.get(id).map(|w| (w, id)));
                match uplink.encode(&dxo.weights, base) {
                    Ok(enc) => {
                        return ClientMessage::SubmitEnc {
                            round,
                            ack: ack.unwrap_or(NO_BASE),
                            n_examples: dxo.n_examples,
                            metrics: dxo.metrics,
                            enc,
                        };
                    }
                    Err(e) => {
                        self.log.warn(
                            "FederatedClient",
                            format!("{}: uplink encode failed ({e}); sending raw", self.site),
                        );
                    }
                }
            }
        }
        ClientMessage::Submit { round, dxo }
    }

    /// Runs codec negotiation if it has not happened yet: proposes the
    /// configured spec (or announces raw) and settles on the negotiated
    /// outcome. [`Self::run`] calls this implicitly; interior tree nodes
    /// driving the task loop by hand via [`Self::next_task`] call it once
    /// before their first round.
    pub fn negotiate_codec(&mut self) {
        if self.active.is_none() {
            if self.wire.is_raw() {
                self.announce_raw();
            } else {
                self.negotiate();
            }
        }
    }

    /// Declares the leaf sites living below this client, turning its
    /// server-side slot into an aggregator-node slot (the server counts
    /// quorum and drops over leaves, not direct children).
    ///
    /// # Errors
    ///
    /// [`FlareError::RetriesExhausted`] when the send budget runs out.
    pub fn announce_leaves(&mut self, sites: Vec<String>) -> Result<(), FlareError> {
        self.send_with_retry(&ClientMessage::AnnounceLeaves { sites }, "announce leaves")
    }

    /// Submits a pre-aggregated shard update: the weighted partial
    /// aggregate of this node's subtree, plus the per-leaf bookkeeping
    /// (contributor metrics and dropped sites) the upstream round needs.
    /// The payload rides the negotiated uplink codec when one is active.
    ///
    /// # Errors
    ///
    /// [`FlareError::RetriesExhausted`] when the send budget runs out.
    pub fn submit_shard(
        &mut self,
        round: u32,
        dxo: Dxo,
        sites: Vec<(String, BTreeMap<String, f64>)>,
        dropped: Vec<String>,
    ) -> Result<(), FlareError> {
        let mut ack = NO_BASE;
        let mut payload = None;
        if matches!(dxo.kind, DxoKind::Weights) {
            if let Some(uplink) = self.uplink.as_mut() {
                let latest = self.cache.latest_id();
                let base = latest.and_then(|id| self.cache.get(id).map(|w| (w, id)));
                match uplink.encode(&dxo.weights, base) {
                    Ok(enc) => {
                        ack = latest.unwrap_or(NO_BASE);
                        payload = Some(ShardPayload::Encoded(enc));
                    }
                    Err(e) => {
                        self.log.warn(
                            "FederatedClient",
                            format!("{}: uplink encode failed ({e}); sending raw", self.site),
                        );
                    }
                }
            }
        }
        let msg = ClientMessage::SubmitShard {
            round,
            ack,
            n_examples: dxo.n_examples,
            sites,
            dropped,
            payload: payload.unwrap_or(ShardPayload::Raw(dxo.weights)),
        };
        self.send_redundant(&msg, &format!("submit shard round {round}"))
    }

    /// Relays the per-leaf validation metrics gathered below this node.
    ///
    /// # Errors
    ///
    /// [`FlareError::RetriesExhausted`] when the send budget runs out.
    pub fn report_validate_shard(
        &mut self,
        round: u32,
        reports: Vec<(String, f64)>,
    ) -> Result<(), FlareError> {
        let msg = ClientMessage::ValidateShard {
            round,
            ack: self.cache.latest_id().unwrap_or(NO_BASE),
            reports,
        };
        self.send_redundant(&msg, &format!("validate shard round {round}"))
    }

    /// Receives, decrypts, and decodes the next task assignment. Corrupt
    /// or non-task frames are skipped; encoded tasks are decoded against
    /// the payload cache (an undecodable payload skips the task and waits
    /// for the server's next self-contained frame).
    ///
    /// # Errors
    ///
    /// Transport failures or an exhausted receive budget.
    pub fn next_task(&mut self) -> Result<TaskAssignment, FlareError> {
        loop {
            let msg = if let Some(m) = self.pending.pop_front() {
                m
            } else {
                let frame = self.recv_with_retry()?;
                let plain = match self.open.open(&frame) {
                    Ok(p) => p,
                    Err(e) => {
                        // A truncated/tampered frame is a link fault, not a
                        // session killer: skip it and wait for the next task.
                        self.log.warn(
                            "FederatedClient",
                            format!("{}: rejected corrupt frame: {e}", self.site),
                        );
                        continue;
                    }
                };
                match ServerMessage::from_frame(&plain) {
                    Ok(m) => m,
                    Err(e) => {
                        self.log.warn(
                            "FederatedClient",
                            format!("{}: undecodable message: {e}", self.site),
                        );
                        continue;
                    }
                }
            };
            let ServerMessage::Task(task) = msg else {
                continue;
            };
            // Codec tasks decode to their raw counterparts, so callers
            // only ever see plain-weight assignments.
            match task {
                TaskAssignment::TrainEnc {
                    round,
                    total_rounds,
                    enc,
                } => match self.decode_downlink(&enc) {
                    Some(weights) => {
                        return Ok(TaskAssignment::Train {
                            round,
                            total_rounds,
                            weights,
                        })
                    }
                    None => continue,
                },
                TaskAssignment::ValidateEnc { round, enc } => match self.decode_downlink(&enc) {
                    Some(weights) => return Ok(TaskAssignment::Validate { round, weights }),
                    None => continue,
                },
                t => return Ok(t),
            }
        }
    }

    /// Probes — without meaningfully blocking — whether the server has
    /// another task queued for this client. Frames that already arrived
    /// are drained, decoded, and buffered for [`Self::next_task`]; the
    /// probe reports `true` once a task (or a transport failure — either
    /// way the caller's current round is over) is found. Interior tree
    /// nodes use this mid-gather to notice that the parent has closed the
    /// round early and moved on, instead of waiting out the full shard
    /// timeout on leaves that will never submit. The 1ms receive slice
    /// avoids the zero-timeout desync hazard of length-prefixed TCP
    /// framing.
    pub fn poll_pending_task(&mut self) -> bool {
        loop {
            if self
                .pending
                .iter()
                .any(|m| matches!(m, ServerMessage::Task(_)))
            {
                return true;
            }
            match self.conn.rx.recv(Duration::from_millis(1)) {
                Ok(frame) => {
                    self.obs.bytes_rx.add(frame.len() as u64);
                    let plain = match self.open.open(&frame) {
                        Ok(p) => p,
                        Err(e) => {
                            self.log.warn(
                                "FederatedClient",
                                format!("{}: rejected corrupt frame: {e}", self.site),
                            );
                            continue;
                        }
                    };
                    match ServerMessage::from_frame(&plain) {
                        Ok(m) => self.pending.push_back(m),
                        Err(e) => {
                            self.log.warn(
                                "FederatedClient",
                                format!("{}: undecodable message: {e}", self.site),
                            );
                        }
                    }
                }
                Err(FlareError::Timeout) => return false,
                Err(_) => return true,
            }
        }
    }

    /// Sends the best-effort goodbye that lets the server log a graceful
    /// disconnect instead of a lost connection.
    pub fn send_bye(&mut self) {
        let site = self.site.clone();
        if let Err(e) = self.send_once(&ClientMessage::Bye { site }) {
            self.note_send_error("goodbye", &e);
        }
    }

    /// A "crashed" site: stops participating but keeps its connection
    /// open (a hung process or partitioned network, which the server
    /// cannot distinguish from a slow client), draining and ignoring all
    /// traffic until the server tears the session down. Holding the slot
    /// alive keeps the controller's expected-site set — and therefore its
    /// drop/quorum bookkeeping — deterministic across runs.
    fn hang_until_disconnect(&mut self, trained: u32) -> Result<u32, FlareError> {
        loop {
            match self.conn.rx.recv(Duration::from_secs(3600)) {
                Ok(_) | Err(FlareError::Timeout) => continue,
                Err(_) => return Ok(trained),
            }
        }
    }

    /// Runs the task loop with the given executor until the server sends
    /// `Finish` (or a failure-injection behavior triggers).
    ///
    /// Returns the number of training rounds completed. A transport
    /// disconnect after at least one completed round is treated as the
    /// server closing the session (e.g. this client's `Finish` frame was
    /// lost to a fault) and ends the loop gracefully.
    ///
    /// # Errors
    ///
    /// Transport or codec failures before any round completes, or a
    /// [`FlareError::RetriesExhausted`] receive budget; executor panics
    /// propagate.
    pub fn run(
        &mut self,
        executor: &mut dyn Executor,
        behavior: ClientBehavior,
    ) -> Result<u32, FlareError> {
        let mut trained = 0u32;
        self.negotiate_codec();
        loop {
            let task = match self.next_task() {
                Ok(t) => t,
                Err(FlareError::Transport(reason)) if trained > 0 => {
                    self.log.warn(
                        "FederatedClient",
                        format!(
                            "{}: connection closed by server ({reason}); exiting after {trained} round(s)",
                            self.site
                        ),
                    );
                    return Ok(trained);
                }
                Err(e) => return Err(e),
            };
            match task {
                TaskAssignment::Train {
                    round,
                    total_rounds,
                    weights,
                } => {
                    if behavior.drop_at_round.is_some_and(|r| round >= r) {
                        self.log.warn(
                            "FederatedClient",
                            format!("{} simulating crash at round {round}", self.site),
                        );
                        return self.hang_until_disconnect(trained);
                    }
                    if let Some(d) = behavior.straggle {
                        std::thread::sleep(d);
                    }
                    let _span = clinfl_obs::span("site");
                    let ctx = TaskContext {
                        site: self.site.clone(),
                        round,
                        total_rounds,
                    };
                    // At most CLINFL_THREADS sites compute at once; with a
                    // budget of 1 the round schedule is strictly sequential.
                    let permit = clinfl_tensor::pool::compute_permit();
                    let mut dxo = executor.train(&weights, &ctx);
                    drop(permit);
                    dxo = self.filters.apply(dxo, &weights, round);
                    debug_assert!(matches!(dxo.kind, DxoKind::Weights | DxoKind::WeightDiff));
                    let msg = self.encode_submit(round, dxo);
                    self.send_redundant(&msg, &format!("submit round {round}"))?;
                    trained += 1;
                }
                TaskAssignment::Validate { round, weights } => {
                    let ctx = TaskContext {
                        site: self.site.clone(),
                        round,
                        total_rounds: 0,
                    };
                    let permit = clinfl_tensor::pool::compute_permit();
                    let metric = executor.validate(&weights, &ctx);
                    drop(permit);
                    let msg = if self.active.is_some() {
                        ClientMessage::ValidateReportEnc {
                            round,
                            metric,
                            ack: self.cache.latest_id().unwrap_or(NO_BASE),
                        }
                    } else {
                        ClientMessage::ValidateReport { round, metric }
                    };
                    self.send_redundant(&msg, &format!("validate round {round}"))?;
                }
                TaskAssignment::Finish => {
                    // Best-effort goodbye: the server may already be
                    // tearing the session down.
                    self.send_bye();
                    return Ok(trained);
                }
                TaskAssignment::TrainEnc { .. } | TaskAssignment::ValidateEnc { .. } => {
                    unreachable!("encoded tasks decoded in next_task")
                }
            }
        }
    }
}
