//! Structured event log producing NVFlare-style run output (paper Fig. 3).

use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Severity of a log line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogLevel {
    /// Informational (the level NVFlare's run log uses throughout Fig. 3).
    Info,
    /// Something unexpected but survivable (dropped client, retry).
    Warn,
    /// A failure that aborts a workflow.
    Error,
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LogLevel::Info => "INFO",
            LogLevel::Warn => "WARN",
            LogLevel::Error => "ERROR",
        })
    }
}

/// One structured log record.
///
/// The formatted Fig. 3-style line is derived on demand; keeping the
/// fields separate lets tests compare fault/drop events across runs
/// without the (non-deterministic) elapsed timestamps getting in the way.
#[derive(Clone, Debug, PartialEq)]
pub struct LogEntry {
    /// Severity.
    pub level: LogLevel,
    /// Emitting component (`ServerRunner`, `FaultInjector`, …).
    pub component: String,
    /// The message body.
    pub message: String,
    /// Seconds since the log was created.
    pub elapsed_secs: f64,
    /// The emitting thread's obs span path (`run>round`) at log time;
    /// empty outside any span or with observability disabled. Carried as
    /// structured context only — [`LogEntry::format`] ignores it, so the
    /// Fig. 3 line format (and every deterministic comparison built on
    /// [`EventLog::messages_from`]) is unchanged.
    pub span: String,
}

impl LogEntry {
    /// The paper's Fig. 3 line format
    /// (`<elapsed> - <component> - <level> - <message>`).
    pub fn format(&self) -> String {
        format!(
            "{:>9.3}s - {} - {} - {}",
            self.elapsed_secs, self.component, self.level, self.message
        )
    }
}

/// A shared, thread-safe event log.
///
/// Lines are formatted like the paper's Fig. 3 run log, collected in
/// memory for assertions and demos, and optionally echoed to stdout.
#[derive(Clone, Debug)]
pub struct EventLog {
    start: Instant,
    entries: Arc<Mutex<Vec<LogEntry>>>,
    echo: bool,
}

impl EventLog {
    /// A silent log (lines collected, nothing printed).
    pub fn new() -> Self {
        EventLog {
            start: Instant::now(),
            entries: Arc::new(Mutex::new(Vec::new())),
            echo: false,
        }
    }

    /// A log that also echoes each line to stdout (for demos).
    pub fn echoing() -> Self {
        EventLog {
            echo: true,
            ..EventLog::new()
        }
    }

    /// Appends a line from `component` at `level`.
    pub fn log(&self, level: LogLevel, component: &str, message: impl fmt::Display) {
        let entry = LogEntry {
            level,
            component: component.to_string(),
            message: message.to_string(),
            elapsed_secs: self.start.elapsed().as_secs_f64(),
            span: clinfl_obs::current_span_path(),
        };
        if self.echo {
            println!("{}", entry.format());
        }
        self.entries.lock().push(entry);
    }

    /// Shorthand for [`LogLevel::Info`].
    pub fn info(&self, component: &str, message: impl fmt::Display) {
        self.log(LogLevel::Info, component, message);
    }

    /// Shorthand for [`LogLevel::Warn`].
    pub fn warn(&self, component: &str, message: impl fmt::Display) {
        self.log(LogLevel::Warn, component, message);
    }

    /// Snapshot of all formatted lines so far.
    pub fn lines(&self) -> Vec<String> {
        self.entries.lock().iter().map(LogEntry::format).collect()
    }

    /// Snapshot of the structured records.
    pub fn entries(&self) -> Vec<LogEntry> {
        self.entries.lock().clone()
    }

    /// Timestamp-free messages from one component, in append order. Fault
    /// and drop events are compared across chaos runs through this view.
    pub fn messages_from(&self, component: &str) -> Vec<String> {
        self.entries
            .lock()
            .iter()
            .filter(|e| e.component == component)
            .map(|e| e.message.clone())
            .collect()
    }

    /// True if any formatted line contains `needle` (test helper).
    pub fn contains(&self, needle: &str) -> bool {
        self.entries
            .lock()
            .iter()
            .any(|e| e.format().contains(needle))
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_lines_in_order() {
        let log = EventLog::new();
        log.info("ServerRunner", "Server started");
        log.warn("ClientManager", "client site-3 late");
        let lines = log.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("ServerRunner - INFO - Server started"));
        assert!(lines[1].contains("WARN"));
    }

    #[test]
    fn clones_share_backing_storage() {
        let log = EventLog::new();
        let log2 = log.clone();
        log2.info("X", "from clone");
        assert!(log.contains("from clone"));
    }

    #[test]
    fn level_display() {
        assert_eq!(LogLevel::Info.to_string(), "INFO");
        assert_eq!(LogLevel::Error.to_string(), "ERROR");
    }

    #[test]
    fn messages_from_filters_by_component() {
        let log = EventLog::new();
        log.warn("FaultInjector", "site-1 c2s#3: injected drop (64B frame)");
        log.info("ServerRunner", "Round 0 started.");
        log.warn("FaultInjector", "site-2 s2c#1: injected delay (80B frame)");
        let faults = log.messages_from("FaultInjector");
        assert_eq!(faults.len(), 2);
        assert!(faults[0].starts_with("site-1"));
        assert!(faults[1].starts_with("site-2"));
        assert!(log.messages_from("NoSuchComponent").is_empty());
    }

    #[test]
    fn entries_carry_span_context_without_changing_format() {
        let log = EventLog::new();
        log.info("X", "outside");
        {
            let _s = clinfl_obs::span("logtest");
            log.info("X", "inside");
        }
        let entries = log.entries();
        assert_eq!(entries[0].span, "");
        if clinfl_obs::enabled() {
            assert_eq!(entries[1].span, "logtest");
        }
        // The Fig. 3 line format never includes the span context.
        assert!(!entries[1].format().contains("logtest"));
    }

    #[test]
    fn entries_expose_structure() {
        let log = EventLog::new();
        log.info("X", "hello");
        let entries = log.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].level, LogLevel::Info);
        assert_eq!(entries[0].component, "X");
        assert_eq!(entries[0].message, "hello");
        assert!(entries[0].elapsed_secs >= 0.0);
        assert!(entries[0].format().contains("X - INFO - hello"));
    }
}
