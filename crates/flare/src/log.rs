//! Structured event log producing NVFlare-style run output (paper Fig. 3).

use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Severity of a log line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogLevel {
    /// Informational (the level NVFlare's run log uses throughout Fig. 3).
    Info,
    /// Something unexpected but survivable (dropped client, retry).
    Warn,
    /// A failure that aborts a workflow.
    Error,
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LogLevel::Info => "INFO",
            LogLevel::Warn => "WARN",
            LogLevel::Error => "ERROR",
        })
    }
}

/// A shared, thread-safe event log.
///
/// Lines are formatted like the paper's Fig. 3 run log
/// (`<elapsed> - <component> - <level> - <message>`), collected in memory
/// for assertions and demos, and optionally echoed to stdout.
#[derive(Clone, Debug)]
pub struct EventLog {
    start: Instant,
    lines: Arc<Mutex<Vec<String>>>,
    echo: bool,
}

impl EventLog {
    /// A silent log (lines collected, nothing printed).
    pub fn new() -> Self {
        EventLog {
            start: Instant::now(),
            lines: Arc::new(Mutex::new(Vec::new())),
            echo: false,
        }
    }

    /// A log that also echoes each line to stdout (for demos).
    pub fn echoing() -> Self {
        EventLog {
            echo: true,
            ..EventLog::new()
        }
    }

    /// Appends a line from `component` at `level`.
    pub fn log(&self, level: LogLevel, component: &str, message: impl fmt::Display) {
        let elapsed = self.start.elapsed();
        let line = format!(
            "{:>9.3}s - {component} - {level} - {message}",
            elapsed.as_secs_f64()
        );
        if self.echo {
            println!("{line}");
        }
        self.lines.lock().push(line);
    }

    /// Shorthand for [`LogLevel::Info`].
    pub fn info(&self, component: &str, message: impl fmt::Display) {
        self.log(LogLevel::Info, component, message);
    }

    /// Shorthand for [`LogLevel::Warn`].
    pub fn warn(&self, component: &str, message: impl fmt::Display) {
        self.log(LogLevel::Warn, component, message);
    }

    /// Snapshot of all lines so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }

    /// True if any line contains `needle` (test helper).
    pub fn contains(&self, needle: &str) -> bool {
        self.lines.lock().iter().any(|l| l.contains(needle))
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_lines_in_order() {
        let log = EventLog::new();
        log.info("ServerRunner", "Server started");
        log.warn("ClientManager", "client site-3 late");
        let lines = log.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("ServerRunner - INFO - Server started"));
        assert!(lines[1].contains("WARN"));
    }

    #[test]
    fn clones_share_backing_storage() {
        let log = EventLog::new();
        let log2 = log.clone();
        log2.info("X", "from clone");
        assert!(log.contains("from clone"));
    }

    #[test]
    fn level_display() {
        assert_eq!(LogLevel::Info.to_string(), "INFO");
        assert_eq!(LogLevel::Error.to_string(), "ERROR");
    }
}
