//! Server-side aggregation of client updates.
//!
//! The paper's runs use NVFlare's default weighted federated averaging
//! (its Fig. 3 shows the `DXOAggregator` "aggregating 8 update(s)"); the
//! robust aggregators are extensions used by the ablation benches.

use crate::dxo::{Dxo, WeightTensor, Weights};
use crate::FlareError;

/// An aggregation rule combining per-site updates into a new global model.
pub trait Aggregator: Send {
    /// Combines `updates` (site name + DXO) given the current global model
    /// `reference`.
    ///
    /// # Errors
    ///
    /// Implementations reject empty update sets and malformed updates.
    fn aggregate(
        &self,
        updates: &[(String, Dxo)],
        reference: &Weights,
    ) -> Result<Weights, FlareError>;

    /// Human-readable rule name (for logs and bench tables).
    fn name(&self) -> &'static str;
}

fn check_updates(updates: &[(String, Dxo)], reference: &Weights) -> Result<(), FlareError> {
    if updates.is_empty() {
        return Err(FlareError::NotEnoughClients { got: 0, needed: 1 });
    }
    for (site, dxo) in updates {
        dxo.validate(Some(reference))
            .map_err(|e| FlareError::RejectedUpdate(format!("{site}: {e}")))?;
    }
    Ok(())
}

/// Example-count-weighted federated averaging (McMahan et al.'s FedAvg,
/// NVFlare's default): `w = Σ nᵢ wᵢ / Σ nᵢ`.
///
/// Sites reporting `n_examples == 0` participate with weight 1 so a
/// metrics-less site cannot zero out a round.
#[derive(Clone, Copy, Debug, Default)]
pub struct WeightedFedAvg;

impl Aggregator for WeightedFedAvg {
    fn aggregate(
        &self,
        updates: &[(String, Dxo)],
        reference: &Weights,
    ) -> Result<Weights, FlareError> {
        check_updates(updates, reference)?;
        let weights: Vec<f64> = updates
            .iter()
            .map(|(_, d)| {
                if d.n_examples == 0 {
                    1.0
                } else {
                    d.n_examples as f64
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut out = Weights::new();
        for (name, ref_t) in reference {
            let mut acc = vec![0.0f64; ref_t.numel()];
            for ((_, dxo), &w) in updates.iter().zip(&weights) {
                let t = &dxo.weights[name];
                for (a, &v) in acc.iter_mut().zip(&t.data) {
                    *a += w * v as f64;
                }
            }
            let data: Vec<f32> = acc.into_iter().map(|v| (v / total) as f32).collect();
            out.insert(name.clone(), WeightTensor::new(ref_t.dims.clone(), data));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "WeightedFedAvg"
    }
}

/// Masked-sum aggregation for the secure-aggregation filter: sums the
/// (mask-cancelling) client payloads and divides by the total example
/// count. Clients must pre-multiply their weights by `n_examples`
/// (see [`crate::filters::SecureAggMask`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct MaskedSum;

impl Aggregator for MaskedSum {
    fn aggregate(
        &self,
        updates: &[(String, Dxo)],
        reference: &Weights,
    ) -> Result<Weights, FlareError> {
        if updates.is_empty() {
            return Err(FlareError::NotEnoughClients { got: 0, needed: 1 });
        }
        // Masked payloads are intentionally perturbed; validate shapes only.
        for (site, dxo) in updates {
            if dxo.weights.len() != reference.len() {
                return Err(FlareError::RejectedUpdate(format!(
                    "{site}: tensor count mismatch"
                )));
            }
        }
        let total: f64 = updates.iter().map(|(_, d)| d.n_examples as f64).sum();
        if total == 0.0 {
            return Err(FlareError::RejectedUpdate(
                "masked-sum requires positive example counts".into(),
            ));
        }
        let mut out = Weights::new();
        for (name, ref_t) in reference {
            let mut acc = vec![0.0f64; ref_t.numel()];
            for (_, dxo) in updates {
                let t = dxo.weights.get(name).ok_or_else(|| {
                    FlareError::RejectedUpdate(format!("missing tensor {name:?}"))
                })?;
                for (a, &v) in acc.iter_mut().zip(&t.data) {
                    *a += v as f64;
                }
            }
            let data: Vec<f32> = acc.into_iter().map(|v| (v / total) as f32).collect();
            out.insert(name.clone(), WeightTensor::new(ref_t.dims.clone(), data));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "MaskedSum"
    }
}

/// Coordinate-wise median: robust to a minority of corrupted updates
/// (extension; ablation bench).
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordinateMedian;

impl Aggregator for CoordinateMedian {
    fn aggregate(
        &self,
        updates: &[(String, Dxo)],
        reference: &Weights,
    ) -> Result<Weights, FlareError> {
        check_updates(updates, reference)?;
        let mut out = Weights::new();
        let mut column: Vec<f32> = Vec::with_capacity(updates.len());
        for (name, ref_t) in reference {
            let mut data = Vec::with_capacity(ref_t.numel());
            for i in 0..ref_t.numel() {
                column.clear();
                column.extend(updates.iter().map(|(_, d)| d.weights[name].data[i]));
                column.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
                let mid = column.len() / 2;
                let median = if column.len() % 2 == 1 {
                    column[mid]
                } else {
                    0.5 * (column[mid - 1] + column[mid])
                };
                data.push(median);
            }
            out.insert(name.clone(), WeightTensor::new(ref_t.dims.clone(), data));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "CoordinateMedian"
    }
}

/// Trimmed mean: drops the `trim` highest and lowest values per coordinate
/// before averaging (extension; ablation bench).
#[derive(Clone, Copy, Debug)]
pub struct TrimmedMean {
    /// Values trimmed from each end (must leave at least one value).
    pub trim: usize,
}

impl Aggregator for TrimmedMean {
    fn aggregate(
        &self,
        updates: &[(String, Dxo)],
        reference: &Weights,
    ) -> Result<Weights, FlareError> {
        check_updates(updates, reference)?;
        if updates.len() <= 2 * self.trim {
            return Err(FlareError::RejectedUpdate(format!(
                "trimmed mean needs more than {} updates, got {}",
                2 * self.trim,
                updates.len()
            )));
        }
        let mut out = Weights::new();
        let mut column: Vec<f32> = Vec::with_capacity(updates.len());
        for (name, ref_t) in reference {
            let mut data = Vec::with_capacity(ref_t.numel());
            for i in 0..ref_t.numel() {
                column.clear();
                column.extend(updates.iter().map(|(_, d)| d.weights[name].data[i]));
                column.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
                let kept = &column[self.trim..column.len() - self.trim];
                data.push(kept.iter().sum::<f32>() / kept.len() as f32);
            }
            out.insert(name.clone(), WeightTensor::new(ref_t.dims.clone(), data));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "TrimmedMean"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: f32) -> Weights {
        let mut m = Weights::new();
        m.insert("p".into(), WeightTensor::new(vec![2], vec![v, v * 2.0]));
        m
    }

    fn update(site: &str, v: f32, n: u64) -> (String, Dxo) {
        (site.to_string(), Dxo::from_weights(w(v), n))
    }

    #[test]
    fn fedavg_weighted_mean() {
        // (1*1 + 3*3) / 4 = 2.5
        let updates = vec![update("a", 1.0, 1), update("b", 3.0, 3)];
        let out = WeightedFedAvg.aggregate(&updates, &w(0.0)).unwrap();
        assert_eq!(out["p"].data, vec![2.5, 5.0]);
    }

    #[test]
    fn fedavg_equal_when_counts_equal() {
        let updates = vec![update("a", 2.0, 5), update("b", 4.0, 5)];
        let out = WeightedFedAvg.aggregate(&updates, &w(0.0)).unwrap();
        assert_eq!(out["p"].data, vec![3.0, 6.0]);
    }

    #[test]
    fn fedavg_zero_count_treated_as_one() {
        let updates = vec![update("a", 0.0, 0), update("b", 4.0, 0)];
        let out = WeightedFedAvg.aggregate(&updates, &w(0.0)).unwrap();
        assert_eq!(out["p"].data, vec![2.0, 4.0]);
    }

    #[test]
    fn fedavg_rejects_empty() {
        assert!(WeightedFedAvg.aggregate(&[], &w(0.0)).is_err());
    }

    #[test]
    fn fedavg_rejects_nan_update() {
        let mut bad = w(1.0);
        bad.get_mut("p").unwrap().data[0] = f32::NAN;
        let updates = vec![("a".to_string(), Dxo::from_weights(bad, 1))];
        let err = WeightedFedAvg.aggregate(&updates, &w(0.0)).unwrap_err();
        assert!(err.to_string().contains("non-finite"));
    }

    #[test]
    fn fedavg_rejects_shape_mismatch() {
        let mut bad = Weights::new();
        bad.insert("p".into(), WeightTensor::new(vec![3], vec![0.0; 3]));
        let updates = vec![("a".to_string(), Dxo::from_weights(bad, 1))];
        assert!(WeightedFedAvg.aggregate(&updates, &w(0.0)).is_err());
    }

    #[test]
    fn median_ignores_outlier() {
        let updates = vec![
            update("a", 1.0, 1),
            update("b", 1.2, 1),
            update("evil", 1000.0, 1),
        ];
        let out = CoordinateMedian.aggregate(&updates, &w(0.0)).unwrap();
        assert_eq!(out["p"].data[0], 1.2);
    }

    #[test]
    fn median_even_count_averages_middle() {
        let updates = vec![update("a", 1.0, 1), update("b", 3.0, 1)];
        let out = CoordinateMedian.aggregate(&updates, &w(0.0)).unwrap();
        assert_eq!(out["p"].data[0], 2.0);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let updates = vec![
            update("a", -100.0, 1),
            update("b", 1.0, 1),
            update("c", 2.0, 1),
            update("d", 3.0, 1),
            update("evil", 500.0, 1),
        ];
        let out = TrimmedMean { trim: 1 }
            .aggregate(&updates, &w(0.0))
            .unwrap();
        assert_eq!(out["p"].data[0], 2.0);
    }

    #[test]
    fn trimmed_mean_needs_enough_updates() {
        let updates = vec![update("a", 1.0, 1), update("b", 2.0, 1)];
        assert!(TrimmedMean { trim: 1 }
            .aggregate(&updates, &w(0.0))
            .is_err());
    }

    #[test]
    fn masked_sum_divides_by_total() {
        // Clients send n_i * w_i; sum / Σn is the weighted mean.
        let updates = vec![update("a", 2.0, 2), update("b", 9.0, 3)];
        // payloads: 2.0 (pretend = 2*1.0), 9.0 (= 3*3.0) → (2+9)/5 = 2.2
        let out = MaskedSum.aggregate(&updates, &w(0.0)).unwrap();
        assert!((out["p"].data[0] - 2.2).abs() < 1e-6);
    }

    #[test]
    fn names() {
        assert_eq!(WeightedFedAvg.name(), "WeightedFedAvg");
        assert_eq!(CoordinateMedian.name(), "CoordinateMedian");
        assert_eq!(TrimmedMean { trim: 1 }.name(), "TrimmedMean");
        assert_eq!(MaskedSum.name(), "MaskedSum");
    }
}
