//! Server-side aggregation of client updates.
//!
//! The paper's runs use NVFlare's default weighted federated averaging
//! (its Fig. 3 shows the `DXOAggregator` "aggregating 8 update(s)"); the
//! robust aggregators are extensions used by the ablation benches.

use crate::dxo::{Dxo, WeightTensor, Weights};
use crate::FlareError;

/// An aggregation rule combining per-site updates into a new global model.
pub trait Aggregator: Send + Sync {
    /// Combines `updates` (site name + DXO) given the current global model
    /// `reference`.
    ///
    /// # Errors
    ///
    /// Implementations reject empty update sets and malformed updates.
    fn aggregate(
        &self,
        updates: &[(String, Dxo)],
        reference: &Weights,
    ) -> Result<Weights, FlareError>;

    /// Human-readable rule name (for logs and bench tables).
    fn name(&self) -> &'static str;

    /// Whether this rule decomposes over disjoint shards: an interior
    /// tree-aggregator node may combine its shard with [`Aggregator::partial`]
    /// and forward one update, with the root's [`Aggregator::aggregate`]
    /// over the partials equal to a flat aggregation over all leaves.
    /// Order statistics (median, trimmed mean) do not decompose and keep
    /// the default `false`; the simulator then falls back to a flat
    /// topology.
    fn supports_partial(&self) -> bool {
        false
    }

    /// Combines a shard of updates into one partial update whose
    /// `n_examples` carries the shard's total weight upstream. Only
    /// meaningful when [`Aggregator::supports_partial`] is `true`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Aggregator::aggregate`]; additionally
    /// [`FlareError::RejectedUpdate`] when the rule does not decompose.
    fn partial(&self, updates: &[(String, Dxo)], reference: &Weights) -> Result<Dxo, FlareError> {
        let _ = (updates, reference);
        Err(FlareError::RejectedUpdate(format!(
            "{} does not support partial (tree) aggregation",
            self.name()
        )))
    }
}

fn check_updates(updates: &[(String, Dxo)], reference: &Weights) -> Result<(), FlareError> {
    if updates.is_empty() {
        return Err(FlareError::NotEnoughClients { got: 0, needed: 1 });
    }
    for (site, dxo) in updates {
        dxo.validate(Some(reference))
            .map_err(|e| FlareError::RejectedUpdate(format!("{site}: {e}")))?;
    }
    Ok(())
}

/// Example-count-weighted federated averaging (McMahan et al.'s FedAvg,
/// NVFlare's default): `w = Σ nᵢ wᵢ / Σ nᵢ`.
///
/// Sites reporting `n_examples == 0` participate with weight 1 so a
/// metrics-less site cannot zero out a round.
#[derive(Clone, Copy, Debug, Default)]
pub struct WeightedFedAvg;

impl Aggregator for WeightedFedAvg {
    fn aggregate(
        &self,
        updates: &[(String, Dxo)],
        reference: &Weights,
    ) -> Result<Weights, FlareError> {
        check_updates(updates, reference)?;
        let weights: Vec<f64> = updates
            .iter()
            .map(|(_, d)| {
                if d.n_examples == 0 {
                    1.0
                } else {
                    d.n_examples as f64
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut out = Weights::new();
        for (name, ref_t) in reference {
            let mut acc = vec![0.0f64; ref_t.numel()];
            for ((_, dxo), &w) in updates.iter().zip(&weights) {
                let t = &dxo.weights[name];
                for (a, &v) in acc.iter_mut().zip(&t.data) {
                    *a += w * v as f64;
                }
            }
            let data: Vec<f32> = acc.into_iter().map(|v| (v / total) as f32).collect();
            out.insert(name.clone(), WeightTensor::new(ref_t.dims.clone(), data));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "WeightedFedAvg"
    }

    fn supports_partial(&self) -> bool {
        true
    }

    /// The weighted mean decomposes: a shard's partial is its weighted
    /// mean carrying `Σ nᵢ` (with `nᵢ == 0` counted as 1) upstream, and
    /// the root's weighted mean over partials equals the flat result.
    fn partial(&self, updates: &[(String, Dxo)], reference: &Weights) -> Result<Dxo, FlareError> {
        let weights = self.aggregate(updates, reference)?;
        let n: u64 = updates
            .iter()
            .map(|(_, d)| if d.n_examples == 0 { 1 } else { d.n_examples })
            .sum();
        Ok(Dxo::from_weights(weights, n))
    }
}

/// Masked-sum aggregation for the secure-aggregation filter: sums the
/// (mask-cancelling) client payloads and divides by the total example
/// count. Clients must pre-multiply their weights by `n_examples`
/// (see [`crate::filters::SecureAggMask`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct MaskedSum;

impl Aggregator for MaskedSum {
    fn aggregate(
        &self,
        updates: &[(String, Dxo)],
        reference: &Weights,
    ) -> Result<Weights, FlareError> {
        if updates.is_empty() {
            return Err(FlareError::NotEnoughClients { got: 0, needed: 1 });
        }
        // Masked payloads are intentionally perturbed; validate shapes only.
        for (site, dxo) in updates {
            if dxo.weights.len() != reference.len() {
                return Err(FlareError::RejectedUpdate(format!(
                    "{site}: tensor count mismatch"
                )));
            }
        }
        let total: f64 = updates.iter().map(|(_, d)| d.n_examples as f64).sum();
        if total == 0.0 {
            return Err(FlareError::RejectedUpdate(
                "masked-sum requires positive example counts".into(),
            ));
        }
        let mut out = Weights::new();
        for (name, ref_t) in reference {
            let mut acc = vec![0.0f64; ref_t.numel()];
            for (_, dxo) in updates {
                let t = dxo.weights.get(name).ok_or_else(|| {
                    FlareError::RejectedUpdate(format!("missing tensor {name:?}"))
                })?;
                for (a, &v) in acc.iter_mut().zip(&t.data) {
                    *a += v as f64;
                }
            }
            let data: Vec<f32> = acc.into_iter().map(|v| (v / total) as f32).collect();
            out.insert(name.clone(), WeightTensor::new(ref_t.dims.clone(), data));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "MaskedSum"
    }

    fn supports_partial(&self) -> bool {
        true
    }

    /// Summation is linear, so a shard's partial is the *undivided* sum
    /// of its payloads carrying `Σ nᵢ`: pairwise masks spanning different
    /// shards only cancel once the root adds every partial, and the
    /// root's final divide by the total example count then recovers the
    /// weighted mean.
    fn partial(&self, updates: &[(String, Dxo)], reference: &Weights) -> Result<Dxo, FlareError> {
        if updates.is_empty() {
            return Err(FlareError::NotEnoughClients { got: 0, needed: 1 });
        }
        for (site, dxo) in updates {
            if dxo.weights.len() != reference.len() {
                return Err(FlareError::RejectedUpdate(format!(
                    "{site}: tensor count mismatch"
                )));
            }
        }
        let total_n: u64 = updates.iter().map(|(_, d)| d.n_examples).sum();
        let mut out = Weights::new();
        for (name, ref_t) in reference {
            let mut acc = vec![0.0f64; ref_t.numel()];
            for (_, dxo) in updates {
                let t = dxo.weights.get(name).ok_or_else(|| {
                    FlareError::RejectedUpdate(format!("missing tensor {name:?}"))
                })?;
                for (a, &v) in acc.iter_mut().zip(&t.data) {
                    *a += v as f64;
                }
            }
            let data: Vec<f32> = acc.into_iter().map(|v| v as f32).collect();
            out.insert(name.clone(), WeightTensor::new(ref_t.dims.clone(), data));
        }
        Ok(Dxo::from_weights(out, total_n))
    }
}

/// Coordinate-wise median: robust to a minority of corrupted updates
/// (extension; ablation bench).
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordinateMedian;

impl Aggregator for CoordinateMedian {
    fn aggregate(
        &self,
        updates: &[(String, Dxo)],
        reference: &Weights,
    ) -> Result<Weights, FlareError> {
        check_updates(updates, reference)?;
        let mut out = Weights::new();
        let mut column: Vec<f32> = Vec::with_capacity(updates.len());
        for (name, ref_t) in reference {
            let mut data = Vec::with_capacity(ref_t.numel());
            for i in 0..ref_t.numel() {
                column.clear();
                column.extend(updates.iter().map(|(_, d)| d.weights[name].data[i]));
                column.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
                let mid = column.len() / 2;
                let median = if column.len() % 2 == 1 {
                    column[mid]
                } else {
                    0.5 * (column[mid - 1] + column[mid])
                };
                data.push(median);
            }
            out.insert(name.clone(), WeightTensor::new(ref_t.dims.clone(), data));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "CoordinateMedian"
    }
}

/// Trimmed mean: drops the `trim` highest and lowest values per coordinate
/// before averaging (extension; ablation bench).
#[derive(Clone, Copy, Debug)]
pub struct TrimmedMean {
    /// Values trimmed from each end (must leave at least one value).
    pub trim: usize,
}

impl Aggregator for TrimmedMean {
    fn aggregate(
        &self,
        updates: &[(String, Dxo)],
        reference: &Weights,
    ) -> Result<Weights, FlareError> {
        check_updates(updates, reference)?;
        if updates.len() <= 2 * self.trim {
            return Err(FlareError::RejectedUpdate(format!(
                "trimmed mean needs more than {} updates, got {}",
                2 * self.trim,
                updates.len()
            )));
        }
        let mut out = Weights::new();
        let mut column: Vec<f32> = Vec::with_capacity(updates.len());
        for (name, ref_t) in reference {
            let mut data = Vec::with_capacity(ref_t.numel());
            for i in 0..ref_t.numel() {
                column.clear();
                column.extend(updates.iter().map(|(_, d)| d.weights[name].data[i]));
                column.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
                let kept = &column[self.trim..column.len() - self.trim];
                data.push(kept.iter().sum::<f32>() / kept.len() as f32);
            }
            out.insert(name.clone(), WeightTensor::new(ref_t.dims.clone(), data));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "TrimmedMean"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: f32) -> Weights {
        let mut m = Weights::new();
        m.insert("p".into(), WeightTensor::new(vec![2], vec![v, v * 2.0]));
        m
    }

    fn update(site: &str, v: f32, n: u64) -> (String, Dxo) {
        (site.to_string(), Dxo::from_weights(w(v), n))
    }

    #[test]
    fn fedavg_weighted_mean() {
        // (1*1 + 3*3) / 4 = 2.5
        let updates = vec![update("a", 1.0, 1), update("b", 3.0, 3)];
        let out = WeightedFedAvg.aggregate(&updates, &w(0.0)).unwrap();
        assert_eq!(out["p"].data, vec![2.5, 5.0]);
    }

    #[test]
    fn fedavg_equal_when_counts_equal() {
        let updates = vec![update("a", 2.0, 5), update("b", 4.0, 5)];
        let out = WeightedFedAvg.aggregate(&updates, &w(0.0)).unwrap();
        assert_eq!(out["p"].data, vec![3.0, 6.0]);
    }

    #[test]
    fn fedavg_zero_count_treated_as_one() {
        let updates = vec![update("a", 0.0, 0), update("b", 4.0, 0)];
        let out = WeightedFedAvg.aggregate(&updates, &w(0.0)).unwrap();
        assert_eq!(out["p"].data, vec![2.0, 4.0]);
    }

    #[test]
    fn fedavg_rejects_empty() {
        assert!(WeightedFedAvg.aggregate(&[], &w(0.0)).is_err());
    }

    #[test]
    fn fedavg_rejects_nan_update() {
        let mut bad = w(1.0);
        bad.get_mut("p").unwrap().data[0] = f32::NAN;
        let updates = vec![("a".to_string(), Dxo::from_weights(bad, 1))];
        let err = WeightedFedAvg.aggregate(&updates, &w(0.0)).unwrap_err();
        assert!(err.to_string().contains("non-finite"));
    }

    #[test]
    fn fedavg_rejects_shape_mismatch() {
        let mut bad = Weights::new();
        bad.insert("p".into(), WeightTensor::new(vec![3], vec![0.0; 3]));
        let updates = vec![("a".to_string(), Dxo::from_weights(bad, 1))];
        assert!(WeightedFedAvg.aggregate(&updates, &w(0.0)).is_err());
    }

    #[test]
    fn median_ignores_outlier() {
        let updates = vec![
            update("a", 1.0, 1),
            update("b", 1.2, 1),
            update("evil", 1000.0, 1),
        ];
        let out = CoordinateMedian.aggregate(&updates, &w(0.0)).unwrap();
        assert_eq!(out["p"].data[0], 1.2);
    }

    #[test]
    fn median_even_count_averages_middle() {
        let updates = vec![update("a", 1.0, 1), update("b", 3.0, 1)];
        let out = CoordinateMedian.aggregate(&updates, &w(0.0)).unwrap();
        assert_eq!(out["p"].data[0], 2.0);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let updates = vec![
            update("a", -100.0, 1),
            update("b", 1.0, 1),
            update("c", 2.0, 1),
            update("d", 3.0, 1),
            update("evil", 500.0, 1),
        ];
        let out = TrimmedMean { trim: 1 }
            .aggregate(&updates, &w(0.0))
            .unwrap();
        assert_eq!(out["p"].data[0], 2.0);
    }

    #[test]
    fn trimmed_mean_needs_enough_updates() {
        let updates = vec![update("a", 1.0, 1), update("b", 2.0, 1)];
        assert!(TrimmedMean { trim: 1 }
            .aggregate(&updates, &w(0.0))
            .is_err());
    }

    #[test]
    fn masked_sum_divides_by_total() {
        // Clients send n_i * w_i; sum / Σn is the weighted mean.
        let updates = vec![update("a", 2.0, 2), update("b", 9.0, 3)];
        // payloads: 2.0 (pretend = 2*1.0), 9.0 (= 3*3.0) → (2+9)/5 = 2.2
        let out = MaskedSum.aggregate(&updates, &w(0.0)).unwrap();
        assert!((out["p"].data[0] - 2.2).abs() < 1e-6);
    }

    #[test]
    fn fedavg_partial_composes_to_flat_result() {
        // Four updates split into two shards of two; the two-level
        // weighted mean must equal the flat one.
        let all = vec![
            update("a", 1.0, 2),
            update("b", 3.0, 6),
            update("c", 5.0, 4),
            update("d", 7.0, 4),
        ];
        let flat = WeightedFedAvg.aggregate(&all, &w(0.0)).unwrap();
        let p1 = WeightedFedAvg.partial(&all[..2], &w(0.0)).unwrap();
        let p2 = WeightedFedAvg.partial(&all[2..], &w(0.0)).unwrap();
        assert_eq!(p1.n_examples, 8);
        assert_eq!(p2.n_examples, 8);
        let partials = vec![("agg-0".to_string(), p1), ("agg-1".to_string(), p2)];
        let tree = WeightedFedAvg.aggregate(&partials, &w(0.0)).unwrap();
        assert_eq!(tree["p"].data, flat["p"].data);
    }

    #[test]
    fn fedavg_partial_counts_zero_as_one() {
        let shard = vec![update("a", 2.0, 0), update("b", 4.0, 0)];
        let p = WeightedFedAvg.partial(&shard, &w(0.0)).unwrap();
        assert_eq!(p.n_examples, 2);
        assert_eq!(p.weights["p"].data, vec![3.0, 6.0]);
    }

    #[test]
    fn masked_sum_partial_preserves_mask_cancellation() {
        // Payloads +m and -m in different shards: partials keep the mask
        // residue, the root sum cancels it, the divide recovers the mean.
        let m = 1000.0;
        let all = vec![
            update("a", 2.0 + m, 2),
            update("b", 9.0, 3),
            update("c", 4.0 - m, 4),
            update("d", 5.0, 1),
        ];
        let flat = MaskedSum.aggregate(&all, &w(0.0)).unwrap();
        let p1 = MaskedSum.partial(&all[..2], &w(0.0)).unwrap();
        let p2 = MaskedSum.partial(&all[2..], &w(0.0)).unwrap();
        assert_eq!(p1.n_examples, 5);
        assert_eq!(p2.n_examples, 5);
        let partials = vec![("agg-0".to_string(), p1), ("agg-1".to_string(), p2)];
        let tree = MaskedSum.aggregate(&partials, &w(0.0)).unwrap();
        for (t, f) in tree["p"].data.iter().zip(&flat["p"].data) {
            assert!((t - f).abs() < 1e-4, "tree {t} vs flat {f}");
        }
    }

    #[test]
    fn order_statistics_do_not_decompose() {
        assert!(!CoordinateMedian.supports_partial());
        assert!(!TrimmedMean { trim: 1 }.supports_partial());
        let updates = vec![update("a", 1.0, 1), update("b", 2.0, 1)];
        let err = CoordinateMedian.partial(&updates, &w(0.0)).unwrap_err();
        assert!(err.to_string().contains("partial"));
    }

    #[test]
    fn names() {
        assert_eq!(WeightedFedAvg.name(), "WeightedFedAvg");
        assert_eq!(CoordinateMedian.name(), "CoordinateMedian");
        assert_eq!(TrimmedMean { trim: 1 }.name(), "TrimmedMean");
        assert_eq!(MaskedSum.name(), "MaskedSum");
    }
}
