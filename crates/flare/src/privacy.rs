//! (ε, δ) accounting for the DP-SGD mode (moments-accountant style).
//!
//! The [`crate::filters::DpGaussian`] filter clips each site's update to
//! `clip_norm` (global L2) and adds per-coordinate Gaussian noise with
//! standard deviation `sigma · clip_norm` — the Gaussian mechanism with
//! noise multiplier `sigma` on a query of sensitivity `clip_norm`. This
//! module tracks the cumulative privacy loss of releasing one such update
//! per round, using Rényi differential privacy (RDP):
//!
//! * One release of the Gaussian mechanism satisfies
//!   `ε_RDP(α) = α / (2σ²)` at every Rényi order `α > 1`.
//! * With per-round client sampling at rate `q`, the loss is amplified to
//!   approximately `q²·α / σ²` (the Abadi et al. moments bound, valid in
//!   the `q·α ≪ σ` regime — documented as an approximation, and an upper
//!   bound of the exact subsampled-Gaussian RDP in that regime).
//! * RDP composes additively over rounds, and converts to `(ε, δ)`-DP via
//!   `ε = min_α [ T·ε_RDP(α) + ln(1/δ) / (α − 1) ]` over a grid of
//!   orders.
//!
//! The accountant is deterministic, allocation-light, and published per
//! round as obs gauges (`flare.dp.epsilon_micro`, in millionths, because
//! [`clinfl_obs::Gauge`] is integral).

/// Rényi orders the conversion minimizes over (the standard Opacus-style
/// grid: dense low orders where subsampled losses bottom out, sparse high
/// orders for the pure-Gaussian regime).
const ALPHA_GRID: [f64; 20] = [
    1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0, 32.0, 64.0, 128.0,
    256.0, 512.0, 1024.0,
];

/// Tracks the cumulative (ε, δ) privacy loss of a DP-SGD run.
#[derive(Clone, Debug)]
pub struct DpAccountant {
    /// Noise multiplier σ of the Gaussian mechanism (noise std divided by
    /// clipping norm).
    sigma: f64,
    /// Per-round client sampling rate in `(0, 1]`; `1.0` means every
    /// site participates every round (no amplification).
    sample_rate: f64,
    /// Target δ of the (ε, δ) guarantee.
    delta: f64,
    /// Completed rounds (composition steps).
    steps: u32,
}

impl DpAccountant {
    /// Creates an accountant for noise multiplier `sigma`, per-round
    /// sampling rate `sample_rate`, and target `delta`.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma > 0`, `0 < sample_rate <= 1`, and
    /// `0 < delta < 1`.
    pub fn new(sigma: f64, sample_rate: f64, delta: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        assert!(
            sample_rate > 0.0 && sample_rate <= 1.0,
            "sample_rate must be in (0,1], got {sample_rate}"
        );
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must be in (0,1), got {delta}"
        );
        DpAccountant {
            sigma,
            sample_rate,
            delta,
            steps: 0,
        }
    }

    /// Records one completed round (one noised release per participating
    /// site).
    pub fn step(&mut self) {
        self.steps += 1;
    }

    /// Completed rounds so far.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// The target δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Per-step RDP loss at Rényi order `alpha`.
    fn rdp_step(&self, alpha: f64) -> f64 {
        let base = alpha / (2.0 * self.sigma * self.sigma);
        if self.sample_rate >= 1.0 {
            base
        } else {
            // Subsampled amplification (Abadi-style moments bound):
            // ε_RDP(α) ≈ q²·α / σ², valid for q·α ≪ σ. 2·q²·base = q²α/σ².
            2.0 * self.sample_rate * self.sample_rate * base
        }
    }

    /// The ε of the `(ε, δ)` guarantee after the recorded rounds: RDP
    /// composed over steps, converted at the best order on the grid.
    /// Zero before the first step; monotone non-decreasing in rounds.
    pub fn epsilon(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        let t = self.steps as f64;
        let log_inv_delta = (1.0 / self.delta).ln();
        ALPHA_GRID
            .iter()
            .map(|&alpha| t * self.rdp_step(alpha) + log_inv_delta / (alpha - 1.0))
            .fold(f64::INFINITY, f64::min)
    }

    /// Publishes the current budget into `obs` as integral gauges:
    /// `flare.dp.epsilon_micro` (ε in millionths), `flare.dp.delta_exp`
    /// (⌈−log₁₀ δ⌉), and `flare.dp.rounds`.
    pub fn publish(&self, obs: &clinfl_obs::Registry) {
        if !clinfl_obs::enabled() {
            return;
        }
        let eps_micro = (self.epsilon() * 1e6).round();
        let eps_micro = if eps_micro.is_finite() {
            eps_micro.clamp(0.0, i64::MAX as f64) as i64
        } else {
            i64::MAX
        };
        obs.gauge("flare.dp.epsilon_micro").set(eps_micro);
        obs.gauge("flare.dp.delta_exp")
            .set((-self.delta.log10()).ceil() as i64);
        obs.gauge("flare.dp.rounds").set(self.steps as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_starts_at_zero_and_grows_monotonically() {
        let mut acc = DpAccountant::new(1.0, 1.0, 1e-5);
        assert_eq!(acc.epsilon(), 0.0);
        let mut last = 0.0;
        for _ in 0..50 {
            acc.step();
            let eps = acc.epsilon();
            assert!(eps > last, "epsilon must strictly grow: {eps} vs {last}");
            last = eps;
        }
    }

    /// Hand-computed reference: for the unsampled Gaussian mechanism the
    /// continuous-α optimum of `T·α/(2σ²) + ln(1/δ)/(α−1)` is
    /// `ε* = T/(2σ²) + √(2·T·ln(1/δ))/σ`. With σ = 1, T = 1, δ = 1e-5:
    /// ε* = 0.5 + √(2·ln(1e5)) ≈ 5.2983. The grid minimum can only be
    /// slightly above the continuous optimum.
    #[test]
    fn matches_closed_form_reference() {
        let mut acc = DpAccountant::new(1.0, 1.0, 1e-5);
        acc.step();
        let exact = 0.5 + (2.0 * (1e5f64).ln()).sqrt();
        let eps = acc.epsilon();
        assert!(eps >= exact - 1e-9, "grid min {eps} below optimum {exact}");
        assert!(
            eps < exact * 1.02,
            "grid min {eps} too far above optimum {exact}"
        );
    }

    #[test]
    fn more_noise_means_less_epsilon() {
        let eps_at = |sigma: f64| {
            let mut acc = DpAccountant::new(sigma, 1.0, 1e-5);
            for _ in 0..10 {
                acc.step();
            }
            acc.epsilon()
        };
        assert!(eps_at(2.0) < eps_at(1.0));
        assert!(eps_at(4.0) < eps_at(2.0));
    }

    #[test]
    fn sampling_amplifies_privacy() {
        let eps_at = |q: f64| {
            let mut acc = DpAccountant::new(2.0, q, 1e-5);
            for _ in 0..20 {
                acc.step();
            }
            acc.epsilon()
        };
        assert!(eps_at(0.25) < eps_at(1.0));
        assert!(eps_at(0.1) < eps_at(0.5));
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn rejects_zero_sigma() {
        DpAccountant::new(0.0, 1.0, 1e-5);
    }
}
