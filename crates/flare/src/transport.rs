//! Frame transports: in-process channels (simulator mode) and TCP.
//!
//! Both transports move opaque byte frames; the [`crate::wire`] codec and
//! [`crate::security::SecureChannel`] layers sit on top, so the simulator
//! and a real multi-process deployment run byte-identical protocols.

use crate::FlareError;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Sending half of a connection.
pub trait FrameTx: Send {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// [`FlareError::Transport`] when the peer is gone.
    fn send(&mut self, frame: &[u8]) -> Result<(), FlareError>;
}

/// Receiving half of a connection.
pub trait FrameRx: Send {
    /// Receives one frame, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`FlareError::Timeout`] if the deadline passes;
    /// [`FlareError::Transport`] when the peer is gone.
    fn recv(&mut self, timeout: Duration) -> Result<Vec<u8>, FlareError>;
}

/// A bidirectional connection that can be split into halves owned by
/// different threads.
pub struct Connection {
    /// Sending half.
    pub tx: Box<dyn FrameTx>,
    /// Receiving half.
    pub rx: Box<dyn FrameRx>,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------

struct ChanTx(Sender<Vec<u8>>);

impl FrameTx for ChanTx {
    fn send(&mut self, frame: &[u8]) -> Result<(), FlareError> {
        self.0
            .send(frame.to_vec())
            .map_err(|_| FlareError::Transport("in-proc peer disconnected".into()))
    }
}

struct ChanRx(Receiver<Vec<u8>>);

impl FrameRx for ChanRx {
    fn recv(&mut self, timeout: Duration) -> Result<Vec<u8>, FlareError> {
        match self.0.recv_timeout(timeout) {
            Ok(f) => Ok(f),
            Err(RecvTimeoutError::Timeout) => Err(FlareError::Timeout),
            Err(RecvTimeoutError::Disconnected) => {
                Err(FlareError::Transport("in-proc peer disconnected".into()))
            }
        }
    }
}

/// Creates a connected in-process pair (simulator mode). Channels are
/// bounded to apply backpressure like a real socket.
pub fn in_proc_pair() -> (Connection, Connection) {
    let (a_tx, b_rx) = bounded::<Vec<u8>>(256);
    let (b_tx, a_rx) = bounded::<Vec<u8>>(256);
    (
        Connection {
            tx: Box::new(ChanTx(a_tx)),
            rx: Box::new(ChanRx(a_rx)),
        },
        Connection {
            tx: Box::new(ChanTx(b_tx)),
            rx: Box::new(ChanRx(b_rx)),
        },
    )
}

// ---------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------

/// Default write deadline for TCP streams: a peer that stops draining its
/// socket must surface as [`FlareError::Timeout`] instead of blocking a
/// server handler thread forever.
pub const TCP_WRITE_TIMEOUT: Duration = Duration::from_secs(30);

struct TcpTx(TcpStream);

impl FrameTx for TcpTx {
    fn send(&mut self, frame: &[u8]) -> Result<(), FlareError> {
        let len = u32::try_from(frame.len())
            .map_err(|_| FlareError::Transport("frame exceeds u32 length".into()))?;
        match self
            .0
            .write_all(&len.to_le_bytes())
            .and_then(|_| self.0.write_all(frame))
        {
            Ok(()) => Ok(()),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err(FlareError::Timeout)
            }
            Err(e) => Err(FlareError::Transport(format!("tcp send: {e}"))),
        }
    }
}

struct TcpRx(TcpStream);

impl FrameRx for TcpRx {
    fn recv(&mut self, timeout: Duration) -> Result<Vec<u8>, FlareError> {
        self.0
            .set_read_timeout(Some(timeout))
            .map_err(|e| FlareError::Transport(format!("set timeout: {e}")))?;
        let mut len_bytes = [0u8; 4];
        match self.0.read_exact(&mut len_bytes) {
            Ok(()) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(FlareError::Timeout)
            }
            Err(e) => return Err(FlareError::Transport(format!("tcp recv: {e}"))),
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > (1 << 30) {
            return Err(FlareError::Codec(format!(
                "tcp frame length {len} too large"
            )));
        }
        let mut buf = vec![0u8; len];
        match self.0.read_exact(&mut buf) {
            Ok(()) => Ok(buf),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // A frame header arrived but the body stalled past the
                // deadline: the stream is desynchronized, but the caller's
                // thread is free to give up instead of hanging.
                Err(FlareError::Timeout)
            }
            Err(e) => Err(FlareError::Transport(format!("tcp recv body: {e}"))),
        }
    }
}

/// The NVFlare-equivalent "real deployment" transport over TCP.
#[derive(Debug)]
pub struct TcpTransport;

impl TcpTransport {
    /// Connects to a listening server, returning a split connection.
    ///
    /// # Errors
    ///
    /// [`FlareError::Transport`] on connect/clone failure.
    pub fn connect(addr: &str) -> Result<Connection, FlareError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| FlareError::Transport(format!("connect {addr}: {e}")))?;
        Self::from_stream(stream)
    }

    /// Wraps an accepted stream into a split connection with the default
    /// [`TCP_WRITE_TIMEOUT`] so a dead peer cannot wedge a sender thread.
    ///
    /// # Errors
    ///
    /// [`FlareError::Transport`] if the stream cannot be duplicated.
    pub fn from_stream(stream: TcpStream) -> Result<Connection, FlareError> {
        Self::from_stream_with_write_timeout(stream, TCP_WRITE_TIMEOUT)
    }

    /// [`TcpTransport::from_stream`] with an explicit write deadline
    /// (tests use short deadlines to prove sends cannot block forever).
    ///
    /// # Errors
    ///
    /// [`FlareError::Transport`] if the stream cannot be duplicated.
    pub fn from_stream_with_write_timeout(
        stream: TcpStream,
        write_timeout: Duration,
    ) -> Result<Connection, FlareError> {
        stream
            .set_nodelay(true)
            .map_err(|e| FlareError::Transport(format!("nodelay: {e}")))?;
        stream
            .set_write_timeout(Some(write_timeout))
            .map_err(|e| FlareError::Transport(format!("set write timeout: {e}")))?;
        let rx = stream
            .try_clone()
            .map_err(|e| FlareError::Transport(format!("clone stream: {e}")))?;
        Ok(Connection {
            tx: Box::new(TcpTx(stream)),
            rx: Box::new(TcpRx(rx)),
        })
    }

    /// Binds a listener on `addr` (use port 0 for ephemeral).
    ///
    /// # Errors
    ///
    /// [`FlareError::Io`] on bind failure.
    pub fn listen(addr: &str) -> Result<TcpListener, FlareError> {
        Ok(TcpListener::bind(addr)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn in_proc_roundtrip() {
        let (mut a, mut b) = in_proc_pair();
        a.tx.send(b"ping").unwrap();
        assert_eq!(b.rx.recv(Duration::from_millis(100)).unwrap(), b"ping");
        b.tx.send(b"pong").unwrap();
        assert_eq!(a.rx.recv(Duration::from_millis(100)).unwrap(), b"pong");
    }

    #[test]
    fn in_proc_timeout() {
        let (mut a, _b) = in_proc_pair();
        assert!(matches!(
            a.rx.recv(Duration::from_millis(20)),
            Err(FlareError::Timeout)
        ));
    }

    #[test]
    fn in_proc_disconnect_detected() {
        let (mut a, b) = in_proc_pair();
        drop(b);
        assert!(matches!(
            a.rx.recv(Duration::from_millis(20)),
            Err(FlareError::Transport(_))
        ));
        assert!(a.tx.send(b"x").is_err());
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = TcpTransport::listen("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = TcpTransport::from_stream(stream).unwrap();
            let got = conn.rx.recv(Duration::from_secs(2)).unwrap();
            conn.tx.send(&got).unwrap(); // echo
        });
        let mut client = TcpTransport::connect(&addr).unwrap();
        let frame: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        client.tx.send(&frame).unwrap();
        assert_eq!(client.rx.recv(Duration::from_secs(2)).unwrap(), frame);
        server.join().unwrap();
    }

    #[test]
    fn tcp_timeout() {
        let listener = TcpTransport::listen("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let _server = thread::spawn(move || {
            let (_stream, _) = listener.accept().unwrap();
            thread::sleep(Duration::from_millis(200));
        });
        let mut client = TcpTransport::connect(&addr).unwrap();
        assert!(matches!(
            client.rx.recv(Duration::from_millis(30)),
            Err(FlareError::Timeout)
        ));
    }

    #[test]
    fn tcp_write_times_out_instead_of_hanging() {
        let listener = TcpTransport::listen("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Accept but never read, so the kernel socket buffers fill up.
        let _server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            thread::sleep(Duration::from_secs(2));
            drop(stream);
        });
        let stream = TcpStream::connect(&addr).unwrap();
        let mut client =
            TcpTransport::from_stream_with_write_timeout(stream, Duration::from_millis(100))
                .unwrap();
        let frame = vec![0u8; 1 << 20];
        let mut saw_timeout = false;
        for _ in 0..64 {
            match client.tx.send(&frame) {
                Ok(()) => continue,
                Err(FlareError::Timeout) => {
                    saw_timeout = true;
                    break;
                }
                Err(e) => panic!("expected Timeout, got {e}"),
            }
        }
        assert!(saw_timeout, "64 MiB of sends never hit the write deadline");
    }

    #[test]
    fn tcp_empty_frame() {
        let listener = TcpTransport::listen("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = TcpTransport::from_stream(stream).unwrap();
            conn.rx.recv(Duration::from_secs(2)).unwrap()
        });
        let mut client = TcpTransport::connect(&addr).unwrap();
        client.tx.send(b"").unwrap();
        assert_eq!(server.join().unwrap(), Vec::<u8>::new());
    }
}
