//! Admin/status API (NVFlare's admin-console equivalent).
//!
//! NVFlare deployments ship an admin client (`check_status`,
//! `list_clients`, `abort_job`, …). This module provides the same
//! introspection surface over a running workflow: a shared
//! [`RunStatus`] that the controller updates and any observer thread can
//! query, plus typed [`AdminCommand`]s with formatted replies.

use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Instant;

/// Lifecycle phase of a federated run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunPhase {
    /// Provisioned, waiting for client registrations.
    WaitingForClients,
    /// A training round is in flight.
    Training {
        /// Current round (0-based).
        round: u32,
        /// Total rounds.
        total: u32,
    },
    /// Aggregating / validating / persisting between rounds.
    Aggregating {
        /// Round being aggregated.
        round: u32,
    },
    /// Workflow finished successfully.
    Finished,
    /// Workflow aborted with an error.
    Aborted,
}

impl std::fmt::Display for RunPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunPhase::WaitingForClients => write!(f, "waiting_for_clients"),
            RunPhase::Training { round, total } => write!(f, "training round {round}/{total}"),
            RunPhase::Aggregating { round } => write!(f, "aggregating round {round}"),
            RunPhase::Finished => write!(f, "finished"),
            RunPhase::Aborted => write!(f, "aborted"),
        }
    }
}

#[derive(Debug)]
struct StatusInner {
    phase: RunPhase,
    clients: Vec<(String, bool)>,
    last_metric: Option<f64>,
    started: Instant,
}

/// Shared, thread-safe view of a run's live status.
///
/// Cheap to clone (it is an `Arc` handle); the workflow side calls the
/// `set_*` methods, observers call the getters or issue
/// [`AdminCommand`]s via [`RunStatus::execute`].
#[derive(Clone, Debug)]
pub struct RunStatus {
    inner: Arc<RwLock<StatusInner>>,
}

impl RunStatus {
    /// New status in the waiting phase.
    pub fn new() -> Self {
        RunStatus {
            inner: Arc::new(RwLock::new(StatusInner {
                phase: RunPhase::WaitingForClients,
                clients: Vec::new(),
                last_metric: None,
                started: Instant::now(),
            })),
        }
    }

    /// Updates the lifecycle phase.
    pub fn set_phase(&self, phase: RunPhase) {
        self.inner.write().phase = phase;
    }

    /// Registers or updates a client's liveness.
    pub fn set_client(&self, site: &str, alive: bool) {
        let mut inner = self.inner.write();
        if let Some(c) = inner.clients.iter_mut().find(|(s, _)| s == site) {
            c.1 = alive;
        } else {
            inner.clients.push((site.to_string(), alive));
        }
    }

    /// Records the latest global validation metric.
    pub fn set_metric(&self, metric: f64) {
        self.inner.write().last_metric = Some(metric);
    }

    /// Current phase.
    pub fn phase(&self) -> RunPhase {
        self.inner.read().phase
    }

    /// `(site, alive)` pairs.
    pub fn clients(&self) -> Vec<(String, bool)> {
        self.inner.read().clients.clone()
    }

    /// Latest global metric, if any.
    pub fn last_metric(&self) -> Option<f64> {
        self.inner.read().last_metric
    }

    /// Executes an admin command, returning the formatted reply.
    pub fn execute(&self, cmd: AdminCommand) -> String {
        let inner = self.inner.read();
        match cmd {
            AdminCommand::CheckStatus => format!(
                "phase: {} | uptime: {:.1}s | last_metric: {}",
                inner.phase,
                inner.started.elapsed().as_secs_f64(),
                inner
                    .last_metric
                    .map(|m| format!("{m:.4}"))
                    .unwrap_or_else(|| "n/a".into()),
            ),
            AdminCommand::ListClients => {
                if inner.clients.is_empty() {
                    "no clients registered".to_string()
                } else {
                    inner
                        .clients
                        .iter()
                        .map(|(s, alive)| format!("{s}: {}", if *alive { "alive" } else { "dead" }))
                        .collect::<Vec<_>>()
                        .join("\n")
                }
            }
        }
    }
}

impl Default for RunStatus {
    fn default() -> Self {
        RunStatus::new()
    }
}

/// Admin-console commands (a subset of NVFlare's).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdminCommand {
    /// Server + workflow status summary.
    CheckStatus,
    /// Per-client liveness listing.
    ListClients,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_transitions_render() {
        let s = RunStatus::new();
        assert_eq!(s.phase(), RunPhase::WaitingForClients);
        s.set_phase(RunPhase::Training {
            round: 2,
            total: 10,
        });
        assert!(s
            .execute(AdminCommand::CheckStatus)
            .contains("training round 2/10"));
        s.set_phase(RunPhase::Finished);
        assert_eq!(s.phase(), RunPhase::Finished);
    }

    #[test]
    fn client_listing() {
        let s = RunStatus::new();
        assert!(s.execute(AdminCommand::ListClients).contains("no clients"));
        s.set_client("site-1", true);
        s.set_client("site-2", true);
        s.set_client("site-2", false);
        let listing = s.execute(AdminCommand::ListClients);
        assert!(listing.contains("site-1: alive"));
        assert!(listing.contains("site-2: dead"));
        assert_eq!(s.clients().len(), 2);
    }

    #[test]
    fn metric_recorded() {
        let s = RunStatus::new();
        assert_eq!(s.last_metric(), None);
        s.set_metric(0.875);
        assert_eq!(s.last_metric(), Some(0.875));
        assert!(s.execute(AdminCommand::CheckStatus).contains("0.8750"));
    }

    #[test]
    fn clones_share_state() {
        let s = RunStatus::new();
        let s2 = s.clone();
        s2.set_metric(1.0);
        assert_eq!(s.last_metric(), Some(1.0));
    }
}
