//! Admin/status API (NVFlare's admin-console equivalent).
//!
//! NVFlare deployments ship an admin client (`check_status`,
//! `list_clients`, `abort_job`, …). This module provides the same
//! introspection surface over a running workflow at two levels:
//!
//! * In-process: a shared [`RunStatus`] that the controller updates and
//!   any observer thread can query, plus typed [`AdminCommand`]s with
//!   formatted replies.
//! * Over the wire: [`AdminServer`], a dependency-free HTTP/1.1
//!   endpoint fronting a [`crate::jobs::JobRuntime`] — submit a job
//!   config, list jobs with phase/round/metrics, abort a job, and
//!   stream live metric snapshots as NDJSON. The HTTP layer is built
//!   directly on [`std::net::TcpListener`] (the workspace vendors no
//!   web framework), speaks `Connection: close` semantics, and
//!   serializes with the in-tree [`clinfl_obs::json`] writer.
//!
//! | Route | Effect |
//! |---|---|
//! | `GET /healthz` | liveness probe |
//! | `POST /jobs` | submit a `key = value` job config body |
//! | `GET /jobs` | list all jobs |
//! | `GET /jobs/{id}` | one job's state/phase/metric |
//! | `POST /jobs/{id}/abort` | request an abort |
//! | `GET /jobs/{id}/metrics` | the job's scoped metrics snapshot |
//! | `GET /jobs/{id}/metrics/stream` | NDJSON snapshots until terminal |
//! | `GET /metrics` | process-global metrics snapshot |

use crate::job::JobConfig;
use crate::jobs::{JobInfo, JobRuntime, JobSpec};
use crate::FlareError;
use clinfl_obs::json::Value;
use parking_lot::RwLock;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Lifecycle phase of a federated run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunPhase {
    /// Provisioned, waiting for client registrations.
    WaitingForClients,
    /// A training round is in flight.
    Training {
        /// Current round (0-based).
        round: u32,
        /// Total rounds.
        total: u32,
    },
    /// Aggregating / validating / persisting between rounds.
    Aggregating {
        /// Round being aggregated.
        round: u32,
    },
    /// Workflow finished successfully.
    Finished,
    /// Workflow aborted with an error.
    Aborted,
}

impl std::fmt::Display for RunPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunPhase::WaitingForClients => write!(f, "waiting_for_clients"),
            RunPhase::Training { round, total } => write!(f, "training round {round}/{total}"),
            RunPhase::Aggregating { round } => write!(f, "aggregating round {round}"),
            RunPhase::Finished => write!(f, "finished"),
            RunPhase::Aborted => write!(f, "aborted"),
        }
    }
}

#[derive(Debug)]
struct StatusInner {
    phase: RunPhase,
    clients: Vec<(String, bool)>,
    last_metric: Option<f64>,
    started: Instant,
}

/// Shared, thread-safe view of a run's live status.
///
/// Cheap to clone (it is an `Arc` handle); the workflow side calls the
/// `set_*` methods, observers call the getters or issue
/// [`AdminCommand`]s via [`RunStatus::execute`].
#[derive(Clone, Debug)]
pub struct RunStatus {
    inner: Arc<RwLock<StatusInner>>,
}

impl RunStatus {
    /// New status in the waiting phase.
    pub fn new() -> Self {
        RunStatus {
            inner: Arc::new(RwLock::new(StatusInner {
                phase: RunPhase::WaitingForClients,
                clients: Vec::new(),
                last_metric: None,
                started: Instant::now(),
            })),
        }
    }

    /// Updates the lifecycle phase.
    pub fn set_phase(&self, phase: RunPhase) {
        self.inner.write().phase = phase;
    }

    /// Registers or updates a client's liveness.
    pub fn set_client(&self, site: &str, alive: bool) {
        let mut inner = self.inner.write();
        if let Some(c) = inner.clients.iter_mut().find(|(s, _)| s == site) {
            c.1 = alive;
        } else {
            inner.clients.push((site.to_string(), alive));
        }
    }

    /// Records the latest global validation metric.
    pub fn set_metric(&self, metric: f64) {
        self.inner.write().last_metric = Some(metric);
    }

    /// Current phase.
    pub fn phase(&self) -> RunPhase {
        self.inner.read().phase
    }

    /// `(site, alive)` pairs.
    pub fn clients(&self) -> Vec<(String, bool)> {
        self.inner.read().clients.clone()
    }

    /// Latest global metric, if any.
    pub fn last_metric(&self) -> Option<f64> {
        self.inner.read().last_metric
    }

    /// Executes an admin command, returning the formatted reply.
    pub fn execute(&self, cmd: AdminCommand) -> String {
        let inner = self.inner.read();
        match cmd {
            AdminCommand::CheckStatus => format!(
                "phase: {} | uptime: {:.1}s | last_metric: {}",
                inner.phase,
                inner.started.elapsed().as_secs_f64(),
                inner
                    .last_metric
                    .map(|m| format!("{m:.4}"))
                    .unwrap_or_else(|| "n/a".into()),
            ),
            AdminCommand::ListClients => {
                if inner.clients.is_empty() {
                    "no clients registered".to_string()
                } else {
                    inner
                        .clients
                        .iter()
                        .map(|(s, alive)| format!("{s}: {}", if *alive { "alive" } else { "dead" }))
                        .collect::<Vec<_>>()
                        .join("\n")
                }
            }
        }
    }
}

impl Default for RunStatus {
    fn default() -> Self {
        RunStatus::new()
    }
}

/// Admin-console commands (a subset of NVFlare's).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdminCommand {
    /// Server + workflow status summary.
    CheckStatus,
    /// Per-client liveness listing.
    ListClients,
}

// ======================================================================
// HTTP admin endpoint
// ======================================================================

/// Maps a parsed [`JobConfig`] to a launchable [`JobSpec`]: the host
/// decides what `model = …` means (executors, initial weights,
/// checkpoint dirs). Returning an error turns into an HTTP 400.
pub type JobFactory = Box<dyn Fn(JobConfig) -> Result<JobSpec, FlareError> + Send + Sync>;

/// A served admin/metrics API over a [`JobRuntime`].
///
/// Binds a [`TcpListener`], then accepts on a background thread with
/// one short-lived handler thread per connection (every response sends
/// `Connection: close`, so handlers never linger beyond one exchange —
/// except the NDJSON metrics stream, which ticks until its job reaches
/// a terminal state). [`AdminServer::stop`] wakes the accept loop and
/// the stream handlers promptly.
pub struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for AdminServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdminServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl AdminServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving `runtime` through `factory`.
    ///
    /// # Errors
    ///
    /// [`FlareError::Io`] if the bind fails.
    pub fn bind(
        addr: &str,
        runtime: JobRuntime,
        factory: JobFactory,
    ) -> Result<AdminServer, FlareError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking accept so `stop` lands within one poll tick even
        // with no traffic.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            let shared = Arc::new((runtime, factory));
            let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let shared = shared.clone();
                        let stop = stop2.clone();
                        handlers.push(std::thread::spawn(move || {
                            let _ = handle_connection(stream, &shared.0, &shared.1, &stop);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => break,
                }
                handlers.retain(|h| !h.is_finished());
            }
            for h in handlers {
                let _ = h.join();
            }
        });
        Ok(AdminServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (port resolved if `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the accept loop and any streaming handlers to wind down.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Stops (if not already) and joins the accept thread.
    pub fn join(mut self) {
        self.stop();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One parsed HTTP request: method, path, and body.
struct HttpRequest {
    method: String,
    path: String,
    body: String,
}

/// Reads one HTTP/1.1 request (start line, headers, `Content-Length`
/// body) from `stream`.
fn read_request(stream: &mut TcpStream) -> std::io::Result<HttpRequest> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    // A job config body is small; refuse anything absurd outright.
    let mut body = vec![0u8; content_length.min(1 << 20)];
    reader.read_exact(&mut body)?;
    Ok(HttpRequest {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

fn json_response(stream: &mut TcpStream, status: u16, value: &Value) -> std::io::Result<()> {
    write_response(stream, status, "application/json", &value.to_json())
}

fn error_response(stream: &mut TcpStream, status: u16, msg: &str) -> std::io::Result<()> {
    json_response(
        stream,
        status,
        &Value::object(vec![("error", Value::Str(msg.to_string()))]),
    )
}

/// A [`JobInfo`] as the wire JSON object.
fn job_to_json(info: &JobInfo) -> Value {
    Value::object(vec![
        ("id", Value::UInt(info.id)),
        ("name", Value::Str(info.name.clone())),
        ("state", Value::Str(info.state.to_string())),
        ("phase", Value::Str(info.phase.clone())),
        (
            "last_metric",
            info.last_metric.map(Value::Float).unwrap_or(Value::Null),
        ),
        ("clients", Value::UInt(info.clients as u64)),
        ("rounds", Value::UInt(u64::from(info.rounds))),
        (
            "error",
            info.error.clone().map(Value::Str).unwrap_or(Value::Null),
        ),
    ])
}

/// Routes one request. `stop` lets long-lived metric streams wind down
/// with the server.
fn handle_connection(
    mut stream: TcpStream,
    runtime: &JobRuntime,
    factory: &JobFactory,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let req = read_request(&mut stream)?;
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => json_response(
            &mut stream,
            200,
            &Value::object(vec![("ok", Value::Bool(true))]),
        ),
        ("POST", ["jobs"]) => {
            let config = match JobConfig::parse(&req.body) {
                Ok(c) => c,
                Err(e) => return error_response(&mut stream, 400, &e.to_string()),
            };
            let spec = match factory(config) {
                Ok(s) => s,
                Err(e) => return error_response(&mut stream, 400, &e.to_string()),
            };
            let id = runtime.submit(spec);
            let info = runtime.info(id).expect("job just submitted");
            json_response(&mut stream, 201, &job_to_json(&info))
        }
        ("GET", ["jobs"]) => {
            let jobs: Vec<Value> = runtime.list().iter().map(job_to_json).collect();
            json_response(
                &mut stream,
                200,
                &Value::object(vec![("jobs", Value::Array(jobs))]),
            )
        }
        ("GET", ["jobs", id]) => match parse_id(id).and_then(|id| runtime.info(id)) {
            Some(info) => json_response(&mut stream, 200, &job_to_json(&info)),
            None => error_response(&mut stream, 404, "no such job"),
        },
        ("POST", ["jobs", id, "abort"]) => match parse_id(id) {
            Some(id) if runtime.info(id).is_some() => {
                let aborted = runtime.abort(id);
                json_response(
                    &mut stream,
                    200,
                    &Value::object(vec![
                        ("id", Value::UInt(id)),
                        ("aborted", Value::Bool(aborted)),
                    ]),
                )
            }
            _ => error_response(&mut stream, 404, "no such job"),
        },
        ("GET", ["jobs", id, "metrics"]) => {
            match parse_id(id).and_then(|id| runtime.registry(id)) {
                Some(reg) => json_response(&mut stream, 200, &reg.snapshot().to_value()),
                None => error_response(&mut stream, 404, "no such job"),
            }
        }
        ("GET", ["jobs", id, "metrics", "stream"]) => {
            let Some(id) = parse_id(id).filter(|id| runtime.info(*id).is_some()) else {
                return error_response(&mut stream, 404, "no such job");
            };
            stream_metrics(&mut stream, runtime, id, stop)
        }
        ("GET", ["metrics"]) => json_response(&mut stream, 200, &clinfl_obs::snapshot().to_value()),
        (_, ["healthz" | "jobs" | "metrics", ..]) => {
            error_response(&mut stream, 405, "method not allowed")
        }
        _ => error_response(&mut stream, 404, "no such route"),
    }
}

fn parse_id(s: &str) -> Option<u64> {
    s.parse().ok()
}

/// Streams `{"job":…,"metrics":…}` NDJSON lines every ~200 ms until the
/// job reaches a terminal state (one final line included) or the server
/// stops. Chunked transfer so `curl` renders lines as they arrive.
fn stream_metrics(
    stream: &mut TcpStream,
    runtime: &JobRuntime,
    id: u64,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )?;
    while let Some(info) = runtime.info(id) {
        let metrics = runtime
            .registry(id)
            .map(|r| r.snapshot().to_value())
            .unwrap_or(Value::Null);
        let line = Value::object(vec![("job", job_to_json(&info)), ("metrics", metrics)]).to_json();
        let chunk = format!("{line}\n");
        write!(stream, "{:x}\r\n{chunk}\r\n", chunk.len())?;
        stream.flush()?;
        if info.state.is_terminal() || stop.load(Ordering::Relaxed) {
            break;
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    // Terminating zero-length chunk.
    write!(stream, "0\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_transitions_render() {
        let s = RunStatus::new();
        assert_eq!(s.phase(), RunPhase::WaitingForClients);
        s.set_phase(RunPhase::Training {
            round: 2,
            total: 10,
        });
        assert!(s
            .execute(AdminCommand::CheckStatus)
            .contains("training round 2/10"));
        s.set_phase(RunPhase::Finished);
        assert_eq!(s.phase(), RunPhase::Finished);
    }

    #[test]
    fn client_listing() {
        let s = RunStatus::new();
        assert!(s.execute(AdminCommand::ListClients).contains("no clients"));
        s.set_client("site-1", true);
        s.set_client("site-2", true);
        s.set_client("site-2", false);
        let listing = s.execute(AdminCommand::ListClients);
        assert!(listing.contains("site-1: alive"));
        assert!(listing.contains("site-2: dead"));
        assert_eq!(s.clients().len(), 2);
    }

    #[test]
    fn metric_recorded() {
        let s = RunStatus::new();
        assert_eq!(s.last_metric(), None);
        s.set_metric(0.875);
        assert_eq!(s.last_metric(), Some(0.875));
        assert!(s.execute(AdminCommand::CheckStatus).contains("0.8750"));
    }

    #[test]
    fn clones_share_state() {
        let s = RunStatus::new();
        let s2 = s.clone();
        s2.set_metric(1.0);
        assert_eq!(s.last_metric(), Some(1.0));
    }

    // === HTTP endpoint ===================================================

    use crate::dxo::{WeightTensor, Weights};
    use crate::executor::ArithmeticExecutor;

    fn test_factory() -> JobFactory {
        Box::new(|config: JobConfig| {
            let mut w = Weights::new();
            w.insert("p".into(), WeightTensor::new(vec![2], vec![0.0, 0.0]));
            Ok(JobSpec {
                seed: config.seed.unwrap_or(1),
                config,
                initial: w,
                make_executor: Box::new(|i, _| {
                    Box::new(ArithmeticExecutor {
                        delta: (i + 1) as f32,
                        n_examples: 10,
                    })
                }),
                checkpoint_dir: None,
            })
        })
    }

    /// Minimal HTTP/1.1 client: one request, `Connection: close`,
    /// returns `(status, body)`. Reads to EOF, so chunked streams come
    /// back whole.
    fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: clinfl\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn http_api_submit_list_metrics_abort() {
        let runtime = JobRuntime::new(2);
        let server = AdminServer::bind("127.0.0.1:0", runtime.clone(), test_factory()).unwrap();
        let addr = server.local_addr();

        let (status, body) = http(addr, "GET", "/healthz", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"ok\":true"));

        let (status, body) = http(
            addr,
            "POST",
            "/jobs",
            "name = alpha\nrounds = 2\nclients = 2\n",
        );
        assert_eq!(status, 201, "{body}");
        let submitted = Value::parse(&body).unwrap();
        let id = submitted.get("id").and_then(Value::as_u64).unwrap();
        assert_eq!(submitted.get("name").and_then(Value::as_str), Some("alpha"));

        assert_eq!(
            runtime.wait(id, std::time::Duration::from_secs(30)),
            Some(crate::jobs::JobState::Finished)
        );

        let (status, body) = http(addr, "GET", "/jobs", "");
        assert_eq!(status, 200);
        let listing = Value::parse(&body).unwrap();
        assert_eq!(
            listing.get("jobs").and_then(Value::as_array).unwrap().len(),
            1
        );

        let (status, body) = http(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200);
        assert!(body.contains("\"state\":\"finished\""), "{body}");

        let (status, body) = http(addr, "GET", &format!("/jobs/{id}/metrics"), "");
        assert_eq!(status, 200);
        let snap = Value::parse(&body).unwrap();
        assert_eq!(
            snap.get("counters")
                .and_then(|c| c.get("flare.round.count"))
                .and_then(Value::as_u64),
            Some(2)
        );

        // Terminal job: abort is acknowledged but refused.
        let (status, body) = http(addr, "POST", &format!("/jobs/{id}/abort"), "");
        assert_eq!(status, 200);
        assert!(body.contains("\"aborted\":false"));

        // Unknowns and wrong methods.
        assert_eq!(http(addr, "GET", "/jobs/999", "").0, 404);
        assert_eq!(http(addr, "DELETE", "/jobs", "").0, 405);
        assert_eq!(http(addr, "GET", "/nope", "").0, 404);
        let (status, body) = http(addr, "POST", "/jobs", "rounds = nope\n");
        assert_eq!(status, 400);
        assert!(body.contains("invalid rounds"), "{body}");

        server.join();
        runtime.shutdown();
    }

    #[test]
    fn http_metrics_stream_follows_job_to_terminal() {
        let runtime = JobRuntime::new(2);
        let server = AdminServer::bind("127.0.0.1:0", runtime.clone(), test_factory()).unwrap();
        let addr = server.local_addr();
        let (status, body) = http(addr, "POST", "/jobs", "name = s\nrounds = 2\nclients = 2\n");
        assert_eq!(status, 201, "{body}");
        let id = Value::parse(&body)
            .unwrap()
            .get("id")
            .and_then(Value::as_u64)
            .unwrap();
        // The stream blocks until the job is terminal, then closes; the
        // last line must carry the terminal state.
        let (status, body) = http(addr, "GET", &format!("/jobs/{id}/metrics/stream"), "");
        assert_eq!(status, 200);
        let last = body
            .lines()
            .rfind(|l| l.contains("\"job\""))
            .expect("at least one NDJSON line");
        let parsed = Value::parse(last).unwrap();
        assert_eq!(
            parsed
                .get("job")
                .and_then(|j| j.get("state"))
                .and_then(Value::as_str),
            Some("finished")
        );
        server.join();
        runtime.shutdown();
    }
}
