//! Multi-tenant job runtime: N concurrent federations over one process.
//!
//! NVFlare servers host many *jobs*: an operator submits a job config,
//! the scheduler provisions it a private federation when a slot frees
//! up, and each job's rounds, metrics, and checkpoints stay isolated
//! from its neighbors. This module is that layer for `clinfl-flare`:
//!
//! * [`JobRuntime`] owns the lifecycle ([`JobState`]: submitted →
//!   scheduled → running → finished / aborted / failed) and caps how
//!   many federations train at once (`max_concurrent`); excess jobs
//!   queue in submission order.
//! * Each running job gets its own [`crate::server::FlServer`] with an
//!   in-proc client fleet, its own [`clinfl_obs::Registry`] (so
//!   per-job metric namespaces never cross), its own checkpoint
//!   directory guarded by [`crate::persistor::FilePersistor`]'s
//!   exclusive lock, and its own obs artifact tagged `job<id>-<name>`.
//! * [`JobRuntime::abort`] flips the job's abort flag; the controller's
//!   cancellable gathers notice within one ~50 ms wait slice, broadcast
//!   `Finish` so client sessions wind down promptly, and the job lands
//!   in [`JobState::Aborted`] without disturbing its neighbors.
//!
//! Compute stays fair across tenants for free: every client takes a
//! `clinfl_tensor` pool permit around train/validate, so concurrent
//! jobs share the one worker pool instead of oversubscribing cores.

use crate::client::{ClientBehavior, FlClient};
use crate::controller::{ScatterAndGather, WorkflowResult};
use crate::dxo::Weights;
use crate::executor::Executor;
use crate::job::JobConfig;
use crate::log::EventLog;
use crate::persistor::{FilePersistor, InMemoryPersistor, Persistor};
use crate::provision::Project;
use crate::server::FlServer;
use crate::transport::in_proc_pair;
use crate::FlareError;
use clinfl_obs::Registry;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Lifecycle state of a submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a free slot.
    Submitted,
    /// Slot acquired, federation being stood up.
    Scheduled,
    /// Rounds in flight.
    Running,
    /// Completed all rounds.
    Finished,
    /// Stopped by an operator abort.
    Aborted,
    /// Stopped by an error (message in [`JobInfo::error`]).
    Failed,
}

impl JobState {
    /// Whether the job can make no further progress.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Finished | JobState::Aborted | JobState::Failed
        )
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JobState::Submitted => "submitted",
            JobState::Scheduled => "scheduled",
            JobState::Running => "running",
            JobState::Finished => "finished",
            JobState::Aborted => "aborted",
            JobState::Failed => "failed",
        };
        write!(f, "{s}")
    }
}

/// Per-site executor factory: called with (site index, site name),
/// returns the boxed trainer that moves onto that site's thread.
pub type ExecutorFactory = Box<dyn FnMut(usize, &str) -> Box<dyn Executor> + Send>;

/// Everything needed to launch one federation: the parsed config plus
/// the host-side pieces a [`JobConfig`] cannot carry (initial weights
/// and the executor factory).
pub struct JobSpec {
    /// Parsed job description (rounds, clients, aggregator, …).
    pub config: JobConfig,
    /// Run seed; [`JobConfig::seed`] overrides it when set.
    pub seed: u64,
    /// Initial global weights scattered at round 0.
    pub initial: Weights,
    /// Called once per site (index, site name) to build its local
    /// trainer; the executor moves onto that site's thread.
    pub make_executor: ExecutorFactory,
    /// Checkpoint directory for this job, or `None` for in-memory
    /// persistence. Two jobs must not share one — the
    /// [`FilePersistor`] lock file fails the second job loudly.
    pub checkpoint_dir: Option<PathBuf>,
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("config", &self.config)
            .field("seed", &self.seed)
            .field("checkpoint_dir", &self.checkpoint_dir)
            .finish_non_exhaustive()
    }
}

/// Point-in-time public view of one job, as listed by the admin API.
#[derive(Clone, Debug)]
pub struct JobInfo {
    /// Runtime-assigned id (dense, starting at 1).
    pub id: u64,
    /// Job name from the config.
    pub name: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Human-readable workflow phase (`training round 3/10`, …).
    pub phase: String,
    /// Latest global validation metric, if any.
    pub last_metric: Option<f64>,
    /// Client sites provisioned for the job.
    pub clients: usize,
    /// Total configured rounds.
    pub rounds: u32,
    /// Error display when `state == Failed`.
    pub error: Option<String>,
}

/// One job's bookkeeping inside the runtime.
struct JobEntry {
    name: String,
    clients: usize,
    rounds: u32,
    state: JobState,
    status: crate::admin::RunStatus,
    obs: Registry,
    abort: Arc<AtomicBool>,
    result: Option<WorkflowResult>,
    error: Option<String>,
    handle: Option<std::thread::JoinHandle<()>>,
}

struct RuntimeInner {
    jobs: Mutex<BTreeMap<u64, JobEntry>>,
    next_id: AtomicU64,
    /// Free run slots; jobs past the cap queue on the condvar.
    slots: Mutex<usize>,
    slot_freed: Condvar,
    log: EventLog,
}

impl RuntimeInner {
    /// Blocks until a run slot frees up or the job is aborted while
    /// still queued; returns `false` on abort.
    fn acquire_slot(&self, abort: &AtomicBool) -> bool {
        let mut slots = self.slots.lock().expect("slot lock poisoned");
        loop {
            if abort.load(Ordering::Relaxed) {
                return false;
            }
            if *slots > 0 {
                *slots -= 1;
                return true;
            }
            // Bounded wait so a queued job still notices an abort.
            let (guard, _) = self
                .slot_freed
                .wait_timeout(slots, Duration::from_millis(50))
                .expect("slot lock poisoned");
            slots = guard;
        }
    }

    fn release_slot(&self) {
        *self.slots.lock().expect("slot lock poisoned") += 1;
        self.slot_freed.notify_one();
    }

    fn set_state(&self, id: u64, state: JobState) {
        if let Some(e) = self.jobs.lock().expect("jobs lock poisoned").get_mut(&id) {
            e.state = state;
        }
    }
}

/// Schedules and supervises concurrent federation jobs; see the module
/// docs for the isolation guarantees. Cheap to clone (an `Arc` handle),
/// so the admin HTTP server and the host can share one runtime.
#[derive(Clone)]
pub struct JobRuntime {
    inner: Arc<RuntimeInner>,
}

impl std::fmt::Debug for JobRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRuntime").finish_non_exhaustive()
    }
}

impl JobRuntime {
    /// New runtime allowing at most `max_concurrent` jobs to train at
    /// once (clamped to ≥ 1); further submissions queue in order.
    pub fn new(max_concurrent: usize) -> Self {
        JobRuntime {
            inner: Arc::new(RuntimeInner {
                jobs: Mutex::new(BTreeMap::new()),
                next_id: AtomicU64::new(1),
                slots: Mutex::new(max_concurrent.max(1)),
                slot_freed: Condvar::new(),
                log: EventLog::new(),
            }),
        }
    }

    /// The runtime's event log (shared by all jobs' servers).
    pub fn log(&self) -> &EventLog {
        &self.inner.log
    }

    /// Submits a job and returns its id immediately; the job trains on
    /// a background thread once a slot frees up.
    pub fn submit(&self, spec: JobSpec) -> u64 {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let status = crate::admin::RunStatus::new();
        let obs = Registry::new();
        let abort = Arc::new(AtomicBool::new(false));
        let entry = JobEntry {
            name: spec.config.name.clone(),
            clients: spec.config.clients,
            rounds: spec.config.rounds,
            state: JobState::Submitted,
            status: status.clone(),
            obs: obs.clone(),
            abort: abort.clone(),
            result: None,
            error: None,
            handle: None,
        };
        self.inner
            .jobs
            .lock()
            .expect("jobs lock poisoned")
            .insert(id, entry);
        self.inner.log.info(
            "JobRuntime",
            format!("job {id} ({}) submitted", spec.config.name),
        );
        let inner = self.inner.clone();
        let handle = std::thread::spawn(move || {
            if !inner.acquire_slot(&abort) {
                inner.set_state(id, JobState::Aborted);
                inner
                    .log
                    .info("JobRuntime", format!("job {id} aborted while queued"));
                return;
            }
            inner.set_state(id, JobState::Scheduled);
            let outcome = run_job(id, spec, &obs, &status, &abort, &inner);
            inner.release_slot();
            let mut jobs = inner.jobs.lock().expect("jobs lock poisoned");
            let entry = jobs.get_mut(&id).expect("job entry vanished");
            match outcome {
                Ok(result) => {
                    entry.state = JobState::Finished;
                    entry.result = Some(result);
                }
                Err(FlareError::Aborted) => entry.state = JobState::Aborted,
                Err(e) => {
                    entry.state = JobState::Failed;
                    entry.error = Some(e.to_string());
                }
            }
        });
        if let Some(e) = self
            .inner
            .jobs
            .lock()
            .expect("jobs lock poisoned")
            .get_mut(&id)
        {
            e.handle = Some(handle);
        }
        id
    }

    /// Requests an abort. Queued jobs leave the queue; running jobs
    /// stop at the controller's next cancellation point (≤ one ~50 ms
    /// wait slice). Returns `false` for unknown ids or jobs already in
    /// a terminal state.
    pub fn abort(&self, id: u64) -> bool {
        let jobs = self.inner.jobs.lock().expect("jobs lock poisoned");
        match jobs.get(&id) {
            Some(e) if !e.state.is_terminal() => {
                e.abort.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Snapshot of every job in id (= submission) order.
    pub fn list(&self) -> Vec<JobInfo> {
        let jobs = self.inner.jobs.lock().expect("jobs lock poisoned");
        jobs.iter().map(|(id, e)| info_of(*id, e)).collect()
    }

    /// Snapshot of one job, or `None` for unknown ids.
    pub fn info(&self, id: u64) -> Option<JobInfo> {
        let jobs = self.inner.jobs.lock().expect("jobs lock poisoned");
        jobs.get(&id).map(|e| info_of(id, e))
    }

    /// The job's scoped metrics registry (its live snapshot only ever
    /// contains this job's counters), or `None` for unknown ids.
    pub fn registry(&self, id: u64) -> Option<Registry> {
        let jobs = self.inner.jobs.lock().expect("jobs lock poisoned");
        jobs.get(&id).map(|e| e.obs.clone())
    }

    /// The finished job's workflow result (final weights + round
    /// summaries); `None` while running or if it did not finish.
    pub fn result(&self, id: u64) -> Option<WorkflowResult> {
        let jobs = self.inner.jobs.lock().expect("jobs lock poisoned");
        jobs.get(&id).and_then(|e| e.result.clone())
    }

    /// Blocks until the job reaches a terminal state or `timeout`
    /// elapses; returns the state it last observed (`None` for unknown
    /// ids).
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        loop {
            let state = self.info(id)?.state;
            if state.is_terminal() || Instant::now() >= deadline {
                return Some(state);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Waits for every submitted job to reach a terminal state (used by
    /// hosts at shutdown). Joins the job threads, so the caller must
    /// not hold any runtime locks.
    pub fn join_all(&self) {
        let ids: Vec<u64> = {
            let jobs = self.inner.jobs.lock().expect("jobs lock poisoned");
            jobs.keys().copied().collect()
        };
        for id in ids {
            let handle = {
                let mut jobs = self.inner.jobs.lock().expect("jobs lock poisoned");
                jobs.get_mut(&id).and_then(|e| e.handle.take())
            };
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
    }

    /// Aborts every non-terminal job and joins all job threads.
    pub fn shutdown(&self) {
        for info in self.list() {
            if !info.state.is_terminal() {
                self.abort(info.id);
            }
        }
        self.join_all();
    }
}

fn info_of(id: u64, e: &JobEntry) -> JobInfo {
    JobInfo {
        id,
        name: e.name.clone(),
        state: e.state,
        phase: e.status.phase().to_string(),
        last_metric: e.status.last_metric(),
        clients: e.clients,
        rounds: e.rounds,
        error: e.error.clone(),
    }
}

/// Stands up and runs one job's private federation: provision →
/// register in-proc clients → ScatterAndGather → tear down. Everything
/// observable is scoped: the server, every client, and the controller
/// all record into the job's `obs` registry, and the obs artifact (when
/// observability is enabled) is tagged `job<id>-<name>`.
fn run_job(
    id: u64,
    mut spec: JobSpec,
    obs: &Registry,
    status: &crate::admin::RunStatus,
    abort: &Arc<AtomicBool>,
    inner: &RuntimeInner,
) -> Result<WorkflowResult, FlareError> {
    let log = inner.log.clone();
    let seed = spec.config.seed.unwrap_or(spec.seed);
    let n = spec.config.clients;
    let mut persistor: Box<dyn Persistor> = match &spec.checkpoint_dir {
        // The lock file inside `new()` is the multi-tenant guard: a
        // second job pointed at the same directory fails here, before
        // any client spawns.
        Some(dir) => Box::new(FilePersistor::new(dir)?.with_log(log.clone())),
        None => Box::new(InMemoryPersistor::new()),
    };
    if abort.load(Ordering::Relaxed) {
        return Err(FlareError::Aborted);
    }

    let project = Project::with_n_sites(format!("job-{id}"), n, seed);
    let provisioned = project.provision();
    let mut server = FlServer::new(provisioned.server.clone(), log.clone(), seed);
    server.set_registry(obs.clone());
    server.set_quorum(spec.config.min_clients, None);

    let mut client_threads = Vec::with_capacity(n);
    for (i, package) in provisioned.sites.iter().enumerate() {
        let (server_side, client_side) = in_proc_pair();
        server.serve_connection(server_side);
        let package = package.clone();
        let mut executor = (spec.make_executor)(i, &package.site_name);
        let clog = log.clone();
        let cobs = obs.clone();
        // Same derivation as the simulator, so a job run is
        // bit-identical to a solo simulator run under the same seed.
        let dh_secret = seed.wrapping_mul(0x9E3779B97F4A7C15) ^ (i as u64 + 1);
        client_threads.push(std::thread::spawn(move || -> Result<u32, FlareError> {
            let mut client = FlClient::register(client_side, &package, dh_secret, clog)?;
            client.set_registry(cobs);
            client.run(executor.as_mut(), ClientBehavior::default())
        }));
    }

    let joined = server.wait_for_clients(n, Duration::from_secs(30));
    if joined < n {
        log.warn(
            "JobRuntime",
            format!("job {id}: only {joined}/{n} clients registered"),
        );
    }

    inner.set_state(id, JobState::Running);
    log.info("JobRuntime", format!("job {id} running on {n} site(s)"));
    let sag = ScatterAndGather::new(spec.config.sag_config(), log.clone())
        .with_run_seed(seed)
        .with_registry(obs.clone())
        .with_status(status.clone())
        .with_abort(abort.clone());
    let workflow = sag.run(
        &mut server,
        spec.config.aggregator.build().as_ref(),
        persistor.as_mut(),
        spec.initial.clone(),
    );

    // Tear down exactly like the simulator: stop the server before
    // joining clients so dropped connections wake any stragglers.
    server.shutdown();
    server.disconnect_all();
    for t in client_threads {
        match t.join().expect("client thread panicked") {
            Ok(_) => {}
            Err(e) => log.warn("JobRuntime", format!("job {id}: client exited: {e}")),
        }
    }

    if clinfl_obs::enabled() {
        let run_name = format!("{}x{}-seed{seed}", n, spec.config.rounds);
        let tag = format!("job{id}-{}", spec.config.name);
        match obs.snapshot().write_artifact_tagged(&run_name, &tag) {
            Ok(path) => log.info(
                "JobRuntime",
                format!("job {id} metrics artifact: {}", path.display()),
            ),
            Err(e) => log.warn("JobRuntime", format!("job {id} artifact write failed: {e}")),
        }
    }
    workflow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dxo::WeightTensor;
    use crate::executor::ArithmeticExecutor;

    fn spec(name: &str, rounds: u32, clients: usize, seed: u64) -> JobSpec {
        let mut w = Weights::new();
        w.insert("p".into(), WeightTensor::new(vec![4], vec![0.0; 4]));
        JobSpec {
            config: JobConfig::parse(&format!(
                "name = {name}\nrounds = {rounds}\nclients = {clients}\nmin_clients = {clients}\n"
            ))
            .unwrap(),
            seed,
            initial: w,
            make_executor: Box::new(|i, _| {
                Box::new(ArithmeticExecutor {
                    delta: (i + 1) as f32,
                    n_examples: 10,
                })
            }),
            checkpoint_dir: None,
        }
    }

    #[test]
    fn single_job_runs_to_finished() {
        let rt = JobRuntime::new(2);
        let id = rt.submit(spec("solo", 3, 2, 7));
        assert_eq!(
            rt.wait(id, Duration::from_secs(30)),
            Some(JobState::Finished)
        );
        let info = rt.info(id).unwrap();
        assert_eq!(info.name, "solo");
        assert_eq!(info.phase, "finished");
        assert!(info.last_metric.is_some());
        let result = rt.result(id).unwrap();
        assert_eq!(result.rounds.len(), 3);
        // mean(1, 2) = 1.5 added per round over 3 rounds.
        assert_eq!(result.final_weights["p"].data, vec![4.5; 4]);
        rt.join_all();
    }

    #[test]
    fn queue_respects_max_concurrent() {
        // One slot: the second job must wait for the first to finish,
        // yet both complete.
        let rt = JobRuntime::new(1);
        let a = rt.submit(spec("first", 2, 2, 1));
        let b = rt.submit(spec("second", 2, 2, 2));
        assert_eq!(
            rt.wait(a, Duration::from_secs(30)),
            Some(JobState::Finished)
        );
        assert_eq!(
            rt.wait(b, Duration::from_secs(30)),
            Some(JobState::Finished)
        );
        rt.join_all();
    }

    /// Adds like [`ArithmeticExecutor`] but sleeps per task, so tests
    /// can catch a job mid-round.
    struct SlowExecutor(ArithmeticExecutor);

    impl Executor for SlowExecutor {
        fn train(&mut self, global: &Weights, ctx: &crate::executor::TaskContext) -> crate::Dxo {
            std::thread::sleep(Duration::from_millis(30));
            self.0.train(global, ctx)
        }
        fn validate(&mut self, global: &Weights, ctx: &crate::executor::TaskContext) -> f64 {
            self.0.validate(global, ctx)
        }
    }

    fn slow_spec(name: &str, rounds: u32, clients: usize, seed: u64) -> JobSpec {
        let mut s = spec(name, rounds, clients, seed);
        s.make_executor = Box::new(|i, _| {
            Box::new(SlowExecutor(ArithmeticExecutor {
                delta: (i + 1) as f32,
                n_examples: 10,
            }))
        });
        s
    }

    #[test]
    fn abort_while_queued_never_runs() {
        let rt = JobRuntime::new(1);
        let running = rt.submit(slow_spec("running", 200, 2, 1));
        let queued = rt.submit(slow_spec("queued", 200, 2, 2));
        assert!(rt.abort(queued));
        assert_eq!(
            rt.wait(queued, Duration::from_secs(10)),
            Some(JobState::Aborted)
        );
        assert!(rt.abort(running));
        assert_eq!(
            rt.wait(running, Duration::from_secs(10)),
            Some(JobState::Aborted)
        );
        rt.join_all();
        // A terminal job refuses further aborts.
        assert!(!rt.abort(running));
        assert!(!rt.abort(9999));
    }

    #[test]
    fn per_job_registries_do_not_cross() {
        let rt = JobRuntime::new(2);
        let a = rt.submit(spec("left", 2, 2, 5));
        let b = rt.submit(spec("right", 4, 2, 5));
        rt.wait(a, Duration::from_secs(30));
        rt.wait(b, Duration::from_secs(30));
        let ra = rt.registry(a).unwrap();
        let rb = rt.registry(b).unwrap();
        assert_eq!(ra.counter_value("flare.round.count"), 2);
        assert_eq!(rb.counter_value("flare.round.count"), 4);
        rt.join_all();
    }
}
