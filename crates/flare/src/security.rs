//! Session security: key agreement, stream encryption, authentication.
//!
//! # Security caveat — simulation grade only
//!
//! Real NVFlare provisions X.509 certificates and runs mutual-TLS between
//! server and clients. No TLS stack exists in the offline dependency set,
//! so this module implements the *shape* of that flow — ephemeral key
//! agreement at registration, then encrypt-and-MAC on every frame — with
//! textbook primitives over 64-bit groups and a xorshift keystream.
//! **It is not cryptographically secure** and exists so the runtime
//! exercises the same code paths (key exchange, sealed frames, tamper
//! rejection) that a production deployment would.

use crate::FlareError;

/// A safe-prime modulus (2^61 - 1, a Mersenne prime) for the toy
/// Diffie–Hellman group.
pub const DH_MODULUS: u64 = (1 << 61) - 1;
/// Group generator.
pub const DH_GENERATOR: u64 = 5;

/// Modular exponentiation `base^exp mod m` via square-and-multiply.
fn pow_mod(base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc: u128 = 1;
    let mut b: u128 = base as u128 % m as u128;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * b % m as u128;
        }
        b = b * b % m as u128;
        exp >>= 1;
    }
    acc as u64
}

/// One side's ephemeral Diffie–Hellman key pair.
#[derive(Clone, Copy, Debug)]
pub struct DhKeyPair {
    secret: u64,
    /// Public value `g^secret mod p`, sent in the registration exchange.
    pub public: u64,
}

impl DhKeyPair {
    /// Derives a key pair from secret entropy (callers pass an RNG draw;
    /// determinism in tests comes from seeding that RNG).
    pub fn from_secret(secret: u64) -> Self {
        let secret = secret % (DH_MODULUS - 2) + 1;
        DhKeyPair {
            secret,
            public: pow_mod(DH_GENERATOR, secret, DH_MODULUS),
        }
    }

    /// Computes the shared session key from the peer's public value.
    pub fn shared_key(&self, peer_public: u64) -> SessionKey {
        SessionKey(pow_mod(peer_public, self.secret, DH_MODULUS))
    }
}

/// The derived symmetric session key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionKey(u64);

/// xorshift64* keystream generator.
fn keystream(mut state: u64) -> impl FnMut() -> u8 {
    if state == 0 {
        state = 0x9E3779B97F4A7C15;
    }
    let mut buffer: u64 = 0;
    let mut left = 0u32;
    move || {
        if left == 0 {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            buffer = state.wrapping_mul(0x2545F4914F6CDD1D);
            left = 8;
        }
        let b = (buffer & 0xff) as u8;
        buffer >>= 8;
        left -= 1;
        b
    }
}

/// FNV-1a based MAC over key + nonce + data (again: structural stand-in,
/// not a real MAC).
fn mac(key: u64, nonce: u64, data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for chunk in [key.to_le_bytes(), nonce.to_le_bytes()] {
        for b in chunk {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
    for &b in data {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// An encrypt-and-authenticate channel over a shared [`SessionKey`].
///
/// Frames are `nonce (8) ‖ ciphertext ‖ mac (8)`; the nonce increments per
/// sealed frame so identical plaintexts never produce identical frames.
#[derive(Debug)]
pub struct SecureChannel {
    key: SessionKey,
    next_nonce: u64,
}

impl SecureChannel {
    /// Creates a channel; `nonce_base` separates the two directions
    /// (convention: client→server starts at 0, server→client at 2^32).
    pub fn new(key: SessionKey, nonce_base: u64) -> Self {
        SecureChannel {
            key,
            next_nonce: nonce_base,
        }
    }

    /// Encrypts and authenticates a plaintext frame.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        let mut out = Vec::with_capacity(plaintext.len() + 16);
        out.extend_from_slice(&nonce.to_le_bytes());
        let mut ks = keystream(self.key.0 ^ nonce.wrapping_mul(0x9E3779B97F4A7C15));
        out.extend(plaintext.iter().map(|&b| b ^ ks()));
        let tag = mac(self.key.0, nonce, &out[8..]);
        out.extend_from_slice(&tag.to_le_bytes());
        out
    }

    /// Verifies and decrypts a sealed frame.
    ///
    /// # Errors
    ///
    /// [`FlareError::AuthFailure`] when the MAC does not verify;
    /// [`FlareError::Codec`] when the frame is too short.
    pub fn open(&self, sealed: &[u8]) -> Result<Vec<u8>, FlareError> {
        if sealed.len() < 16 {
            return Err(FlareError::Codec("sealed frame too short".into()));
        }
        let nonce = u64::from_le_bytes(sealed[..8].try_into().expect("8 bytes"));
        let (body, tag_bytes) = sealed[8..].split_at(sealed.len() - 16);
        let tag = u64::from_le_bytes(tag_bytes.try_into().expect("8 bytes"));
        if mac(self.key.0, nonce, body) != tag {
            return Err(FlareError::AuthFailure);
        }
        let mut ks = keystream(self.key.0 ^ nonce.wrapping_mul(0x9E3779B97F4A7C15));
        Ok(body.iter().map(|&b| b ^ ks()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dh_agreement_matches() {
        let a = DhKeyPair::from_secret(0x1234_5678_9abc);
        let b = DhKeyPair::from_secret(0xfeed_beef_cafe);
        assert_eq!(a.shared_key(b.public), b.shared_key(a.public));
        assert_ne!(a.public, b.public);
    }

    #[test]
    fn different_peers_different_keys() {
        let a = DhKeyPair::from_secret(1111);
        let b = DhKeyPair::from_secret(2222);
        let c = DhKeyPair::from_secret(3333);
        assert_ne!(a.shared_key(b.public), a.shared_key(c.public));
    }

    #[test]
    fn seal_open_roundtrip() {
        let key = SessionKey(0xdead_beef);
        let mut tx = SecureChannel::new(key, 0);
        let rx = SecureChannel::new(key, 0);
        for msg in [b"hello".as_slice(), b"", &[0u8; 1000]] {
            let sealed = tx.seal(msg);
            assert_eq!(rx.open(&sealed).unwrap(), msg);
        }
    }

    #[test]
    fn nonce_changes_ciphertext() {
        let key = SessionKey(7);
        let mut tx = SecureChannel::new(key, 0);
        let a = tx.seal(b"same");
        let b = tx.seal(b"same");
        assert_ne!(a, b);
    }

    #[test]
    fn tampering_detected() {
        let key = SessionKey(99);
        let mut tx = SecureChannel::new(key, 0);
        let rx = SecureChannel::new(key, 0);
        let mut sealed = tx.seal(b"payload");
        sealed[10] ^= 1;
        assert!(matches!(rx.open(&sealed), Err(FlareError::AuthFailure)));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut tx = SecureChannel::new(SessionKey(1), 0);
        let rx = SecureChannel::new(SessionKey(2), 0);
        assert!(rx.open(&tx.seal(b"payload")).is_err());
    }

    #[test]
    fn short_frame_rejected() {
        let rx = SecureChannel::new(SessionKey(1), 0);
        assert!(rx.open(&[0u8; 10]).is_err());
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mut tx = SecureChannel::new(SessionKey(0xabc), 0);
        let sealed = tx.seal(b"confidential patient data");
        let window = &sealed[8..sealed.len() - 8];
        assert_ne!(window, b"confidential patient data");
    }
}
