//! The client-side training interface (NVFlare's `Executor`/`Learner`).

use crate::dxo::{Dxo, Weights};

/// Context passed to an executor with every task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskContext {
    /// Site name (e.g. `site-3`).
    pub site: String,
    /// Current communication round (0-based).
    pub round: u32,
    /// Total rounds `E` in the workflow.
    pub total_rounds: u32,
}

/// Local training/validation logic plugged into an [`crate::simulator`]
/// client (the paper's `CiBertLearner` in Fig. 3).
///
/// Implementations load the broadcast global weights, run local epochs on
/// site-private data, and return the updated weights with metrics and the
/// number of examples used (the FedAvg aggregation weight).
pub trait Executor: Send {
    /// One local-training task. Returns the update to submit.
    fn train(&mut self, global: &Weights, ctx: &TaskContext) -> Dxo;

    /// Validates `global` on the site's validation split; returns the
    /// metric (top-1 accuracy in the paper).
    fn validate(&mut self, global: &Weights, ctx: &TaskContext) -> f64;
}

/// A trivial executor for runtime tests: "training" adds `delta` to every
/// weight; validation returns the mean of the first tensor.
#[derive(Clone, Debug)]
pub struct ArithmeticExecutor {
    /// Value added to every coordinate per round.
    pub delta: f32,
    /// Reported example count.
    pub n_examples: u64,
}

impl Executor for ArithmeticExecutor {
    fn train(&mut self, global: &Weights, _ctx: &TaskContext) -> Dxo {
        let mut w = global.clone();
        for t in w.values_mut() {
            for v in t.data.iter_mut() {
                *v += self.delta;
            }
        }
        let mut metrics = std::collections::BTreeMap::new();
        metrics.insert("train_loss".to_string(), 1.0 / (1.0 + self.delta as f64));
        Dxo {
            metrics,
            ..Dxo::from_weights(w, self.n_examples)
        }
    }

    fn validate(&mut self, global: &Weights, _ctx: &TaskContext) -> f64 {
        global
            .values()
            .next()
            .map(|t| t.data.iter().copied().sum::<f32>() as f64 / t.numel() as f64)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dxo::WeightTensor;

    #[test]
    fn arithmetic_executor_adds_delta() {
        let mut w = Weights::new();
        w.insert("p".into(), WeightTensor::new(vec![2], vec![1.0, 2.0]));
        let mut ex = ArithmeticExecutor {
            delta: 0.5,
            n_examples: 7,
        };
        let ctx = TaskContext {
            site: "site-1".into(),
            round: 0,
            total_rounds: 1,
        };
        let dxo = ex.train(&w, &ctx);
        assert_eq!(dxo.weights["p"].data, vec![1.5, 2.5]);
        assert_eq!(dxo.n_examples, 7);
        assert!((ex.validate(&w, &ctx) - 1.5).abs() < 1e-6);
    }
}
