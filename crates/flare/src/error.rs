//! Error type for the federated runtime.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the `clinfl-flare` runtime.
#[derive(Debug)]
pub enum FlareError {
    /// A registration token did not match any provisioned site.
    InvalidToken {
        /// Site name the client claimed.
        site: String,
    },
    /// A site tried to register twice.
    DuplicateRegistration {
        /// Site name.
        site: String,
    },
    /// Malformed or truncated wire payload.
    Codec(String),
    /// Message authentication failed (tampered or mis-keyed frame).
    AuthFailure,
    /// Underlying transport failed (peer closed, I/O error).
    Transport(String),
    /// A receive deadline elapsed with no frame.
    Timeout,
    /// Fewer clients than `min_clients` were available for a round.
    NotEnoughClients {
        /// Clients that responded.
        got: usize,
        /// Required minimum.
        needed: usize,
    },
    /// An update was rejected by validation (shape mismatch, NaN, …).
    RejectedUpdate(String),
    /// A send/recv gave up after its bounded retry budget.
    RetriesExhausted {
        /// What was being attempted (e.g. `submit round 3`).
        op: String,
        /// Attempts made before giving up.
        attempts: u32,
        /// Display form of the last underlying error.
        last: String,
    },
    /// A checkpoint file was unusable (CRC mismatch, unknown schema
    /// version, wrong run seed) — distinct from [`FlareError::Codec`] so
    /// recovery code can report *why* a resume was refused.
    Checkpoint(String),
    /// I/O error (persistence, sockets).
    Io(std::io::Error),
    /// The run was aborted by an operator (admin API or abort flag) —
    /// an intentional stop, not a failure, so hosts report it as
    /// "aborted" rather than retrying.
    Aborted,
}

impl fmt::Display for FlareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlareError::InvalidToken { site } => {
                write!(f, "invalid registration token for site {site:?}")
            }
            FlareError::DuplicateRegistration { site } => {
                write!(f, "site {site:?} is already registered")
            }
            FlareError::Codec(msg) => write!(f, "malformed wire payload: {msg}"),
            FlareError::AuthFailure => write!(f, "message authentication failed"),
            FlareError::Transport(msg) => write!(f, "transport failure: {msg}"),
            FlareError::Timeout => write!(f, "receive timed out"),
            FlareError::NotEnoughClients { got, needed } => {
                write!(f, "round had {got} client updates, needed {needed}")
            }
            FlareError::RejectedUpdate(msg) => write!(f, "rejected model update: {msg}"),
            FlareError::RetriesExhausted { op, attempts, last } => {
                write!(f, "{op} gave up after {attempts} attempt(s): {last}")
            }
            FlareError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            FlareError::Io(e) => write!(f, "i/o error: {e}"),
            FlareError::Aborted => write!(f, "run aborted by operator"),
        }
    }
}

impl Error for FlareError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlareError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FlareError {
    fn from(e: std::io::Error) -> Self {
        FlareError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = FlareError::InvalidToken {
            site: "site-1".into(),
        };
        assert!(e.to_string().contains("site-1"));
        let e = FlareError::NotEnoughClients { got: 3, needed: 8 };
        assert!(e.to_string().contains('3') && e.to_string().contains('8'));
    }

    #[test]
    fn retries_exhausted_display() {
        let e = FlareError::RetriesExhausted {
            op: "submit round 3".into(),
            attempts: 4,
            last: FlareError::Timeout.to_string(),
        };
        let msg = e.to_string();
        assert!(msg.contains("submit round 3") && msg.contains('4') && msg.contains("timed out"));
    }

    #[test]
    fn io_source_chains() {
        let e = FlareError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
