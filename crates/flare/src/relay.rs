//! Interior aggregation-tree nodes (hierarchical FedAvg relays).
//!
//! An [`AggregatorNode`] owns a downstream [`FlServer`] facing its shard
//! of children (leaf clients or deeper relays) and an upstream
//! [`FlClient`] facing its parent. Each round it rebroadcasts the
//! parent's task to its children, gathers their updates, folds them with
//! [`Aggregator::partial`] into one weighted partial update, and forwards
//! that single shard upstream via [`ClientMessage::SubmitShard`]. With
//! fan-out `f` the root therefore talks to `f` peers per round instead
//! of `n`, and a round costs `O(log n)` sequential hops.
//!
//! Failure semantics: a child that drops mid-round shrinks the shard —
//! the node re-aggregates whatever arrived before its round timeout and
//! reports the missing leaves in the shard's `dropped` list, leaving the
//! quorum decision to the root controller. An upstream disconnect after
//! at least one relayed round is treated as the server finishing the run
//! (mirroring the leaf client's graceful exit). The downstream server is
//! always shut down on the way out, so child sessions never leak.
//!
//! [`ClientMessage::SubmitShard`]: crate::messages::ClientMessage::SubmitShard

use crate::aggregator::Aggregator;
use crate::client::FlClient;
use crate::controller::ClientGateway;
use crate::log::EventLog;
use crate::messages::TaskAssignment;
use crate::server::FlServer;
use crate::FlareError;
use std::collections::BTreeSet;
use std::time::Duration;

/// Slice between uplink-supersession probes during a shard gather: short
/// enough that an abandoned round costs well under any quorum grace, long
/// enough that the probe's 1ms receive slice stays negligible.
const GATHER_POLL: Duration = Duration::from_millis(50);

/// Knobs for one interior tree node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RelayConfig {
    /// How long to wait for the shard's children to register before
    /// announcing leaves upstream.
    pub registration_timeout: Duration,
    /// Per-round gather deadline for the shard. Must stay below the
    /// parent's round timeout (the simulator shaves 10% per tree level)
    /// so a dropped leaf stalls this node, not the whole round.
    pub round_timeout: Duration,
    /// Early-close grace for the shard gather, mirroring the root
    /// quorum's: once at least one update has arrived and no further one
    /// lands for `grace`, the shard closes without waiting out the full
    /// round timeout. `None` waits for every leaf (or the timeout).
    pub quorum_grace: Option<Duration>,
}

impl Default for RelayConfig {
    fn default() -> Self {
        RelayConfig {
            registration_timeout: Duration::from_secs(30),
            round_timeout: Duration::from_secs(600),
            quorum_grace: None,
        }
    }
}

/// One interior node of the aggregation tree: a server to its children,
/// a client to its parent.
pub struct AggregatorNode {
    name: String,
    server: FlServer,
    uplink: FlClient,
    n_children: usize,
    n_leaves: usize,
    cfg: RelayConfig,
    log: EventLog,
}

impl AggregatorNode {
    /// Builds a node from an already-registered uplink client and a
    /// downstream server whose child sessions have been created.
    ///
    /// Re-homes the metric namespaces so interior traffic is separable
    /// from the root's and the leaves': the downstream server reports
    /// under `flare.tree.*`, the uplink under `flare.tree.uplink.*`.
    /// The downstream quorum is pinned to 1 — partial shards are always
    /// worth forwarding; whether the round has quorum is the root's call.
    pub fn new(
        name: impl Into<String>,
        mut server: FlServer,
        mut uplink: FlClient,
        n_children: usize,
        n_leaves: usize,
        cfg: RelayConfig,
        log: EventLog,
    ) -> Self {
        server.set_metric_namespace("flare.tree");
        server.set_quorum(1, cfg.quorum_grace);
        uplink.set_metric_namespace("flare.tree.uplink");
        AggregatorNode {
            name: name.into(),
            server,
            uplink,
            n_children,
            n_leaves,
            cfg,
            log,
        }
    }

    /// Runs the relay loop until the parent finishes the run (or
    /// disconnects after at least one relayed round). Returns the number
    /// of training rounds relayed.
    ///
    /// # Errors
    ///
    /// Transport failures before any round completes, exhausted retry
    /// budgets, or an aggregation rule that rejects the shard. The
    /// downstream server is shut down in every case.
    pub fn run(&mut self, aggregator: &dyn Aggregator) -> Result<u32, FlareError> {
        let registered = self
            .server
            .wait_for_clients(self.n_children, self.cfg.registration_timeout);
        if registered < self.n_children {
            self.log.warn(
                "AggregatorNode",
                format!(
                    "{}: only {registered}/{} children registered before timeout",
                    self.name, self.n_children
                ),
            );
        }
        // A relay child registers before it has announced its own leaf
        // set, so wait until the whole subtree's leaves are covered —
        // announcing an undercount upstream would be permanent (leaf
        // announcements ride one frame, sent once).
        let covered = self
            .server
            .wait_for_leaves(self.n_leaves, self.cfg.registration_timeout);
        if covered < self.n_leaves {
            self.log.warn(
                "AggregatorNode",
                format!(
                    "{}: only {covered}/{} leaf sites announced before timeout",
                    self.name, self.n_leaves
                ),
            );
        }
        let mut leaves = self.server.leaf_sites();
        leaves.sort();
        self.log.info(
            "AggregatorNode",
            format!(
                "{}: aggregating {} child(ren) covering {} leaf site(s)",
                self.name,
                registered,
                leaves.len()
            ),
        );
        let result = self
            .uplink
            .announce_leaves(leaves.clone())
            .and_then(|()| self.relay_loop(aggregator, &leaves));
        self.server.shutdown();
        self.server.disconnect_all();
        result
    }

    fn relay_loop(
        &mut self,
        aggregator: &dyn Aggregator,
        leaves: &[String],
    ) -> Result<u32, FlareError> {
        self.uplink.negotiate_codec();
        let mut relayed = 0u32;
        loop {
            let task = match self.uplink.next_task() {
                Ok(t) => t,
                Err(FlareError::Transport(reason)) if relayed > 0 => {
                    self.log.warn(
                        "AggregatorNode",
                        format!(
                            "{}: upstream closed ({reason}); exiting after {relayed} relayed round(s)",
                            self.name
                        ),
                    );
                    return Ok(relayed);
                }
                Err(e) => return Err(e),
            };
            match task {
                TaskAssignment::Train {
                    round,
                    total_rounds,
                    weights,
                } => {
                    let task = TaskAssignment::Train {
                        round,
                        total_rounds,
                        weights: weights.clone(),
                    };
                    let delivered = self.server.broadcast(&task);
                    let expected = self.server.leaf_sites().len();
                    // The parent only sends another task after closing the
                    // current round (possibly early, on quorum grace), so a
                    // pending uplink frame mid-gather proves this round is
                    // already decided upstream: abandon the gather instead
                    // of waiting out the shard timeout and relaying stale
                    // rounds forever after.
                    let server = &mut self.server;
                    let uplink = &mut self.uplink;
                    let gathered = server.collect_submissions_interruptible(
                        round,
                        expected,
                        self.cfg.round_timeout,
                        GATHER_POLL,
                        &mut || uplink.poll_pending_task(),
                    );
                    let Some(mut updates) = gathered else {
                        self.log.warn(
                            "AggregatorNode",
                            format!(
                                "{}: round {round} superseded upstream; abandoning gather",
                                self.name
                            ),
                        );
                        continue;
                    };
                    // Deterministic fold order regardless of arrival order.
                    updates.sort_by(|(a, _), (b, _)| a.cmp(b));
                    if updates.is_empty() {
                        self.log.warn(
                            "AggregatorNode",
                            format!(
                                "{}: no round-{round} updates from {delivered} child(ren); \
                                 skipping shard submit",
                                self.name
                            ),
                        );
                        continue;
                    }
                    let sites = match self.server.round_manifest(round) {
                        Some(m) => m.leaf_contributors(),
                        None => updates
                            .iter()
                            .map(|(s, d)| (s.clone(), d.metrics.clone()))
                            .collect(),
                    };
                    let contributed: BTreeSet<&String> = sites.iter().map(|(s, _)| s).collect();
                    let dropped: Vec<String> = leaves
                        .iter()
                        .filter(|l| !contributed.contains(l))
                        .cloned()
                        .collect();
                    let partial = aggregator.partial(&updates, &weights)?;
                    self.log.info(
                        "AggregatorNode",
                        format!(
                            "{}: round {round}: folded {} update(s) covering {} leaf site(s)",
                            self.name,
                            updates.len(),
                            sites.len()
                        ),
                    );
                    match self.uplink.submit_shard(round, partial, sites, dropped) {
                        Ok(()) => relayed += 1,
                        // After at least one relayed round a dead uplink is
                        // the run winding down, exactly like the transport
                        // error in `next_task` below — not a node failure.
                        Err(FlareError::Transport(_) | FlareError::RetriesExhausted { .. })
                            if relayed > 0 =>
                        {
                            self.log.warn(
                                "AggregatorNode",
                                format!(
                                    "{}: upstream gone before round-{round} shard landed; \
                                     exiting after {relayed} relayed round(s)",
                                    self.name
                                ),
                            );
                            return Ok(relayed);
                        }
                        Err(e) => return Err(e),
                    }
                }
                TaskAssignment::Validate { round, weights } => {
                    self.server
                        .broadcast(&TaskAssignment::Validate { round, weights });
                    let expected = self.server.leaf_sites().len();
                    let server = &mut self.server;
                    let uplink = &mut self.uplink;
                    let gathered = server.collect_validations_interruptible(
                        round,
                        expected,
                        self.cfg.round_timeout,
                        GATHER_POLL,
                        &mut || uplink.poll_pending_task(),
                    );
                    let Some(reports) = gathered else {
                        self.log.warn(
                            "AggregatorNode",
                            format!(
                                "{}: validate round {round} superseded upstream; \
                                 abandoning gather",
                                self.name
                            ),
                        );
                        continue;
                    };
                    self.uplink.report_validate_shard(round, reports)?;
                }
                TaskAssignment::Finish => {
                    self.server.broadcast(&TaskAssignment::Finish);
                    self.uplink.send_bye();
                    return Ok(relayed);
                }
                TaskAssignment::TrainEnc { .. } | TaskAssignment::ValidateEnc { .. } => {
                    unreachable!("encoded tasks decoded in next_task")
                }
            }
        }
    }
}
