//! # clinfl-flare
//!
//! A federated-learning runtime modelled on **NVFlare** (NVIDIA's FL
//! framework, v2.2 in the paper), built from scratch for the `clinfl`
//! reproduction of *"Multi-Site Clinical Federated Learning using Recursive
//! and Attentive Models and NVFlare"* (ICDCS 2023).
//!
//! It reproduces the pipeline of the paper's Fig. 1 and the run-loop its
//! Fig. 3 demonstrates:
//!
//! 1. **Provision** ([`provision`]) — a [`provision::Project`] is expanded
//!    into a server config and per-site packages carrying the registration
//!    *token* and key material (the paper's "preparation of public and
//!    secure keys").
//! 2. **Registration** — each client opens a transport, registers with its
//!    token, and establishes an encrypted session (toy Diffie–Hellman +
//!    stream cipher; see [`security`] for the explicit security caveat).
//! 3. **ScatterAndGather** ([`controller::ScatterAndGather`]) — for `E`
//!    communication rounds: broadcast global weights → local training on
//!    each site ([`executor::Executor`]) → gather updates → weighted
//!    aggregation ([`aggregator`]) → persist ([`persistor`]) → repeat.
//! 4. **Results** — the best global model and per-round metrics.
//!
//! The [`simulator::SimulatorRunner`] mirrors NVFlare's simulator mode used
//! in the paper (one process, one thread per site), while
//! [`transport::TcpTransport`] runs the identical byte protocol across real
//! sockets for multi-process deployments.
//!
//! Optional [`filters`] implement NVFlare's filter concept: differential-
//! privacy noise, magnitude pruning, and pairwise secure-aggregation masks.
//!
//! A seeded fault-injection layer ([`faults`]) can wrap any transport to
//! deterministically drop, delay, or truncate frames and crash clients
//! mid-round; the client retries with backoff and the controller closes
//! rounds on a `min_clients` quorum, so runs under aggressive faults still
//! complete (see the fault-tolerance section of `DESIGN.md`).
//!
//! The [`checkpoint`] module makes the persistence side crash-safe: every
//! file lands via atomic tmp+rename with a CRC trailer, and a
//! [`RunCheckpoint`] snapshot of the run-loop state lets
//! [`controller::ScatterAndGather`] resume at round *k+1* after a server
//! crash (see the checkpoint section of `DESIGN.md`).
//!
//! Weight exchange defaults to raw little-endian f32 tensors, but peers
//! can negotiate a compressed wire codec at registration ([`codec`]):
//! delta encoding against a ring of recent globals, f16/int8
//! quantization with error feedback, and top-k sparsification, each
//! frame guarded by a CRC-32 trailer. See DESIGN.md §3g for the
//! normative wire-format spec.
//!
//! The crate is model-agnostic: weights travel as named dense tensors
//! ([`Weights`]), so any training stack can plug in via the
//! [`executor::Executor`] trait.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod admin;
pub mod aggregator;
pub mod checkpoint;
pub mod client;
pub mod codec;
pub mod controller;
mod dxo;
mod error;
pub mod executor;
pub mod faults;
pub mod filters;
pub mod job;
pub mod jobs;
mod log;
pub mod messages;
pub mod persistor;
pub mod privacy;
pub mod provision;
pub mod reactor;
pub mod relay;
pub mod security;
pub mod server;
pub mod simulator;
pub mod transport;
pub mod wire;

pub use checkpoint::RunCheckpoint;
pub use dxo::{Dxo, DxoKind, WeightTensor, Weights};
pub use error::FlareError;
pub use log::{EventLog, LogEntry, LogLevel};
