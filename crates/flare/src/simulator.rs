//! The simulator: whole federations in one process (NVFlare's
//! `SimulatorRunner`, the mode the paper's Fig. 3 demonstrates).

use crate::aggregator::Aggregator;
use crate::client::{ClientBehavior, FlClient, RetryPolicy};
use crate::codec::CodecSpec;
use crate::controller::{SagConfig, ScatterAndGather, WorkflowResult};
use crate::dxo::Weights;
use crate::executor::Executor;
use crate::faults::{FaultConfig, FaultPlan};
use crate::filters::FilterChain;
use crate::log::EventLog;
use crate::persistor::{FilePersistor, InMemoryPersistor, Persistor};
use crate::provision::{Project, Provisioned, SitePackage};
use crate::relay::{AggregatorNode, RelayConfig};
use crate::server::FlServer;
use crate::transport::{in_proc_pair, Connection};
use crate::FlareError;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

/// Shape of the in-process aggregation tree (see [`AggregatorNode`]).
///
/// `depth` counts edges from the root to a leaf: `1` is the classic flat
/// fleet, `2` inserts one layer of interior aggregator nodes, and so on.
/// Each interior node fans out to at most `fanout` children.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeConfig {
    /// Edges from root to leaf (`<= 1` means flat).
    pub depth: u32,
    /// Maximum children per node.
    pub fanout: usize,
}

impl TreeConfig {
    /// Reads the `CLINFL_TREE` environment knob: `"2"` (depth 2, fanout
    /// 8) or `"2x8"` (`depth x fanout`). Unset, empty, or unparsable
    /// values mean "no override".
    pub fn from_env() -> Option<Self> {
        Self::parse(&std::env::var("CLINFL_TREE").ok()?)
    }

    /// Parses `"<depth>"` or `"<depth>x<fanout>"`.
    pub fn parse(raw: &str) -> Option<Self> {
        let raw = raw.trim();
        if raw.is_empty() {
            return None;
        }
        let (depth, fanout) = match raw.split_once('x') {
            Some((d, f)) => (d.trim().parse().ok()?, f.trim().parse().ok()?),
            None => (raw.parse().ok()?, 8),
        };
        Some(TreeConfig {
            depth,
            fanout: std::cmp::max(fanout, 2),
        })
    }

    /// The smallest depth whose capacity `fanout^depth` covers `n` sites
    /// (so 8 sites at fan-out 8 stay flat, 64 get one interior layer,
    /// 1024 get three).
    pub fn auto(n: usize, fanout: usize) -> Self {
        let fanout = fanout.max(2);
        let mut depth = 1u32;
        let mut capacity = fanout;
        while capacity < n {
            depth += 1;
            capacity = capacity.saturating_mul(fanout);
        }
        TreeConfig { depth, fanout }
    }
}

/// One child slot in the topology: a leaf site (by 0-based index) or an
/// interior aggregator subtree.
enum TreeChild {
    Leaf(usize),
    Node(TreeNodeSpec),
}

struct TreeNodeSpec {
    name: String,
    children: Vec<TreeChild>,
}

/// Chunks name-sorted leaves into contiguous shards, one per child, each
/// sized to the capacity of a subtree of the remaining height. Chunks of
/// one leaf attach directly (an interior node relaying a single site
/// would only add latency).
fn build_children(
    order: &[usize],
    height: u32,
    fanout: usize,
    counter: &mut usize,
) -> Vec<TreeChild> {
    if height <= 1 || order.len() <= 1 {
        return order.iter().map(|&i| TreeChild::Leaf(i)).collect();
    }
    let capacity = fanout.saturating_pow(height - 1).max(1);
    order
        .chunks(capacity)
        .map(|chunk| {
            if chunk.len() == 1 {
                TreeChild::Leaf(chunk[0])
            } else {
                let name = format!("agg-{:03}", *counter);
                *counter += 1;
                TreeChild::Node(TreeNodeSpec {
                    name,
                    children: build_children(chunk, height - 1, fanout, counter),
                })
            }
        })
        .collect()
}

fn child_name<'a>(child: &'a TreeChild, leaf_names: &'a [String]) -> &'a str {
    match child {
        TreeChild::Leaf(i) => &leaf_names[*i],
        TreeChild::Node(spec) => &spec.name,
    }
}

/// A leaf client ready to spawn: its (fault-wrapped) connection into the
/// parent node plus registration material.
struct LeafJob {
    index: usize,
    package: SitePackage,
    conn: Connection,
    dh_secret: u64,
}

/// An interior node ready to spawn: a downstream server whose child
/// sessions are already created, plus the uplink registration material.
struct RelayJob {
    name: String,
    server: FlServer,
    conn: Connection,
    package: SitePackage,
    dh_secret: u64,
    n_children: usize,
    n_leaves: usize,
    cfg: RelayConfig,
}

/// Leaf sites covered by a subtree (relay children count their whole
/// subtree, not themselves).
fn subtree_leaves(children: &[TreeChild]) -> usize {
    children
        .iter()
        .map(|c| match c {
            TreeChild::Leaf(_) => 1,
            TreeChild::Node(spec) => subtree_leaves(&spec.children),
        })
        .sum()
}

/// Configuration of a simulated federation.
#[derive(Clone, Debug)]
pub struct SimulatorConfig {
    /// Number of simulated sites (the paper uses 8).
    pub n_clients: usize,
    /// ScatterAndGather workflow settings.
    pub sag: SagConfig,
    /// Provisioning / session seed.
    pub seed: u64,
    /// Per-client failure injection, keyed by 0-based site index.
    pub behaviors: BTreeMap<usize, ClientBehavior>,
    /// Deterministic link-level fault injection (defaults to none).
    pub faults: FaultConfig,
    /// Client send/recv retry policy.
    pub retry: RetryPolicy,
    /// Persist per-round snapshots and the run checkpoint into this
    /// directory (crash-safe; see `DESIGN.md`). `None` keeps everything in
    /// memory.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the checkpoint in `checkpoint_dir` (if one is valid);
    /// the run restarts at round *k+1*. Refused if the checkpoint was
    /// written under a different `seed`.
    pub resume: bool,
    /// Keep at most this many `round_<n>.cfw` files on disk (oldest
    /// pruned first); `None` keeps all.
    pub retain_checkpoints: Option<usize>,
    /// Wire codec every client proposes at registration (see
    /// [`crate::codec`]); raw keeps the legacy full-f32 exchange.
    pub wire: CodecSpec,
    /// Per-site codec overrides keyed by 0-based site index (mixed-fleet
    /// testing: some sites raw, some compressed).
    pub wire_overrides: BTreeMap<usize, CodecSpec>,
    /// When false the server ignores codec proposals (emulates a
    /// pre-codec server, exercising the client's raw fallback).
    pub server_codecs_enabled: bool,
    /// Aggregation-tree topology. `None` falls back to the `CLINFL_TREE`
    /// environment knob, and to a flat fleet when that is unset too. A
    /// resumed run restores the topology recorded in its checkpoint
    /// instead. Trees need an aggregation rule with
    /// [`Aggregator::supports_partial`]; others warn and run flat.
    pub tree: Option<TreeConfig>,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        SimulatorConfig {
            n_clients: 8,
            sag: SagConfig::default(),
            seed: 2023,
            behaviors: BTreeMap::new(),
            faults: FaultConfig::none(),
            retry: RetryPolicy::default(),
            checkpoint_dir: None,
            resume: false,
            retain_checkpoints: None,
            wire: CodecSpec::raw(),
            wire_overrides: BTreeMap::new(),
            server_codecs_enabled: true,
            tree: None,
        }
    }
}

impl SimulatorConfig {
    /// A paper-like default: 8 clients, `rounds` rounds, everyone healthy.
    pub fn paper(rounds: u32) -> Self {
        SimulatorConfig {
            sag: SagConfig {
                rounds,
                min_clients: 1,
                ..SagConfig::default()
            },
            ..SimulatorConfig::default()
        }
    }
}

/// Result of a simulator run: the workflow outcome plus the collected
/// event log (the content of the paper's Fig. 3).
#[derive(Debug)]
pub struct SimulationResult {
    /// Workflow result (final weights, per-round summaries).
    pub workflow: WorkflowResult,
    /// Rounds each client completed before exiting.
    pub client_rounds: Vec<u32>,
    /// The run log.
    pub log: EventLog,
}

/// Builds and runs an in-process federation: provision → server → client
/// threads → ScatterAndGather → results.
pub struct SimulatorRunner {
    config: SimulatorConfig,
    log: EventLog,
}

impl std::fmt::Debug for SimulatorRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatorRunner")
            .field("n_clients", &self.config.n_clients)
            .finish_non_exhaustive()
    }
}

impl SimulatorRunner {
    /// Creates a runner with a silent log.
    pub fn new(config: SimulatorConfig) -> Self {
        Self::with_log(config, EventLog::new())
    }

    /// Creates a runner that logs into `log` (use [`EventLog::echoing`]
    /// for live Fig. 3-style output).
    pub fn with_log(config: SimulatorConfig, log: EventLog) -> Self {
        SimulatorRunner { config, log }
    }

    /// The shared event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Runs the federation to completion.
    ///
    /// `make_executor` is called once per site (with its index and name)
    /// on the launching thread; the produced executor moves to that site's
    /// thread. `make_filters` may return a per-site outgoing filter chain.
    ///
    /// # Errors
    ///
    /// Propagates workflow failures (e.g.
    /// [`FlareError::NotEnoughClients`]).
    ///
    /// # Panics
    ///
    /// Panics if a client thread panicked (executor bugs should surface,
    /// not hang the run).
    pub fn run(
        &self,
        initial: Weights,
        mut make_executor: impl FnMut(usize, &str) -> Box<dyn Executor>,
        aggregator: &dyn Aggregator,
        mut make_filters: impl FnMut(usize) -> FilterChain,
    ) -> Result<SimulationResult, FlareError> {
        let _run_span = clinfl_obs::span("run");
        let log = self.log.clone();
        // Checkpoint/resume setup happens before any client thread spawns,
        // so a refused resume returns an error without leaking threads.
        let mut initial = initial;
        let mut sag_cfg = self.config.sag.clone();
        let mut persistor: Box<dyn Persistor> = match &self.config.checkpoint_dir {
            Some(dir) => {
                let mut fp = FilePersistor::new(dir)?.with_log(log.clone());
                if let Some(keep) = self.config.retain_checkpoints {
                    fp = fp.with_retention(keep);
                }
                if self.config.resume {
                    match fp.load_checkpoint() {
                        Some(ckpt) => {
                            if ckpt.seed != self.config.seed {
                                return Err(FlareError::Checkpoint(format!(
                                    "checkpoint in {dir:?} was written under run seed {}; \
                                     refusing to resume with seed {} (the fault/data \
                                     schedule would diverge)",
                                    ckpt.seed, self.config.seed
                                )));
                            }
                            initial = ckpt.global.clone();
                            sag_cfg.resume_from = Some(ckpt);
                        }
                        None => log.warn(
                            "SimulatorRunner",
                            "resume requested but no valid checkpoint found; starting fresh",
                        ),
                    }
                }
                Box::new(fp)
            }
            None => Box::new(InMemoryPersistor::new()),
        };
        let plan = FaultPlan::new(self.config.faults.clone(), log.clone());
        if plan.config().is_active() {
            log.info(
                "FaultInjector",
                format!("active with seed {}", plan.config().seed),
            );
        }
        // Topology: a resumed run restores whatever its checkpoint
        // recorded (a run must not change shape mid-flight); otherwise the
        // config, then the CLINFL_TREE environment knob, decides.
        let topology = match sag_cfg
            .resume_from
            .as_ref()
            .map(|c| (c.tree_depth, c.tree_fanout))
        {
            Some((d, f)) if d >= 2 => Some(TreeConfig {
                depth: d,
                fanout: (f as usize).max(2),
            }),
            Some(_) => None,
            None => self.config.tree.or_else(TreeConfig::from_env),
        };
        let topology = match topology.filter(|t| t.depth >= 2 && self.config.n_clients >= 2) {
            Some(_) if !aggregator.supports_partial() => {
                log.warn(
                    "SimulatorRunner",
                    format!(
                        "{} does not decompose over shards; falling back to a flat topology",
                        aggregator.name()
                    ),
                );
                None
            }
            Some(_) if sag_cfg.client_sample_fraction < 1.0 => {
                // Interior aggregator nodes scatter to their whole shard,
                // so a per-round site subset cannot be addressed through
                // them yet; run the sampled federation flat instead.
                log.warn(
                    "SimulatorRunner",
                    "client sampling does not compose with tree aggregation; \
                     falling back to a flat topology",
                );
                None
            }
            t => t,
        };
        if let Some(tree) = topology {
            return self.run_tree(
                tree,
                initial,
                &mut make_executor,
                aggregator,
                &mut make_filters,
                sag_cfg,
                persistor.as_mut(),
                &plan,
            );
        }
        log.info("SimulatorRunner", "Create the simulate clients.");
        let project =
            Project::with_n_sites("simulator_server", self.config.n_clients, self.config.seed);
        let provisioned = project.provision();
        let mut server = FlServer::new(provisioned.server.clone(), log.clone(), self.config.seed);
        server.set_quorum(self.config.sag.min_clients, self.config.sag.quorum_grace);
        server.set_wire_codecs_enabled(self.config.server_codecs_enabled);

        let mut client_threads = Vec::with_capacity(self.config.n_clients);
        for (i, package) in provisioned.sites.iter().enumerate() {
            let (server_side, client_side) = in_proc_pair();
            server.serve_connection(server_side);
            let package = package.clone();
            let mut behavior = self.config.behaviors.get(&i).copied().unwrap_or_default();
            if behavior.drop_at_round.is_none() {
                // The fault plan can schedule mid-round crashes too.
                behavior.drop_at_round = plan.crash_round(i);
            }
            let client_side = plan.wrap(&package.site_name, client_side);
            let retry = self.config.retry;
            let mut executor = make_executor(i, &package.site_name);
            let filters = make_filters(i);
            let clog = log.clone();
            let dh_secret = self.config.seed.wrapping_mul(0x9E3779B97F4A7C15) ^ (i as u64 + 1);
            let wire = self
                .config
                .wire_overrides
                .get(&i)
                .cloned()
                .unwrap_or_else(|| self.config.wire.clone());
            client_threads.push(std::thread::spawn(move || -> Result<u32, FlareError> {
                let mut client = FlClient::register(client_side, &package, dh_secret, clog)?;
                client.set_filters(filters);
                client.set_retry_policy(retry);
                client.set_wire_codec(wire);
                client.run(executor.as_mut(), behavior)
            }));
        }

        let joined = server.wait_for_clients(self.config.n_clients, Duration::from_secs(30));
        if joined < self.config.n_clients {
            log.warn(
                "SimulatorRunner",
                format!("only {joined}/{} clients registered", self.config.n_clients),
            );
        }

        let sag = ScatterAndGather::new(sag_cfg, log.clone()).with_run_seed(self.config.seed);
        let workflow = sag.run(&mut server, aggregator, persistor.as_mut(), initial);

        // Stop the server BEFORE joining clients: dropping the server-side
        // connections wakes any client whose Finish frame was lost to an
        // injected fault (buffered frames still deliver, so the healthy
        // goodbye path is unaffected). Joining first could deadlock on a
        // client waiting out its full receive-retry budget.
        server.shutdown();
        server.disconnect_all();
        let mut client_rounds = Vec::with_capacity(client_threads.len());
        for t in client_threads {
            match t.join().expect("client thread panicked") {
                Ok(rounds) => client_rounds.push(rounds),
                Err(e) => {
                    log.warn("SimulatorRunner", format!("client exited with error: {e}"));
                    client_rounds.push(0);
                }
            }
        }
        let workflow = workflow?;
        log.info("SimulatorRunner", "Simulation complete.");
        if clinfl_obs::enabled() {
            let run_name = format!(
                "sim-{}x{}-seed{}",
                self.config.n_clients, self.config.sag.rounds, self.config.seed
            );
            match clinfl_obs::snapshot().write_artifact(&run_name) {
                Ok(path) => log.info(
                    "SimulatorRunner",
                    format!("Metrics artifact: {}", path.display()),
                ),
                Err(e) => log.warn(
                    "SimulatorRunner",
                    format!("metrics artifact write failed: {e}"),
                ),
            }
        }
        Ok(SimulationResult {
            workflow,
            client_rounds,
            log,
        })
    }

    /// Recursively provisions an interior node's children: every child
    /// gets a reactor-native session on `parent` (created here, on the
    /// launching thread, so servers can move into their node threads
    /// afterwards); interior children get their own provisioned
    /// [`FlServer`] and recurse. Leaf connections are fault-wrapped;
    /// relay uplinks are not (the paper's faults live on site links), and
    /// each tree level shaves 10% off the round deadline so a stalled
    /// shard resolves below its parent's timeout.
    #[allow(clippy::too_many_arguments)]
    fn instantiate_children(
        &self,
        parent: &mut FlServer,
        parent_prov: &Provisioned,
        children: &[TreeChild],
        leaf_names: &[String],
        level_timeout: Duration,
        level_grace: Option<Duration>,
        plan: &FaultPlan,
        log: &EventLog,
        relay_seq: &mut u64,
        leaf_jobs: &mut Vec<LeafJob>,
        relay_jobs: &mut Vec<RelayJob>,
    ) {
        for (pos, child) in children.iter().enumerate() {
            let package = parent_prov.sites[pos].clone();
            let conn = parent.serve_session();
            match child {
                TreeChild::Leaf(i) => {
                    let i = *i;
                    leaf_jobs.push(LeafJob {
                        index: i,
                        package,
                        conn: plan.wrap(&leaf_names[i], conn),
                        dh_secret: self.config.seed.wrapping_mul(0x9E3779B97F4A7C15)
                            ^ (i as u64 + 1),
                    });
                }
                TreeChild::Node(spec) => {
                    *relay_seq += 1;
                    let seq = *relay_seq;
                    let relay_seed = self.config.seed.wrapping_add(0xC1F7).wrapping_add(seq);
                    let project = Project {
                        name: "simulator_server".to_string(),
                        sites: spec
                            .children
                            .iter()
                            .map(|c| child_name(c, leaf_names).to_string())
                            .collect(),
                        seed: relay_seed,
                    };
                    let prov = project.provision();
                    let mut server = FlServer::new(prov.server.clone(), log.clone(), relay_seed);
                    // Re-home metrics before any child session exists:
                    // registrations start flowing the moment sessions are
                    // served below, and early frames must not be charged
                    // to the root's `flare.server` namespace.
                    server.set_metric_namespace("flare.tree");
                    server.set_wire_codecs_enabled(self.config.server_codecs_enabled);
                    // Shaving the deadline (and halving the grace) per
                    // level keeps a child's gather strictly inside its
                    // parent's window: a shard always lands before the
                    // parent's own quorum grace or timeout expires.
                    let child_timeout = level_timeout.mul_f32(0.9);
                    let child_grace = level_grace.map(|g| g.mul_f32(0.5));
                    self.instantiate_children(
                        &mut server,
                        &prov,
                        &spec.children,
                        leaf_names,
                        child_timeout,
                        child_grace,
                        plan,
                        log,
                        relay_seq,
                        leaf_jobs,
                        relay_jobs,
                    );
                    relay_jobs.push(RelayJob {
                        name: spec.name.clone(),
                        server,
                        conn,
                        package,
                        dh_secret: self.config.seed.wrapping_mul(0x9E3779B97F4A7C15)
                            ^ (0x8000_0000_0000_0000 | seq),
                        n_children: spec.children.len(),
                        n_leaves: subtree_leaves(&spec.children),
                        cfg: RelayConfig {
                            registration_timeout: Duration::from_secs(30),
                            round_timeout: child_timeout,
                            quorum_grace: child_grace,
                        },
                    });
                }
            }
        }
    }

    /// The tree-mode twin of [`SimulatorRunner::run`]: stands up the
    /// whole aggregation tree in-process — one [`AggregatorNode`] thread
    /// per interior node, one client thread per leaf — and drives the
    /// root through the unchanged ScatterAndGather workflow. Aggregation
    /// order at every node is name-sorted, so a depth-2 run is
    /// bit-identical to a flat run for rules whose partial decomposition
    /// is exact.
    #[allow(clippy::too_many_arguments)]
    fn run_tree(
        &self,
        tree: TreeConfig,
        initial: Weights,
        make_executor: &mut dyn FnMut(usize, &str) -> Box<dyn Executor>,
        aggregator: &dyn Aggregator,
        make_filters: &mut dyn FnMut(usize) -> FilterChain,
        sag_cfg: SagConfig,
        persistor: &mut dyn Persistor,
        plan: &FaultPlan,
    ) -> Result<SimulationResult, FlareError> {
        let log = self.log.clone();
        let n = self.config.n_clients;
        log.info("SimulatorRunner", "Create the simulate clients.");
        let leaf_names: Vec<String> = (1..=n).map(|i| format!("site-{i}")).collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| leaf_names[a].cmp(&leaf_names[b]));
        let mut counter = 0usize;
        let root_children = build_children(&order, tree.depth, tree.fanout, &mut counter);
        log.info(
            "SimulatorRunner",
            format!(
                "Aggregation tree: depth {}, fan-out {}, {counter} interior node(s), \
                 {} root child(ren) over {n} site(s).",
                tree.depth,
                tree.fanout,
                root_children.len()
            ),
        );
        let root_project = Project {
            name: "simulator_server".to_string(),
            sites: root_children
                .iter()
                .map(|c| child_name(c, &leaf_names).to_string())
                .collect(),
            seed: self.config.seed,
        };
        let root_prov = root_project.provision();
        let mut server = FlServer::new(root_prov.server.clone(), log.clone(), self.config.seed);
        server.set_quorum(self.config.sag.min_clients, self.config.sag.quorum_grace);
        server.set_wire_codecs_enabled(self.config.server_codecs_enabled);
        let mut leaf_jobs = Vec::with_capacity(n);
        let mut relay_jobs = Vec::new();
        let mut relay_seq = 0u64;
        self.instantiate_children(
            &mut server,
            &root_prov,
            &root_children,
            &leaf_names,
            self.config.sag.round_timeout,
            self.config.sag.quorum_grace,
            plan,
            &log,
            &mut relay_seq,
            &mut leaf_jobs,
            &mut relay_jobs,
        );
        // client_rounds stays indexed by site, independent of tree shape.
        leaf_jobs.sort_by_key(|j| j.index);
        let n_root_children = root_children.len();
        let retry = self.config.retry;

        let (workflow, client_rounds) = std::thread::scope(|scope| {
            let mut relay_handles = Vec::with_capacity(relay_jobs.len());
            for job in relay_jobs {
                let handle_name = job.name.clone();
                let clog = log.clone();
                let wire = self.config.wire.clone();
                relay_handles.push((
                    handle_name,
                    scope.spawn(move || -> Result<u32, FlareError> {
                        let RelayJob {
                            name,
                            server,
                            conn,
                            package,
                            dh_secret,
                            n_children,
                            n_leaves,
                            cfg,
                        } = job;
                        let mut uplink =
                            FlClient::register(conn, &package, dh_secret, clog.clone())?;
                        uplink.set_retry_policy(retry);
                        uplink.set_wire_codec(wire);
                        let mut node = AggregatorNode::new(
                            name, server, uplink, n_children, n_leaves, cfg, clog,
                        );
                        node.run(aggregator)
                    }),
                ));
            }
            let mut leaf_handles = Vec::with_capacity(n);
            for job in leaf_jobs {
                let mut behavior = self
                    .config
                    .behaviors
                    .get(&job.index)
                    .copied()
                    .unwrap_or_default();
                if behavior.drop_at_round.is_none() {
                    behavior.drop_at_round = plan.crash_round(job.index);
                }
                let mut executor = make_executor(job.index, &leaf_names[job.index]);
                let filters = make_filters(job.index);
                let clog = log.clone();
                let wire = self
                    .config
                    .wire_overrides
                    .get(&job.index)
                    .cloned()
                    .unwrap_or_else(|| self.config.wire.clone());
                leaf_handles.push(scope.spawn(move || -> Result<u32, FlareError> {
                    let LeafJob {
                        package,
                        conn,
                        dh_secret,
                        ..
                    } = job;
                    let mut client = FlClient::register(conn, &package, dh_secret, clog)?;
                    client.set_filters(filters);
                    client.set_retry_policy(retry);
                    client.set_wire_codec(wire);
                    client.run(executor.as_mut(), behavior)
                }));
            }

            let joined = server.wait_for_clients(n_root_children, Duration::from_secs(30));
            if joined < n_root_children {
                log.warn(
                    "SimulatorRunner",
                    format!("only {joined}/{n_root_children} root children registered"),
                );
            }
            let covered = server.wait_for_leaves(n, Duration::from_secs(30));
            if covered < n {
                log.warn(
                    "SimulatorRunner",
                    format!("only {covered}/{n} leaf sites announced"),
                );
            }

            let sag = ScatterAndGather::new(sag_cfg, log.clone())
                .with_run_seed(self.config.seed)
                .with_topology(tree.depth, tree.fanout as u32);
            let workflow = sag.run(&mut server, aggregator, persistor, initial);

            // Same ordering rationale as the flat path: wake everything
            // before joining. Relays react by shutting their own servers
            // down, which cascades the wake-up to the leaves.
            server.shutdown();
            server.disconnect_all();

            for (name, h) in relay_handles {
                if let Err(e) = h.join().expect("relay thread panicked") {
                    log.warn("SimulatorRunner", format!("{name} exited with error: {e}"));
                }
            }
            let mut client_rounds = Vec::with_capacity(n);
            for h in leaf_handles {
                match h.join().expect("client thread panicked") {
                    Ok(rounds) => client_rounds.push(rounds),
                    Err(e) => {
                        log.warn("SimulatorRunner", format!("client exited with error: {e}"));
                        client_rounds.push(0);
                    }
                }
            }
            (workflow, client_rounds)
        });
        let workflow = workflow?;
        log.info("SimulatorRunner", "Simulation complete.");
        if clinfl_obs::enabled() {
            let run_name = format!(
                "sim-{}x{}-seed{}",
                n, self.config.sag.rounds, self.config.seed
            );
            match clinfl_obs::snapshot().write_artifact(&run_name) {
                Ok(path) => log.info(
                    "SimulatorRunner",
                    format!("Metrics artifact: {}", path.display()),
                ),
                Err(e) => log.warn(
                    "SimulatorRunner",
                    format!("metrics artifact write failed: {e}"),
                ),
            }
        }
        Ok(SimulationResult {
            workflow,
            client_rounds,
            log,
        })
    }

    /// Convenience wrapper: healthy clients, no filters.
    ///
    /// # Errors
    ///
    /// Same as [`SimulatorRunner::run`].
    pub fn run_simple(
        &self,
        initial: Weights,
        make_executor: impl FnMut(usize, &str) -> Box<dyn Executor>,
        aggregator: &dyn Aggregator,
    ) -> Result<SimulationResult, FlareError> {
        self.run(initial, make_executor, aggregator, |_| FilterChain::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::WeightedFedAvg;
    use crate::dxo::WeightTensor;
    use crate::executor::ArithmeticExecutor;

    fn initial() -> Weights {
        let mut w = Weights::new();
        w.insert("p".into(), WeightTensor::new(vec![3], vec![0.0; 3]));
        w
    }

    fn sim(n: usize, rounds: u32) -> SimulatorRunner {
        SimulatorRunner::new(SimulatorConfig {
            n_clients: n,
            sag: SagConfig {
                rounds,
                min_clients: 1,
                round_timeout: Duration::from_secs(10),
                validate_global: true,
                ..SagConfig::default()
            },
            seed: 7,
            ..SimulatorConfig::default()
        })
    }

    #[test]
    fn full_simulation_converges_weights() {
        // Clients add 1.0 and 3.0; FedAvg weighted by n (equal) → +2/round.
        let res = sim(2, 3)
            .run_simple(
                initial(),
                |i, _| {
                    Box::new(ArithmeticExecutor {
                        delta: if i == 0 { 1.0 } else { 3.0 },
                        n_examples: 10,
                    })
                },
                &WeightedFedAvg,
            )
            .unwrap();
        let final_w = &res.workflow.final_weights["p"];
        for v in &final_w.data {
            assert!((v - 6.0).abs() < 1e-5, "expected 6.0 got {v}");
        }
        assert_eq!(res.client_rounds, vec![3, 3]);
        assert_eq!(res.workflow.rounds.len(), 3);
    }

    #[test]
    fn log_contains_fig3_structure() {
        let res = sim(2, 1)
            .run_simple(
                initial(),
                |_, _| {
                    Box::new(ArithmeticExecutor {
                        delta: 1.0,
                        n_examples: 1,
                    })
                },
                &WeightedFedAvg,
            )
            .unwrap();
        for phrase in [
            "Create the simulate clients.",
            "New client site-1@127.0.0.1 joined",
            "Successfully registered client:site-2",
            "aggregating 2 update(s) at round 0",
            "Round 0 finished.",
            "Simulation complete.",
        ] {
            assert!(res.log.contains(phrase), "missing phrase {phrase:?}");
        }
    }

    #[test]
    fn dropout_client_tolerated() {
        let mut cfg = SimulatorConfig {
            n_clients: 3,
            sag: SagConfig {
                rounds: 3,
                min_clients: 2,
                round_timeout: Duration::from_millis(1500),
                validate_global: false,
                ..SagConfig::default()
            },
            seed: 11,
            ..SimulatorConfig::default()
        };
        cfg.behaviors.insert(
            2,
            ClientBehavior {
                drop_at_round: Some(1),
                straggle: None,
            },
        );
        let res = SimulatorRunner::new(cfg)
            .run_simple(
                initial(),
                |_, _| {
                    Box::new(ArithmeticExecutor {
                        delta: 1.0,
                        n_examples: 5,
                    })
                },
                &WeightedFedAvg,
            )
            .unwrap();
        assert_eq!(res.workflow.rounds[0].contributors.len(), 3);
        assert_eq!(res.workflow.rounds[1].contributors.len(), 2);
        // The dropped client trained exactly one round.
        assert_eq!(res.client_rounds[2], 1);
    }

    #[test]
    fn straggler_still_contributes() {
        let mut cfg = SimulatorConfig {
            n_clients: 2,
            sag: SagConfig {
                rounds: 2,
                min_clients: 2,
                round_timeout: Duration::from_secs(10),
                validate_global: false,
                ..SagConfig::default()
            },
            seed: 13,
            ..SimulatorConfig::default()
        };
        cfg.behaviors.insert(
            1,
            ClientBehavior {
                drop_at_round: None,
                straggle: Some(Duration::from_millis(100)),
            },
        );
        let res = SimulatorRunner::new(cfg)
            .run_simple(
                initial(),
                |_, _| {
                    Box::new(ArithmeticExecutor {
                        delta: 2.0,
                        n_examples: 5,
                    })
                },
                &WeightedFedAvg,
            )
            .unwrap();
        assert_eq!(res.workflow.rounds.len(), 2);
        assert!(res
            .workflow
            .rounds
            .iter()
            .all(|r| r.contributors.len() == 2));
    }

    #[test]
    fn too_many_dropouts_abort() {
        let mut cfg = SimulatorConfig {
            n_clients: 2,
            sag: SagConfig {
                rounds: 3,
                min_clients: 2,
                round_timeout: Duration::from_millis(800),
                validate_global: false,
                ..SagConfig::default()
            },
            seed: 17,
            ..SimulatorConfig::default()
        };
        cfg.behaviors.insert(
            0,
            ClientBehavior {
                drop_at_round: Some(1),
                straggle: None,
            },
        );
        cfg.behaviors.insert(
            1,
            ClientBehavior {
                drop_at_round: Some(1),
                straggle: None,
            },
        );
        let err = SimulatorRunner::new(cfg)
            .run_simple(
                initial(),
                |_, _| {
                    Box::new(ArithmeticExecutor {
                        delta: 1.0,
                        n_examples: 5,
                    })
                },
                &WeightedFedAvg,
            )
            .unwrap_err();
        assert!(matches!(err, FlareError::NotEnoughClients { .. }));
    }

    fn exec(i: usize, _site: &str) -> Box<dyn Executor> {
        Box::new(ArithmeticExecutor {
            delta: (i + 1) as f32,
            n_examples: 10,
        })
    }

    fn ckpt_cfg(dir: &std::path::Path, rounds: u32, seed: u64) -> SimulatorConfig {
        SimulatorConfig {
            n_clients: 3,
            sag: SagConfig {
                rounds,
                min_clients: 1,
                round_timeout: Duration::from_secs(10),
                validate_global: true,
                ..SagConfig::default()
            },
            seed,
            checkpoint_dir: Some(dir.to_path_buf()),
            ..SimulatorConfig::default()
        }
    }

    #[test]
    fn checkpointed_run_resumes_bit_identically() {
        let dir = std::env::temp_dir().join(format!("clinfl-sim-resume-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        // Reference: uninterrupted 4-round run (no checkpointing at all).
        let full = sim(3, 4)
            .run_simple(initial(), exec, &WeightedFedAvg)
            .unwrap();
        // Interrupted: two rounds land in the checkpoint dir, the process
        // state is dropped, and a fresh runner resumes to round 4.
        SimulatorRunner::new(ckpt_cfg(&dir, 2, 7))
            .run_simple(initial(), exec, &WeightedFedAvg)
            .unwrap();
        let mut resume_cfg = ckpt_cfg(&dir, 4, 7);
        resume_cfg.resume = true;
        let resumed = SimulatorRunner::new(resume_cfg)
            .run_simple(initial(), exec, &WeightedFedAvg)
            .unwrap();
        assert!(resumed.log.contains("Resuming at round 2"));
        assert_eq!(
            resumed.workflow.final_weights, full.workflow.final_weights,
            "resumed weights must be bit-identical to the uninterrupted run"
        );
        assert_eq!(resumed.workflow.rounds.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_with_wrong_seed_is_refused() {
        let dir = std::env::temp_dir().join(format!("clinfl-sim-badseed-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        SimulatorRunner::new(ckpt_cfg(&dir, 2, 7))
            .run_simple(initial(), exec, &WeightedFedAvg)
            .unwrap();
        let mut resume_cfg = ckpt_cfg(&dir, 4, 8);
        resume_cfg.resume = true;
        let err = SimulatorRunner::new(resume_cfg)
            .run_simple(initial(), exec, &WeightedFedAvg)
            .unwrap_err();
        assert!(
            matches!(&err, FlareError::Checkpoint(m) if m.contains("seed")),
            "unexpected error {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tree_config_parses_and_autosizes() {
        assert_eq!(
            TreeConfig::parse("2"),
            Some(TreeConfig {
                depth: 2,
                fanout: 8
            })
        );
        assert_eq!(
            TreeConfig::parse("3x4"),
            Some(TreeConfig {
                depth: 3,
                fanout: 4
            })
        );
        assert_eq!(TreeConfig::parse(""), None);
        assert_eq!(TreeConfig::parse("abc"), None);
        assert_eq!(TreeConfig::auto(8, 8).depth, 1);
        assert_eq!(TreeConfig::auto(64, 8).depth, 2);
        assert_eq!(TreeConfig::auto(65, 8).depth, 3);
        assert_eq!(TreeConfig::auto(1024, 8).depth, 4);
    }

    #[test]
    fn tree_depth2_bit_identical_to_flat() {
        // Deltas 1..8 with equal example counts: the shard means (2.5 and
        // 6.5) recombine to the flat mean 4.5 exactly in f32, so the two
        // topologies must agree bit-for-bit.
        let flat = sim(8, 3)
            .run_simple(initial(), exec, &WeightedFedAvg)
            .unwrap();
        let cfg = SimulatorConfig {
            n_clients: 8,
            sag: SagConfig {
                rounds: 3,
                min_clients: 1,
                round_timeout: Duration::from_secs(10),
                validate_global: true,
                ..SagConfig::default()
            },
            seed: 7,
            tree: Some(TreeConfig {
                depth: 2,
                fanout: 4,
            }),
            ..SimulatorConfig::default()
        };
        let tree = SimulatorRunner::new(cfg)
            .run_simple(initial(), exec, &WeightedFedAvg)
            .unwrap();
        assert!(tree.log.contains("Aggregation tree: depth 2"));
        assert!(tree.log.contains("aggregator node covering 4 leaf site(s)"));
        assert_eq!(
            tree.workflow.final_weights, flat.workflow.final_weights,
            "depth-2 tree must be bit-identical to the flat run"
        );
        assert_eq!(tree.client_rounds, vec![3; 8]);
        assert_eq!(
            tree.workflow.rounds[0].contributors, flat.workflow.rounds[0].contributors,
            "round summaries must stay leaf-granular"
        );
    }

    #[test]
    fn tree_tolerates_leaf_dropout() {
        let mut cfg = SimulatorConfig {
            n_clients: 4,
            sag: SagConfig {
                rounds: 3,
                min_clients: 2,
                round_timeout: Duration::from_secs(5),
                quorum_grace: Some(Duration::from_millis(300)),
                validate_global: false,
                ..SagConfig::default()
            },
            seed: 11,
            tree: Some(TreeConfig {
                depth: 2,
                fanout: 2,
            }),
            ..SimulatorConfig::default()
        };
        cfg.behaviors.insert(
            3,
            ClientBehavior {
                drop_at_round: Some(1),
                straggle: None,
            },
        );
        let res = SimulatorRunner::new(cfg)
            .run_simple(
                initial(),
                |_, _| {
                    Box::new(ArithmeticExecutor {
                        delta: 1.0,
                        n_examples: 5,
                    })
                },
                &WeightedFedAvg,
            )
            .unwrap();
        assert_eq!(res.workflow.rounds[0].contributors.len(), 4);
        assert_eq!(res.workflow.rounds[1].contributors.len(), 3);
        assert!(res.workflow.rounds[1]
            .dropped
            .contains(&"site-4".to_string()));
        assert_eq!(res.client_rounds[3], 1);
    }

    #[test]
    fn non_decomposable_aggregator_falls_back_to_flat() {
        use crate::aggregator::CoordinateMedian;
        let cfg = SimulatorConfig {
            n_clients: 4,
            sag: SagConfig {
                rounds: 2,
                min_clients: 1,
                round_timeout: Duration::from_secs(10),
                validate_global: false,
                ..SagConfig::default()
            },
            seed: 7,
            tree: Some(TreeConfig {
                depth: 2,
                fanout: 2,
            }),
            ..SimulatorConfig::default()
        };
        let res = SimulatorRunner::new(cfg)
            .run_simple(initial(), exec, &CoordinateMedian)
            .unwrap();
        assert!(res
            .log
            .contains("does not decompose over shards; falling back to a flat topology"));
        assert_eq!(res.workflow.rounds.len(), 2);
    }

    #[test]
    fn secure_aggregation_end_to_end() {
        use crate::aggregator::MaskedSum;
        use crate::filters::SecureAggMask;
        let n = 4;
        let runner = sim(n, 2);
        let res = runner
            .run(
                initial(),
                |_, _| {
                    Box::new(ArithmeticExecutor {
                        delta: 1.0,
                        n_examples: 10,
                    })
                },
                &MaskedSum,
                |i| {
                    let mut chain = FilterChain::new();
                    chain.push(Box::new(SecureAggMask {
                        site_index: i,
                        n_sites: n,
                        session_seed: 42,
                    }));
                    chain
                },
            )
            .unwrap();
        // All clients move +1 per round; masked sum must recover it.
        let final_w = &res.workflow.final_weights["p"];
        for v in &final_w.data {
            assert!((v - 2.0).abs() < 1e-2, "expected ≈2.0 got {v}");
        }
    }
}
