//! The simulator: whole federations in one process (NVFlare's
//! `SimulatorRunner`, the mode the paper's Fig. 3 demonstrates).

use crate::aggregator::Aggregator;
use crate::client::{ClientBehavior, FlClient, RetryPolicy};
use crate::codec::CodecSpec;
use crate::controller::{SagConfig, ScatterAndGather, WorkflowResult};
use crate::dxo::Weights;
use crate::executor::Executor;
use crate::faults::{FaultConfig, FaultPlan};
use crate::filters::FilterChain;
use crate::log::EventLog;
use crate::persistor::{FilePersistor, InMemoryPersistor, Persistor};
use crate::provision::Project;
use crate::server::FlServer;
use crate::transport::in_proc_pair;
use crate::FlareError;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

/// Configuration of a simulated federation.
#[derive(Clone, Debug)]
pub struct SimulatorConfig {
    /// Number of simulated sites (the paper uses 8).
    pub n_clients: usize,
    /// ScatterAndGather workflow settings.
    pub sag: SagConfig,
    /// Provisioning / session seed.
    pub seed: u64,
    /// Per-client failure injection, keyed by 0-based site index.
    pub behaviors: BTreeMap<usize, ClientBehavior>,
    /// Deterministic link-level fault injection (defaults to none).
    pub faults: FaultConfig,
    /// Client send/recv retry policy.
    pub retry: RetryPolicy,
    /// Persist per-round snapshots and the run checkpoint into this
    /// directory (crash-safe; see `DESIGN.md`). `None` keeps everything in
    /// memory.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the checkpoint in `checkpoint_dir` (if one is valid);
    /// the run restarts at round *k+1*. Refused if the checkpoint was
    /// written under a different `seed`.
    pub resume: bool,
    /// Keep at most this many `round_<n>.cfw` files on disk (oldest
    /// pruned first); `None` keeps all.
    pub retain_checkpoints: Option<usize>,
    /// Wire codec every client proposes at registration (see
    /// [`crate::codec`]); raw keeps the legacy full-f32 exchange.
    pub wire: CodecSpec,
    /// Per-site codec overrides keyed by 0-based site index (mixed-fleet
    /// testing: some sites raw, some compressed).
    pub wire_overrides: BTreeMap<usize, CodecSpec>,
    /// When false the server ignores codec proposals (emulates a
    /// pre-codec server, exercising the client's raw fallback).
    pub server_codecs_enabled: bool,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        SimulatorConfig {
            n_clients: 8,
            sag: SagConfig::default(),
            seed: 2023,
            behaviors: BTreeMap::new(),
            faults: FaultConfig::none(),
            retry: RetryPolicy::default(),
            checkpoint_dir: None,
            resume: false,
            retain_checkpoints: None,
            wire: CodecSpec::raw(),
            wire_overrides: BTreeMap::new(),
            server_codecs_enabled: true,
        }
    }
}

impl SimulatorConfig {
    /// A paper-like default: 8 clients, `rounds` rounds, everyone healthy.
    pub fn paper(rounds: u32) -> Self {
        SimulatorConfig {
            sag: SagConfig {
                rounds,
                min_clients: 1,
                ..SagConfig::default()
            },
            ..SimulatorConfig::default()
        }
    }
}

/// Result of a simulator run: the workflow outcome plus the collected
/// event log (the content of the paper's Fig. 3).
#[derive(Debug)]
pub struct SimulationResult {
    /// Workflow result (final weights, per-round summaries).
    pub workflow: WorkflowResult,
    /// Rounds each client completed before exiting.
    pub client_rounds: Vec<u32>,
    /// The run log.
    pub log: EventLog,
}

/// Builds and runs an in-process federation: provision → server → client
/// threads → ScatterAndGather → results.
pub struct SimulatorRunner {
    config: SimulatorConfig,
    log: EventLog,
}

impl std::fmt::Debug for SimulatorRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatorRunner")
            .field("n_clients", &self.config.n_clients)
            .finish_non_exhaustive()
    }
}

impl SimulatorRunner {
    /// Creates a runner with a silent log.
    pub fn new(config: SimulatorConfig) -> Self {
        Self::with_log(config, EventLog::new())
    }

    /// Creates a runner that logs into `log` (use [`EventLog::echoing`]
    /// for live Fig. 3-style output).
    pub fn with_log(config: SimulatorConfig, log: EventLog) -> Self {
        SimulatorRunner { config, log }
    }

    /// The shared event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Runs the federation to completion.
    ///
    /// `make_executor` is called once per site (with its index and name)
    /// on the launching thread; the produced executor moves to that site's
    /// thread. `make_filters` may return a per-site outgoing filter chain.
    ///
    /// # Errors
    ///
    /// Propagates workflow failures (e.g.
    /// [`FlareError::NotEnoughClients`]).
    ///
    /// # Panics
    ///
    /// Panics if a client thread panicked (executor bugs should surface,
    /// not hang the run).
    pub fn run(
        &self,
        initial: Weights,
        mut make_executor: impl FnMut(usize, &str) -> Box<dyn Executor>,
        aggregator: &dyn Aggregator,
        mut make_filters: impl FnMut(usize) -> FilterChain,
    ) -> Result<SimulationResult, FlareError> {
        let _run_span = clinfl_obs::span("run");
        let log = self.log.clone();
        // Checkpoint/resume setup happens before any client thread spawns,
        // so a refused resume returns an error without leaking threads.
        let mut initial = initial;
        let mut sag_cfg = self.config.sag.clone();
        let mut persistor: Box<dyn Persistor> = match &self.config.checkpoint_dir {
            Some(dir) => {
                let mut fp = FilePersistor::new(dir)?.with_log(log.clone());
                if let Some(keep) = self.config.retain_checkpoints {
                    fp = fp.with_retention(keep);
                }
                if self.config.resume {
                    match fp.load_checkpoint() {
                        Some(ckpt) => {
                            if ckpt.seed != self.config.seed {
                                return Err(FlareError::Checkpoint(format!(
                                    "checkpoint in {dir:?} was written under run seed {}; \
                                     refusing to resume with seed {} (the fault/data \
                                     schedule would diverge)",
                                    ckpt.seed, self.config.seed
                                )));
                            }
                            initial = ckpt.global.clone();
                            sag_cfg.resume_from = Some(ckpt);
                        }
                        None => log.warn(
                            "SimulatorRunner",
                            "resume requested but no valid checkpoint found; starting fresh",
                        ),
                    }
                }
                Box::new(fp)
            }
            None => Box::new(InMemoryPersistor::new()),
        };
        log.info("SimulatorRunner", "Create the simulate clients.");
        let project =
            Project::with_n_sites("simulator_server", self.config.n_clients, self.config.seed);
        let provisioned = project.provision();
        let mut server = FlServer::new(provisioned.server.clone(), log.clone(), self.config.seed);
        server.set_quorum(self.config.sag.min_clients, self.config.sag.quorum_grace);
        server.set_wire_codecs_enabled(self.config.server_codecs_enabled);
        let plan = FaultPlan::new(self.config.faults.clone(), log.clone());
        if plan.config().is_active() {
            log.info(
                "FaultInjector",
                format!("active with seed {}", plan.config().seed),
            );
        }

        let mut client_threads = Vec::with_capacity(self.config.n_clients);
        for (i, package) in provisioned.sites.iter().enumerate() {
            let (server_side, client_side) = in_proc_pair();
            server.serve_connection(server_side);
            let package = package.clone();
            let mut behavior = self.config.behaviors.get(&i).copied().unwrap_or_default();
            if behavior.drop_at_round.is_none() {
                // The fault plan can schedule mid-round crashes too.
                behavior.drop_at_round = plan.crash_round(i);
            }
            let client_side = plan.wrap(&package.site_name, client_side);
            let retry = self.config.retry;
            let mut executor = make_executor(i, &package.site_name);
            let filters = make_filters(i);
            let clog = log.clone();
            let dh_secret = self.config.seed.wrapping_mul(0x9E3779B97F4A7C15) ^ (i as u64 + 1);
            let wire = self
                .config
                .wire_overrides
                .get(&i)
                .cloned()
                .unwrap_or_else(|| self.config.wire.clone());
            client_threads.push(std::thread::spawn(move || -> Result<u32, FlareError> {
                let mut client = FlClient::register(client_side, &package, dh_secret, clog)?;
                client.set_filters(filters);
                client.set_retry_policy(retry);
                client.set_wire_codec(wire);
                client.run(executor.as_mut(), behavior)
            }));
        }

        let joined = server.wait_for_clients(self.config.n_clients, Duration::from_secs(30));
        if joined < self.config.n_clients {
            log.warn(
                "SimulatorRunner",
                format!("only {joined}/{} clients registered", self.config.n_clients),
            );
        }

        let sag = ScatterAndGather::new(sag_cfg, log.clone()).with_run_seed(self.config.seed);
        let workflow = sag.run(&mut server, aggregator, persistor.as_mut(), initial);

        // Stop the server BEFORE joining clients: dropping the server-side
        // connections wakes any client whose Finish frame was lost to an
        // injected fault (buffered frames still deliver, so the healthy
        // goodbye path is unaffected). Joining first could deadlock on a
        // client waiting out its full receive-retry budget.
        server.shutdown();
        server.disconnect_all();
        let mut client_rounds = Vec::with_capacity(client_threads.len());
        for t in client_threads {
            match t.join().expect("client thread panicked") {
                Ok(rounds) => client_rounds.push(rounds),
                Err(e) => {
                    log.warn("SimulatorRunner", format!("client exited with error: {e}"));
                    client_rounds.push(0);
                }
            }
        }
        let workflow = workflow?;
        log.info("SimulatorRunner", "Simulation complete.");
        if clinfl_obs::enabled() {
            let run_name = format!(
                "sim-{}x{}-seed{}",
                self.config.n_clients, self.config.sag.rounds, self.config.seed
            );
            match clinfl_obs::snapshot().write_artifact(&run_name) {
                Ok(path) => log.info(
                    "SimulatorRunner",
                    format!("Metrics artifact: {}", path.display()),
                ),
                Err(e) => log.warn(
                    "SimulatorRunner",
                    format!("metrics artifact write failed: {e}"),
                ),
            }
        }
        Ok(SimulationResult {
            workflow,
            client_rounds,
            log,
        })
    }

    /// Convenience wrapper: healthy clients, no filters.
    ///
    /// # Errors
    ///
    /// Same as [`SimulatorRunner::run`].
    pub fn run_simple(
        &self,
        initial: Weights,
        make_executor: impl FnMut(usize, &str) -> Box<dyn Executor>,
        aggregator: &dyn Aggregator,
    ) -> Result<SimulationResult, FlareError> {
        self.run(initial, make_executor, aggregator, |_| FilterChain::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::WeightedFedAvg;
    use crate::dxo::WeightTensor;
    use crate::executor::ArithmeticExecutor;

    fn initial() -> Weights {
        let mut w = Weights::new();
        w.insert("p".into(), WeightTensor::new(vec![3], vec![0.0; 3]));
        w
    }

    fn sim(n: usize, rounds: u32) -> SimulatorRunner {
        SimulatorRunner::new(SimulatorConfig {
            n_clients: n,
            sag: SagConfig {
                rounds,
                min_clients: 1,
                round_timeout: Duration::from_secs(10),
                validate_global: true,
                ..SagConfig::default()
            },
            seed: 7,
            ..SimulatorConfig::default()
        })
    }

    #[test]
    fn full_simulation_converges_weights() {
        // Clients add 1.0 and 3.0; FedAvg weighted by n (equal) → +2/round.
        let res = sim(2, 3)
            .run_simple(
                initial(),
                |i, _| {
                    Box::new(ArithmeticExecutor {
                        delta: if i == 0 { 1.0 } else { 3.0 },
                        n_examples: 10,
                    })
                },
                &WeightedFedAvg,
            )
            .unwrap();
        let final_w = &res.workflow.final_weights["p"];
        for v in &final_w.data {
            assert!((v - 6.0).abs() < 1e-5, "expected 6.0 got {v}");
        }
        assert_eq!(res.client_rounds, vec![3, 3]);
        assert_eq!(res.workflow.rounds.len(), 3);
    }

    #[test]
    fn log_contains_fig3_structure() {
        let res = sim(2, 1)
            .run_simple(
                initial(),
                |_, _| {
                    Box::new(ArithmeticExecutor {
                        delta: 1.0,
                        n_examples: 1,
                    })
                },
                &WeightedFedAvg,
            )
            .unwrap();
        for phrase in [
            "Create the simulate clients.",
            "New client site-1@127.0.0.1 joined",
            "Successfully registered client:site-2",
            "aggregating 2 update(s) at round 0",
            "Round 0 finished.",
            "Simulation complete.",
        ] {
            assert!(res.log.contains(phrase), "missing phrase {phrase:?}");
        }
    }

    #[test]
    fn dropout_client_tolerated() {
        let mut cfg = SimulatorConfig {
            n_clients: 3,
            sag: SagConfig {
                rounds: 3,
                min_clients: 2,
                round_timeout: Duration::from_millis(1500),
                validate_global: false,
                ..SagConfig::default()
            },
            seed: 11,
            ..SimulatorConfig::default()
        };
        cfg.behaviors.insert(
            2,
            ClientBehavior {
                drop_at_round: Some(1),
                straggle: None,
            },
        );
        let res = SimulatorRunner::new(cfg)
            .run_simple(
                initial(),
                |_, _| {
                    Box::new(ArithmeticExecutor {
                        delta: 1.0,
                        n_examples: 5,
                    })
                },
                &WeightedFedAvg,
            )
            .unwrap();
        assert_eq!(res.workflow.rounds[0].contributors.len(), 3);
        assert_eq!(res.workflow.rounds[1].contributors.len(), 2);
        // The dropped client trained exactly one round.
        assert_eq!(res.client_rounds[2], 1);
    }

    #[test]
    fn straggler_still_contributes() {
        let mut cfg = SimulatorConfig {
            n_clients: 2,
            sag: SagConfig {
                rounds: 2,
                min_clients: 2,
                round_timeout: Duration::from_secs(10),
                validate_global: false,
                ..SagConfig::default()
            },
            seed: 13,
            ..SimulatorConfig::default()
        };
        cfg.behaviors.insert(
            1,
            ClientBehavior {
                drop_at_round: None,
                straggle: Some(Duration::from_millis(100)),
            },
        );
        let res = SimulatorRunner::new(cfg)
            .run_simple(
                initial(),
                |_, _| {
                    Box::new(ArithmeticExecutor {
                        delta: 2.0,
                        n_examples: 5,
                    })
                },
                &WeightedFedAvg,
            )
            .unwrap();
        assert_eq!(res.workflow.rounds.len(), 2);
        assert!(res
            .workflow
            .rounds
            .iter()
            .all(|r| r.contributors.len() == 2));
    }

    #[test]
    fn too_many_dropouts_abort() {
        let mut cfg = SimulatorConfig {
            n_clients: 2,
            sag: SagConfig {
                rounds: 3,
                min_clients: 2,
                round_timeout: Duration::from_millis(800),
                validate_global: false,
                ..SagConfig::default()
            },
            seed: 17,
            ..SimulatorConfig::default()
        };
        cfg.behaviors.insert(
            0,
            ClientBehavior {
                drop_at_round: Some(1),
                straggle: None,
            },
        );
        cfg.behaviors.insert(
            1,
            ClientBehavior {
                drop_at_round: Some(1),
                straggle: None,
            },
        );
        let err = SimulatorRunner::new(cfg)
            .run_simple(
                initial(),
                |_, _| {
                    Box::new(ArithmeticExecutor {
                        delta: 1.0,
                        n_examples: 5,
                    })
                },
                &WeightedFedAvg,
            )
            .unwrap_err();
        assert!(matches!(err, FlareError::NotEnoughClients { .. }));
    }

    fn exec(i: usize, _site: &str) -> Box<dyn Executor> {
        Box::new(ArithmeticExecutor {
            delta: (i + 1) as f32,
            n_examples: 10,
        })
    }

    fn ckpt_cfg(dir: &std::path::Path, rounds: u32, seed: u64) -> SimulatorConfig {
        SimulatorConfig {
            n_clients: 3,
            sag: SagConfig {
                rounds,
                min_clients: 1,
                round_timeout: Duration::from_secs(10),
                validate_global: true,
                ..SagConfig::default()
            },
            seed,
            checkpoint_dir: Some(dir.to_path_buf()),
            ..SimulatorConfig::default()
        }
    }

    #[test]
    fn checkpointed_run_resumes_bit_identically() {
        let dir = std::env::temp_dir().join(format!("clinfl-sim-resume-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        // Reference: uninterrupted 4-round run (no checkpointing at all).
        let full = sim(3, 4)
            .run_simple(initial(), exec, &WeightedFedAvg)
            .unwrap();
        // Interrupted: two rounds land in the checkpoint dir, the process
        // state is dropped, and a fresh runner resumes to round 4.
        SimulatorRunner::new(ckpt_cfg(&dir, 2, 7))
            .run_simple(initial(), exec, &WeightedFedAvg)
            .unwrap();
        let mut resume_cfg = ckpt_cfg(&dir, 4, 7);
        resume_cfg.resume = true;
        let resumed = SimulatorRunner::new(resume_cfg)
            .run_simple(initial(), exec, &WeightedFedAvg)
            .unwrap();
        assert!(resumed.log.contains("Resuming at round 2"));
        assert_eq!(
            resumed.workflow.final_weights, full.workflow.final_weights,
            "resumed weights must be bit-identical to the uninterrupted run"
        );
        assert_eq!(resumed.workflow.rounds.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_with_wrong_seed_is_refused() {
        let dir = std::env::temp_dir().join(format!("clinfl-sim-badseed-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        SimulatorRunner::new(ckpt_cfg(&dir, 2, 7))
            .run_simple(initial(), exec, &WeightedFedAvg)
            .unwrap();
        let mut resume_cfg = ckpt_cfg(&dir, 4, 8);
        resume_cfg.resume = true;
        let err = SimulatorRunner::new(resume_cfg)
            .run_simple(initial(), exec, &WeightedFedAvg)
            .unwrap_err();
        assert!(
            matches!(&err, FlareError::Checkpoint(m) if m.contains("seed")),
            "unexpected error {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn secure_aggregation_end_to_end() {
        use crate::aggregator::MaskedSum;
        use crate::filters::SecureAggMask;
        let n = 4;
        let runner = sim(n, 2);
        let res = runner
            .run(
                initial(),
                |_, _| {
                    Box::new(ArithmeticExecutor {
                        delta: 1.0,
                        n_examples: 10,
                    })
                },
                &MaskedSum,
                |i| {
                    let mut chain = FilterChain::new();
                    chain.push(Box::new(SecureAggMask {
                        site_index: i,
                        n_sites: n,
                        session_seed: 42,
                    }));
                    chain
                },
            )
            .unwrap();
        // All clients move +1 per round; masked sum must recover it.
        let final_w = &res.workflow.final_weights["p"];
        for v in &final_w.data {
            assert!((v - 2.0).abs() < 1e-2, "expected ≈2.0 got {v}");
        }
    }
}
